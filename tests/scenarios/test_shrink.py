"""Tests for the delta-debugging scenario shrinker."""

from __future__ import annotations

import pytest

from repro.scenarios.generator import generate_dfg, parse_generator_spec
from repro.scenarios.matrix import (
    SYNTHETIC_DEFECTS,
    expand_matrix,
    normalize_config,
    run_scenario,
)
from repro.scenarios.shrink import (
    load_reproducer,
    save_reproducer,
    shrink_dfg,
    shrink_scenario,
)

MUL_CHAIN = SYNTHETIC_DEFECTS["mul-chain"]


def _mul_heavy_dfg(seed=3, n_ops=24):
    spec = parse_generator_spec(f"random:ops={n_ops}:mix=mul*3+add")
    return generate_dfg(spec, seed)


def _failing_scenario():
    config = normalize_config(
        {
            "seeds": [3],
            "generators": ["random:ops=24:mix=mul*3+add"],
            "schedulers": ["mfsa"],
            "defects": ["mul-chain"],
        }
    )
    return expand_matrix(config)[0]


class TestShrinkDFG:
    def test_reduces_mul_chain_to_two_ops(self):
        dfg = _mul_heavy_dfg()
        assert MUL_CHAIN(dfg)
        result = shrink_dfg(dfg, lambda d: bool(MUL_CHAIN(d)))
        assert result.original_ops == len(dfg)
        assert result.n_ops <= 8
        assert MUL_CHAIN(result.dfg)  # still reproduces
        assert all(node.kind == "mul" for node in result.dfg)

    def test_deterministic(self):
        a = shrink_dfg(_mul_heavy_dfg(), lambda d: bool(MUL_CHAIN(d)))
        b = shrink_dfg(_mul_heavy_dfg(), lambda d: bool(MUL_CHAIN(d)))
        assert a.fingerprint == b.fingerprint
        assert a.rounds == b.rounds

    def test_requires_failing_entry(self):
        passing = generate_dfg(parse_generator_spec("random:ops=8:mix=add"), 1)
        with pytest.raises(ValueError):
            shrink_dfg(passing, lambda d: bool(MUL_CHAIN(d)))

    def test_raising_predicate_never_accepted(self):
        """A candidate that crashes the predicate is a *different* failure."""
        dfg = _mul_heavy_dfg()
        floor = len(dfg) - 4

        def failing(candidate):
            if len(candidate) < floor:
                raise RuntimeError("predicate crashed on small graphs")
            return bool(MUL_CHAIN(candidate))

        result = shrink_dfg(dfg, failing)
        assert result.n_ops >= floor
        assert bool(MUL_CHAIN(result.dfg))

    def test_candidates_stay_valid_designs(self, ops):
        dfg = _mul_heavy_dfg(seed=5)
        seen = []

        def failing(candidate):
            candidate.validate(ops)  # raises on a broken candidate
            seen.append(len(candidate))
            return bool(MUL_CHAIN(candidate))

        result = shrink_dfg(dfg, failing)
        assert result.dfg.outputs
        assert seen  # predicate actually exercised


class TestShrinkScenario:
    def test_failing_matrix_cell_shrinks_small(self):
        """Acceptance criterion: injected failure → reproducer of <= 8 ops."""
        scenario = _failing_scenario()
        assert run_scenario(scenario)["violations"]
        result = shrink_scenario(scenario)
        assert result.n_ops <= 8
        assert result.violations  # the reduced graph still fails the cell
        assert result.scenario == dict(scenario)

    def test_corpus_round_trip(self, tmp_path):
        result = shrink_scenario(_failing_scenario())
        path = str(tmp_path / "reproducer.json")
        payload = save_reproducer(result, path)
        assert payload["reduced"]["n_ops"] == result.n_ops
        scenario, dfg = load_reproducer(path)
        assert scenario == result.scenario
        assert len(dfg) == result.n_ops
        # The loaded graph reproduces the failure on its own.
        assert run_scenario(scenario, dfg=dfg)["violations"]

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not_a_reproducer.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_reproducer(str(path))
