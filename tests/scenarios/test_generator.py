"""Tests for the seeded generator specs and DFG generation."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.dfg.analysis import critical_path_length
from repro.dfg.fingerprint import dfg_fingerprint
from repro.scenarios.generator import (
    GeneratorSpec,
    GeneratorSpecError,
    generate_dfg,
    parse_generator_spec,
    scenario_timing,
    spec_fingerprint,
    vary,
    with_seeded_name,
)

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

ROUND_TRIP_SPECS = [
    "random:ops=20:inputs=4:mix=add+sub+mul+and+or+lt:locality=6",
    "random:ops=24:inputs=4:mix=mul*3+add+sub:locality=6:cond=2",
    "random:ops=40:inputs=4:mix=add+sub+mul+and+or+lt:locality=6"
    ":mul_latency=2:clock=20",
    "layered:layers=6:width=4:inputs=4:mix=mul+add",
]


class TestSpecParsing:
    @pytest.mark.parametrize("text", ROUND_TRIP_SPECS)
    def test_to_string_is_a_fixpoint(self, text):
        spec = parse_generator_spec(text)
        assert spec.to_string() == text
        assert parse_generator_spec(spec.to_string()) == spec

    def test_defaults_fill_in(self):
        spec = parse_generator_spec("random:ops=8")
        assert spec.n_inputs == 4
        assert spec.locality == 6
        assert spec.conditions == 0
        assert spec.mul_latency == 1
        assert spec.clock_ns is None

    def test_mix_weights(self):
        spec = parse_generator_spec("random:ops=8:mix=mul*4+add")
        assert spec.mix == (("mul", 4), ("add", 1))

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "fancy:ops=8",                    # unknown family
            "random:ops=8:wobble=3",          # unknown knob
            "random:ops",                      # malformed clause
            "random:ops=many",                 # bad int
            "random:ops=8:mix=mul*lots",      # bad weight
            "random:ops=0",                    # ops < 1
            "random:ops=8:inputs=0",          # inputs < 1
            "random:ops=8:outputs=0",         # outputs outside (0, 1]
            "random:ops=8:outputs=1.5",
            "random:ops=8:mul_latency=0",
            "random:ops=8:clock=-5",
            "layered:width=4",                 # layered without layers
            "random:ops=8:mix=frob+add",      # unknown op kind (at generate)
        ],
    )
    def test_bad_specs_raise(self, text):
        spec_text = text
        if "frob" in text:
            with pytest.raises(GeneratorSpecError):
                generate_dfg(parse_generator_spec(spec_text), 1)
        else:
            with pytest.raises(GeneratorSpecError):
                parse_generator_spec(spec_text)

    def test_spec_fingerprint_tracks_spelling(self):
        a = parse_generator_spec("random:ops=8")
        b = parse_generator_spec("random:ops=8:inputs=4")  # same canonical
        c = parse_generator_spec("random:ops=9")
        assert spec_fingerprint(a) == spec_fingerprint(b)
        assert spec_fingerprint(a) != spec_fingerprint(c)

    def test_vary_and_seeded_name(self):
        spec = parse_generator_spec("random:ops=8")
        bigger = vary(spec, n_ops=16)
        assert bigger.n_ops == 16
        assert spec.n_ops == 8
        assert with_seeded_name(bigger, 3) == "random_16ops_s3"
        with pytest.raises(GeneratorSpecError):
            vary(spec, n_ops=0)


class TestGeneration:
    def test_pure_function_of_spec_and_seed(self):
        spec = parse_generator_spec("random:ops=24:mix=mul*2+add:cond=2")
        a = generate_dfg(spec, 7)
        b = generate_dfg(spec, 7)
        assert a.node_names() == b.node_names()
        assert dfg_fingerprint(a) == dfg_fingerprint(b)
        assert dfg_fingerprint(generate_dfg(spec, 8)) != dfg_fingerprint(a)

    def test_requested_shape(self):
        spec = parse_generator_spec("random:ops=33:inputs=5")
        dfg = generate_dfg(spec, 1)
        assert len(dfg) == 33
        assert len(dfg.inputs) == 5
        assert dfg.outputs

    def test_layered_shape(self, timing):
        spec = parse_generator_spec("layered:layers=6:width=4")
        dfg = generate_dfg(spec, 1)
        assert len(dfg) == 24
        assert critical_path_length(dfg, timing) == 6

    def test_valid_across_seeds_and_families(self, ops):
        for text in ROUND_TRIP_SPECS:
            spec = parse_generator_spec(text)
            for seed in range(5):
                dfg = generate_dfg(spec, seed)
                # generate_dfg validates against its own op set; re-check
                # branch discipline explicitly.
                for node in dfg:
                    for pred in node.predecessor_names():
                        assert dfg.node(pred).branch in ((), node.branch)

    def test_conditional_specs_make_exclusive_pairs(self):
        spec = parse_generator_spec("random:ops=40:cond=1")
        for seed in range(10):
            dfg = generate_dfg(spec, seed)
            then_ops = [n.name for n in dfg if n.branch == (("c0", True),)]
            else_ops = [n.name for n in dfg if n.branch == (("c0", False),)]
            if then_ops and else_ops:
                assert dfg.mutually_exclusive(then_ops[0], else_ops[0])
                return
        pytest.fail("no seed produced both arms of c0")

    def test_locality_controls_depth(self, timing):
        deep = generate_dfg(parse_generator_spec("random:ops=40:locality=1"), 3)
        wide = generate_dfg(
            parse_generator_spec("random:ops=40:locality=40"), 3
        )
        assert critical_path_length(deep, timing) > critical_path_length(
            wide, timing
        )

    def test_scenario_timing_reflects_spec(self):
        spec = parse_generator_spec("random:ops=8:mul_latency=2:clock=20")
        timing = scenario_timing(spec)
        assert timing.latency("mul") == 2
        assert timing.clock_period_ns == 20.0
        plain = scenario_timing(parse_generator_spec("random:ops=8"))
        assert plain.latency("mul") == 1
        assert plain.clock_period_ns is None


_FINGERPRINT_SNIPPET = """\
import sys
from repro.dfg.fingerprint import dfg_fingerprint
from repro.scenarios.generator import generate_dfg, parse_generator_spec
spec = parse_generator_spec(sys.argv[1])
print(dfg_fingerprint(generate_dfg(spec, int(sys.argv[2]))))
"""


class TestCrossProcessDeterminism:
    """The contract the whole engine leans on: (spec, seed) → bytes.

    Runs the generator in fresh interpreters with *different*
    ``PYTHONHASHSEED`` values — ``hash()``-based seeding or set/dict
    iteration in the draw path would flunk this immediately.
    """

    @pytest.mark.parametrize(
        "spec_text",
        [
            "random:ops=24:mix=mul*3+add+sub:cond=2:mul_latency=2:clock=20",
            "layered:layers=4:width=3",
        ],
    )
    def test_fingerprint_stable_across_hash_seeds(self, spec_text):
        local = dfg_fingerprint(
            generate_dfg(parse_generator_spec(spec_text), 11)
        )
        for hash_seed in ("0", "314159"):
            env = dict(
                os.environ,
                PYTHONHASHSEED=hash_seed,
                PYTHONPATH=os.path.join(REPO, "src"),
            )
            out = subprocess.run(
                [sys.executable, "-c", _FINGERPRINT_SNIPPET, spec_text, "11"],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            assert out.stdout.strip() == local
