"""Tests for the scenario-matrix runner and its grid artifact."""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.scenarios.matrix import (
    MatrixConfigError,
    config_fingerprint,
    expand_matrix,
    failing_results,
    grid_payload,
    load_config,
    normalize_config,
    render_grid,
    run_matrix,
    run_scenario,
    write_grid,
)

SMOKE = {
    "name": "smoke",
    "seeds": [1, 2],
    "generators": ["random:ops=10", "layered:layers=3:width=2"],
    "schedulers": ["mfs", "mfsa", "list"],
}

DEFECT = {
    "name": "defect",
    "seeds": [3],
    "generators": ["random:ops=24:mix=mul*3+add"],
    "schedulers": ["mfsa"],
    "defects": ["mul-chain"],
}


class TestNormalize:
    def test_defaults_and_table_forms(self):
        bare = normalize_config({"seeds": [5]})
        wrapped = normalize_config({"matrix": {"seeds": [5]}})
        assert bare == wrapped
        assert bare["generators"] == ["random:ops=16"]
        assert bare["schedulers"] == ["mfs"]
        assert bare["cs_slack"] == [2]
        assert bare["defects"] == []

    @pytest.mark.parametrize(
        "raw",
        [
            "not a mapping",
            {"matrix": "not a table"},
            {"frobnicate": [1]},                      # unknown key
            {"seeds": []},                             # empty seeds
            {"seeds": [True]},                         # bool is not an int
            {"seeds": "12"},                           # string is not a list
            {"generators": []},
            {"generators": ["random:ops=0"]},          # unparsable spec
            {"schedulers": ["asap"]},
            {"kernels": ["gpu"]},
            {"styles": [3]},
            {"libraries": ["tsmc"]},
            {"cs_slack": [-1]},
            {"pipelined": [1]},                        # not a bool
            {"defects": ["gremlin"]},
        ],
    )
    def test_bad_configs_rejected(self, raw):
        with pytest.raises(MatrixConfigError):
            normalize_config(raw)

    def test_fingerprint_tracks_content(self):
        a = config_fingerprint(normalize_config(SMOKE))
        b = config_fingerprint(normalize_config(dict(SMOKE)))
        c = config_fingerprint(normalize_config(dict(SMOKE, seeds=[1, 3])))
        assert a == b
        assert a != c


class TestLoadConfig:
    def test_json_config(self, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps({"matrix": SMOKE}))
        assert load_config(str(path)) == normalize_config(SMOKE)

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text("{nope")
        with pytest.raises(MatrixConfigError):
            load_config(str(path))

    def test_shipped_example_configs_load(self):
        examples = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "examples",
            "scenarios",
        )
        smoke = load_config(os.path.join(examples, "smoke.json"))
        defects = load_config(os.path.join(examples, "defects.json"))
        assert len(expand_matrix(smoke)) == 12
        assert defects["defects"] == ["mul-chain"]
        if sys.version_info >= (3, 11):
            toml_twin = load_config(os.path.join(examples, "smoke.toml"))
            assert toml_twin == smoke

    def test_toml_config(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "matrix.toml"
        path.write_text(
            "[matrix]\n"
            'name = "smoke"\n'
            "seeds = [1, 2]\n"
            'generators = ["random:ops=10", "layered:layers=3:width=2"]\n'
            'schedulers = ["mfs", "mfsa", "list"]\n'
        )
        assert load_config(str(path)) == normalize_config(SMOKE)


class TestExpand:
    def test_capability_gated_axes_collapse(self):
        config = normalize_config(
            {
                "seeds": [1],
                "generators": ["random:ops=8"],
                "schedulers": ["mfs", "mfsa", "list"],
                "kernels": ["scalar", "vector"],
                "styles": [1, 2],
                "libraries": ["ncr", "datapath"],
            }
        )
        scenarios = expand_matrix(config)
        by_sched = {}
        for s in scenarios:
            by_sched.setdefault(s["scheduler"], []).append(s)
        # mfs: 2 kernels; mfsa: 2 kernels × 2 styles × 2 libraries;
        # list: everything collapsed to one cell.
        assert len(by_sched["mfs"]) == 2
        assert len(by_sched["mfsa"]) == 8
        assert len(by_sched["list"]) == 1
        assert {s["style"] for s in by_sched["list"]} == {0}
        assert {s["library"] for s in by_sched["list"]} == {""}

    def test_expansion_is_deterministic_and_deduplicated(self):
        config = normalize_config(SMOKE)
        a = expand_matrix(config)
        b = expand_matrix(config)
        assert a == b
        ids = [s["id"] for s in a]
        assert len(ids) == len(set(ids))
        assert len(a) == 12  # 2 generators × 2 seeds × 3 schedulers


class TestRunScenario:
    def _one(self, **overrides):
        config = normalize_config(
            {"seeds": [1], "generators": ["random:ops=10"], **overrides}
        )
        return expand_matrix(config)[0]

    @pytest.mark.parametrize("scheduler", ["mfs", "mfsa", "list", "fds"])
    def test_each_scheduler_runs_clean(self, scheduler):
        result = run_scenario(self._one(schedulers=[scheduler]))
        assert result["ok"], result["violations"]
        assert result["makespan"] >= 1
        assert result["cs"] >= result["makespan"]
        assert result["n_ops"] == 10

    def test_multicycle_pipelined_scenario(self):
        scenario = self._one(
            generators=["random:ops=12:mix=mul*2+add:mul_latency=2"],
            schedulers=["mfs"],
            pipelined=[True],
        )
        result = run_scenario(scenario)
        assert result["ok"], result["violations"]

    def test_defect_marks_cell_failed(self):
        scenario = expand_matrix(normalize_config(DEFECT))[0]
        result = run_scenario(scenario)
        assert not result["ok"]
        assert any("mul-chain" in v for v in result["violations"])

    def test_scheduler_exception_becomes_violation(self, monkeypatch):
        import repro.core.mfs as mfs_module

        def boom(*args, **kwargs):
            raise RuntimeError("injected scheduler crash")

        monkeypatch.setattr(mfs_module.MFSScheduler, "run", boom)
        result = run_scenario(self._one(schedulers=["mfs"]))
        assert not result["ok"]
        assert any("injected scheduler crash" in v for v in result["violations"])


class TestRunMatrix:
    def test_grid_is_byte_reproducible(self):
        """Acceptance criterion: same config + seed → identical grid."""
        first = run_matrix(SMOKE, backend="serial")
        second = run_matrix(SMOKE, backend="serial")
        assert json.dumps(grid_payload(first), sort_keys=True) == json.dumps(
            grid_payload(second), sort_keys=True
        )
        fingerprints = [r["fingerprint"] for r in first["results"]]
        assert fingerprints == [r["fingerprint"] for r in second["results"]]

    def test_process_backend_matches_serial(self):
        config = dict(SMOKE, seeds=[1], schedulers=["mfs", "list"])
        serial = run_matrix(config, backend="serial")
        pooled = run_matrix(config, backend="process", workers=2)
        assert grid_payload(serial) == grid_payload(pooled)

    def test_checkpoint_resume_replays_identically(self, tmp_path):
        path = str(tmp_path / "matrix.ckpt")
        config = dict(SMOKE, seeds=[1])
        first = run_matrix(config, backend="serial", checkpoint_path=path)
        resumed = run_matrix(config, backend="serial", checkpoint_path=path)
        assert grid_payload(first) == grid_payload(resumed)
        # Resumed rows come from the checkpoint, not re-execution.
        assert all(r["seconds"] == 0.0 for r in resumed["results"])

    def test_changed_config_discards_stale_checkpoint(self, tmp_path):
        path = str(tmp_path / "matrix.ckpt")
        config = dict(SMOKE, seeds=[1])
        run_matrix(config, backend="serial", checkpoint_path=path)
        changed = run_matrix(
            dict(config, cs_slack=[3]),
            backend="serial",
            checkpoint_path=path,
        )
        assert all(
            result["cs"] - result["makespan"] >= 0
            for result in changed["results"]
        )
        assert any(r["seconds"] > 0.0 for r in changed["results"])

    def test_grid_artifact_and_render(self, tmp_path):
        run = run_matrix(dict(DEFECT), backend="serial")
        grid_path = tmp_path / "grid.json"
        payload = write_grid(run, str(grid_path))
        assert payload["failed"] == 1
        assert payload["passed"] == 0
        on_disk = json.loads(grid_path.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        assert grid_path.read_text().endswith("\n")
        text = render_grid(run)
        assert "FAIL" in text and "0/1 passed" in text
        failures = failing_results(run)
        assert len(failures) == 1
        scenario, result = failures[0]
        assert scenario["id"] == result["id"]
