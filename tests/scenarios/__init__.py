"""Tests for the repro.scenarios subsystem."""
