"""Tests for the seeded traffic replayer (arrivals, chaos, recovery)."""

from __future__ import annotations

import pytest

from repro.scenarios.replay import (
    ArrivalPattern,
    ArrivalSpecError,
    arrival_offsets,
    parse_arrival_spec,
    run_replay,
)


class TestArrivalSpecs:
    @pytest.mark.parametrize(
        "text",
        [
            "poisson:n=40:rate=200",
            "burst:n=40:size=8:gap=0.05",
            "ramp:n=40:rate=50:peak=400",
        ],
    )
    def test_round_trip(self, text):
        pattern = parse_arrival_spec(text)
        assert pattern.to_string() == text
        assert parse_arrival_spec(pattern.to_string()) == pattern

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "uniform:n=4",          # unknown kind
            "poisson:n=0",          # n < 1
            "poisson:rate=0",       # non-positive rate
            "burst:size=0",
            "burst:gap=-1",
            "poisson:n",            # malformed clause
            "poisson:n=soon",       # bad int
            "poisson:warmth=3",     # unknown key
        ],
    )
    def test_bad_specs_raise(self, text):
        with pytest.raises(ArrivalSpecError):
            parse_arrival_spec(text)


class TestArrivalOffsets:
    def test_deterministic_and_monotone(self):
        for text in ("poisson:n=50:rate=100", "ramp:n=50:rate=20:peak=500"):
            pattern = parse_arrival_spec(text)
            a = arrival_offsets(pattern, 9)
            b = arrival_offsets(pattern, 9)
            assert a == b
            assert len(a) == 50
            assert all(x <= y for x, y in zip(a, a[1:]))
            assert arrival_offsets(pattern, 10) != a

    def test_burst_groups(self):
        pattern = ArrivalPattern(kind="burst", n=10, size=4, gap=1.0)
        offsets = arrival_offsets(pattern, 1)
        assert len(offsets) == 10
        # Groups of `size` share an offset; groups are ~gap apart.
        assert offsets[0] == offsets[3]
        assert offsets[4] == offsets[7]
        assert offsets[4] - offsets[0] > 0.5

    def test_ramp_accelerates(self):
        pattern = ArrivalPattern(kind="ramp", n=200, rate=10, peak=1000)
        offsets = arrival_offsets(pattern, 2)
        first_half = offsets[99] - offsets[0]
        second_half = offsets[199] - offsets[100]
        assert second_half < first_half


class TestRunReplay:
    def test_clean_replay_is_deterministic(self):
        """Acceptance criterion: identical replay facts run for run."""
        pattern = parse_arrival_spec("poisson:n=6:rate=500")
        kwargs = dict(
            seed=4, generator="random:ops=6", distinct_designs=3
        )
        first = run_replay(pattern, **kwargs)
        second = run_replay(pattern, **kwargs)
        assert first.jobs == 6
        assert first.ok == 6
        assert first.errors == 0
        assert first.deterministic_payload() == second.deterministic_payload()
        # Round-robin payloads: repeated designs hit the result cache and
        # must produce identical fingerprints.
        fps = [o["fingerprint"] for o in first.outcomes]
        assert fps[0] == fps[3] and fps[1] == fps[4]

    def test_faults_fire_and_recovery_is_counted(self):
        pattern = parse_arrival_spec("poisson:n=6:rate=500")
        report = run_replay(
            pattern,
            seed=4,
            generator="random:ops=6",
            faults="serve.admit:n=3",
            distinct_designs=3,
        )
        assert report.fault_log == [("serve.admit", 3)]
        assert report.recovered == 1
        assert report.ok == 5
        assert report.errors == 0
        twin = run_replay(
            pattern,
            seed=4,
            generator="random:ops=6",
            faults="serve.admit:n=3",
            distinct_designs=3,
        )
        assert report.deterministic_payload() == twin.deterministic_payload()
        text = report.render()
        assert "recovered=1" in text and "serve.admit#3" in text

    def test_sharded_replay_with_router_chaos(self):
        pattern = parse_arrival_spec("burst:n=4:size=2:gap=0.01")
        report = run_replay(
            pattern,
            seed=1,
            generator="random:ops=6",
            shards=2,
            faults="router.forward:n=2",
            distinct_designs=2,
        )
        assert report.jobs == 4
        assert report.errors == 0
        # The router's own retry layer may absorb the fault before the
        # client ever sees it — every job must land either way.
        assert report.ok + report.recovered == 4
        assert ("router.forward", 2) in report.fault_log

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            run_replay(parse_arrival_spec("poisson:n=2"), 1, algorithm="magic")

    def test_rejects_bad_max_in_flight(self):
        with pytest.raises(ValueError):
            run_replay(parse_arrival_spec("poisson:n=2"), 1, max_in_flight=0)


class TestOpenLoopReplay:
    def test_open_loop_outcomes_are_arrival_ordered_and_deterministic(self):
        """Concurrent submission must not leak thread timing into the
        deterministic payload: two open-loop runs agree with each other,
        and their fingerprints match the closed-loop run's."""
        pattern = parse_arrival_spec("burst:n=8:size=4:gap=0.01")
        kwargs = dict(seed=11, generator="random:ops=6", distinct_designs=4)
        closed = run_replay(pattern, **kwargs)
        first = run_replay(pattern, open_loop=True, max_in_flight=4, **kwargs)
        second = run_replay(pattern, open_loop=True, max_in_flight=4, **kwargs)
        assert first.mode == "open" and closed.mode == "closed"
        assert first.jobs == 8 and first.errors == 0
        assert [o["index"] for o in first.outcomes] == list(range(8))
        assert first.deterministic_payload() == second.deterministic_payload()
        assert first.deterministic_payload()["fingerprints"] == (
            closed.deterministic_payload()["fingerprints"]
        )
        assert "open-loop" in first.render()

    def test_actions_fire_before_their_arrival_index(self):
        """``actions`` receives the live service object just before the
        indexed submission — the reshard drill's hook."""
        pattern = parse_arrival_spec("poisson:n=4:rate=500")
        seen = []

        def probe(service):
            seen.append(type(service).__name__)

        report = run_replay(
            pattern,
            seed=3,
            generator="random:ops=6",
            distinct_designs=2,
            open_loop=True,
            max_in_flight=2,
            actions={0: probe, 2: probe},
        )
        assert report.errors == 0
        assert seen == ["ServeApp", "ServeApp"]
