"""The sample .beh designs stay parseable and synthesisable via the CLI."""

import json
import pathlib

import pytest

from repro.cli import main
from repro.dfg.parser import parse_behavior

DESIGNS = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples" / "designs").glob(
        "*.beh"
    )
)


@pytest.mark.parametrize("path", DESIGNS, ids=lambda p: p.stem)
class TestDesignFiles:
    def test_parses(self, path, ops):
        dfg = parse_behavior(path.read_text(), name=path.stem)
        dfg.validate(ops)
        assert dfg.outputs

    def test_cli_schedule(self, path, capsys):
        assert main(["schedule", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["makespan"] >= 1

    def test_cli_synth(self, path, capsys, tmp_path):
        verilog = tmp_path / "out.v"
        assert (
            main(
                [
                    "synth",
                    str(path),
                    "--structural",
                    "--verilog",
                    str(verilog),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert "endmodule" in verilog.read_text()


def test_design_directory_not_empty():
    assert len(DESIGNS) >= 3
