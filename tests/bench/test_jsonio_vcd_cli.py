"""Tests for JSON serialisation, VCD export and the CLI."""

import json

import pytest

from repro.core.mfs import mfs_schedule
from repro.core.mfsa import mfsa_synthesize
from repro.dfg.generators import random_dfg
from repro.errors import DFGError
from repro.io.jsonio import (
    dfg_from_json,
    dfg_to_json,
    schedule_to_json,
    synthesis_to_json,
)
from repro.sim.executor import execute_datapath
from repro.sim.vcd import trace_to_vcd
from repro.bench.suites import hal_diffeq


class TestDFGJson:
    def test_round_trip_preserves_structure(self):
        g = hal_diffeq()
        restored = dfg_from_json(dfg_to_json(g))
        assert restored.node_names() == g.node_names()
        assert restored.inputs == g.inputs
        assert restored.outputs == g.outputs
        for node in g:
            other = restored.node(node.name)
            assert other.kind == node.kind
            assert other.operands == node.operands
            assert other.branch == node.branch

    def test_round_trip_random_graphs(self, ops):
        for seed in range(5):
            g = random_dfg(seed=seed, n_ops=20)
            restored = dfg_from_json(dfg_to_json(g))
            restored.validate(ops)
            assert restored.count_by_kind() == g.count_by_kind()

    def test_round_trip_branches(self):
        from repro.bench.suites import conditional_example

        g = conditional_example()
        restored = dfg_from_json(dfg_to_json(g))
        assert restored.mutually_exclusive("then_mul", "else_mul")

    def test_rejects_foreign_document(self):
        with pytest.raises(DFGError):
            dfg_from_json(json.dumps({"format": "something-else"}))

    def test_rejects_future_version(self):
        doc = json.loads(dfg_to_json(hal_diffeq()))
        doc["version"] = 99
        with pytest.raises(DFGError):
            dfg_from_json(json.dumps(doc))


class TestScheduleAndSynthesisJson:
    def test_schedule_json_fields(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=5)
        payload = json.loads(schedule_to_json(result.schedule))
        assert payload["cs"] == 5
        assert payload["makespan"] <= 5
        assert payload["starts"]["m1"] >= 1
        assert payload["fu_usage"]["mul"] >= 1

    def test_synthesis_json_fields(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        payload = json.loads(synthesis_to_json(result))
        assert payload["style"] == 1
        assert set(payload["binding"]) == set(hal_diffeq().node_names())
        assert payload["cost"]["total"] == pytest.approx(result.cost.total)
        assert payload["metrics"]["register_count"] == (
            result.datapath.register_count()
        )
        assert len(payload["alus"]) == len(result.datapath.instances)


class TestVCD:
    def test_vcd_structure(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        inputs = {"x": 1, "dx": 2, "u": 3, "y": 4, "a": 9}
        trace = execute_datapath(result.datapath, inputs)
        vcd = trace_to_vcd(result.datapath, trace)
        assert "$enddefinitions $end" in vcd
        assert "$var wire 16" in vcd
        assert "#0" in vcd and f"#{result.schedule.cs + 1}" in vcd
        # one $var per register, op wire, output, plus the state
        ops_count = len(hal_diffeq())
        expected = (
            1
            + result.datapath.register_count()
            + ops_count
            + len(hal_diffeq().outputs)
        )
        assert vcd.count("$var wire") == expected

    def test_vcd_identifiers_unique(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        trace = execute_datapath(
            result.datapath, {"x": 1, "dx": 2, "u": 3, "y": 4, "a": 9}
        )
        vcd = trace_to_vcd(result.datapath, trace)
        codes = [
            line.split()[3]
            for line in vcd.splitlines()
            if line.startswith("$var")
        ]
        assert len(codes) == len(set(codes))

    def test_write_vcd(self, tmp_path, timing, alu_family):
        from repro.sim.vcd import write_vcd

        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        trace = execute_datapath(
            result.datapath, {"x": 1, "dx": 2, "u": 3, "y": 4, "a": 9}
        )
        target = tmp_path / "run.vcd"
        write_vcd(str(target), result.datapath, trace)
        assert target.read_text().startswith("$date")


class TestCLI:
    def run(self, *argv, capsys=None):
        from repro.cli import main

        code = main(list(argv))
        assert code == 0
        return capsys.readouterr().out if capsys else None

    def test_table1_command(self, capsys):
        out = self.run("table1", "--example", "ex1", capsys=capsys)
        assert "Table 1" in out
        assert "yes" in out

    def test_table2_command(self, capsys):
        out = self.run("table2", "--example", "ex1", capsys=capsys)
        assert "Table 2" in out

    def test_figure_commands(self, capsys):
        assert "Figure 1" in self.run("figure1", capsys=capsys)
        assert "Figure 2" in self.run(
            "figure2", "--example", "ex3", capsys=capsys
        )

    def test_schedule_command(self, tmp_path, capsys):
        design = tmp_path / "d.beh"
        design.write_text(
            "input a b c\nt = a * b\ny = t + c\noutput y\n"
        )
        out = self.run("schedule", str(design), "--cs", "3", capsys=capsys)
        assert "makespan" in out

    def test_schedule_json_output(self, tmp_path, capsys):
        design = tmp_path / "d.beh"
        design.write_text("input a b\ny = a + b\noutput y\n")
        out = self.run("schedule", str(design), "--json", capsys=capsys)
        payload = json.loads(out)
        assert payload["format"] == "repro-schedule"

    def test_synth_command_writes_verilog(self, tmp_path, capsys):
        design = tmp_path / "d.beh"
        design.write_text(
            "input a b c\nt = a * b\nu = t - c\ny = u + a\noutput y\n"
        )
        verilog = tmp_path / "out.v"
        vcd = tmp_path / "out.vcd"
        self.run(
            "synth",
            str(design),
            "--cs",
            "4",
            "--verilog",
            str(verilog),
            "--vcd",
            str(vcd),
            "--inputs",
            "a=3,b=5,c=2",
            capsys=capsys,
        )
        assert "module datapath" in verilog.read_text()
        assert vcd.read_text().startswith("$date")

    def test_synth_json(self, tmp_path, capsys):
        design = tmp_path / "d.beh"
        design.write_text("input a b\ny = a - b\noutput y\n")
        out = self.run("synth", str(design), "--json", capsys=capsys)
        payload = json.loads(out)
        assert payload["format"] == "repro-synthesis"

    def test_baselines_command(self, capsys):
        out = self.run("baselines", capsys=capsys)
        assert "mfs" in out and "fds" in out

    def test_explore_command(self, tmp_path, capsys):
        design = tmp_path / "d.beh"
        design.write_text(
            "input a b c\nt = a * b\nu = t + c\ny = u - a\noutput y\n"
        )
        out = self.run(
            "explore", str(design), "--budgets", "3,5", capsys=capsys
        )
        assert "Pareto-optimal" in out
        assert "knee:" in out

    def test_schedule_svg_output(self, tmp_path, capsys):
        design = tmp_path / "d.beh"
        design.write_text("input a b\ny = a + b\noutput y\n")
        svg = tmp_path / "g.svg"
        self.run("schedule", str(design), "--svg", str(svg), capsys=capsys)
        assert svg.read_text().startswith("<svg")
