"""Tests for the one-shot reproduction-report generator."""

import pytest

from repro.bench.report import generate_report, write_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report(include_runtimes=False)


class TestReport:
    def test_contains_all_sections(self, report_text):
        for heading in (
            "# Reproduction report",
            "## Table 1",
            "## Table 2",
            "## Figure 1",
            "## Figure 2",
            "## Scheduler quality",
        ):
            assert heading in report_text

    def test_match_summary_present(self, report_text):
        assert "matched exactly" in report_text
        # all 7 parseable cells match
        assert "**7/7**" in report_text

    def test_no_paper_mismatch_markers(self, report_text):
        assert " NO " not in report_text

    def test_write_report(self, tmp_path):
        target = tmp_path / "report.md"
        write_report(str(target), include_runtimes=False)
        assert target.read_text().startswith("# Reproduction report")

    def test_runtime_section_optional(self, report_text):
        assert "## Runtimes" not in report_text

    def test_cli_report_command(self, capsys):
        from repro.cli import main

        assert main(["report", "--no-runtimes"]) == 0
        out = capsys.readouterr().out
        assert "## Table 2" in out
