"""Tests for DOT export and text renderings."""

from repro.core.mfs import mfs_schedule
from repro.core.mfsa import mfsa_synthesize
from repro.io.dot import dfg_to_dot, schedule_to_dot
from repro.io.gridviz import render_grid
from repro.io.text import render_datapath, render_schedule
from repro.bench.suites import hal_diffeq


class TestDot:
    def test_dfg_dot_structure(self):
        text = dfg_to_dot(hal_diffeq())
        assert text.startswith("digraph")
        assert text.rstrip().endswith("}")
        assert '"m1" -> "m4"' in text
        assert '"in:x"' in text

    def test_dfg_dot_outputs(self):
        text = dfg_to_dot(hal_diffeq())
        assert '"out:u1"' in text

    def test_dfg_dot_constants(self):
        text = dfg_to_dot(hal_diffeq())
        assert '"const:3"' in text

    def test_branch_labels(self):
        from repro.bench.suites import conditional_example

        text = dfg_to_dot(conditional_example())
        assert "c0:T" in text
        assert "c0:F" in text

    def test_schedule_dot_ranks(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=5)
        text = schedule_to_dot(result.schedule)
        assert "rank=same" in text
        assert "cs1" in text


class TestTextRenderings:
    def test_schedule_table(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=5)
        text = render_schedule(result.schedule)
        assert "cs  1" in text
        assert "cs  5" in text
        assert "makespan" in text

    def test_multicycle_stage_annotation(self, timing_mul2):
        result = mfs_schedule(hal_diffeq(), timing_mul2, cs=7)
        text = render_schedule(result.schedule)
        assert "/2" in text  # second stage of a 2-cycle multiply

    def test_datapath_summary(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        text = render_datapath(result.datapath)
        assert "cost" in text
        assert "registers" in text
        assert "r0:" in text

    def test_grid_rendering(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=5)
        text = render_grid(result.grid, "mul")
        assert "placement table" in text
        assert "X" in text
