"""Tests for the extra DSP workloads and the MFSA area-budget mode."""

import pytest

from repro.core.mfsa import MFSAScheduler, mfsa_synthesize
from repro.dfg.analysis import critical_path_length
from repro.errors import InfeasibleScheduleError
from repro.sim.executor import verify_equivalence
from repro.bench.workloads import biquad, dct8, fft8


class TestWorkloads:
    def test_dct8_structure(self, ops, timing):
        g = dct8()
        g.validate(ops)
        counts = g.count_by_kind()
        assert counts["mul"] == 10
        assert counts["add"] + counts["sub"] == 24
        assert critical_path_length(g, timing) <= 6

    def test_fft8_structure(self, ops, timing):
        g = fft8()
        g.validate(ops)
        counts = g.count_by_kind()
        assert counts["mul"] % 4 == 0  # four real multiplies per twiddle
        assert len(g.outputs) == 16

    def test_biquad_structure(self, ops):
        g = biquad()
        g.validate(ops)
        assert g.count_by_kind() == {"mul": 4, "add": 2, "sub": 2}

    @pytest.mark.parametrize("factory", [dct8, fft8, biquad])
    def test_workloads_schedule_and_synthesize(
        self, factory, timing, alu_family
    ):
        g = factory()
        cs = critical_path_length(g, timing) + 2
        result = mfsa_synthesize(g, timing, alu_family, cs=cs)
        result.schedule.validate()
        inputs = {name: (i % 7) - 3 for i, name in enumerate(g.inputs)}
        verify_equivalence(result.datapath, inputs)


class TestAreaBudget:
    """The area budget certifies a ceiling on ALU spend.

    The reuse-first policy already opens the fewest instances the greedy
    can, so the contract is: a budget at/above that appetite succeeds and
    is certified; a budget below it raises instead of silently
    overspending (documented limitation — the paper itself has no
    cost-constrained mode).
    """

    def test_budget_at_appetite_succeeds_and_caps(self, timing, alu_family):
        g = dct8()
        cs = critical_path_length(g, timing) + 12
        unbounded = mfsa_synthesize(g, timing, alu_family, cs=cs)
        capped = MFSAScheduler(
            g, timing, alu_family, cs=cs, area_budget=unbounded.cost.alu
        ).run()
        assert capped.cost.alu <= unbounded.cost.alu
        capped.schedule.validate()

    def test_budget_above_appetite_does_not_change_result(
        self, timing, alu_family
    ):
        g = biquad()
        cs = critical_path_length(g, timing) + 4
        unbounded = mfsa_synthesize(g, timing, alu_family, cs=cs)
        roomy = MFSAScheduler(
            g, timing, alu_family, cs=cs,
            area_budget=unbounded.cost.alu * 10,
        ).run()
        assert roomy.cost.alu == pytest.approx(unbounded.cost.alu)

    def test_budget_below_appetite_raises(self, timing, alu_family):
        g = dct8()
        cs = critical_path_length(g, timing) + 12
        unbounded = mfsa_synthesize(g, timing, alu_family, cs=cs)
        with pytest.raises(InfeasibleScheduleError):
            MFSAScheduler(
                g, timing, alu_family, cs=cs,
                area_budget=unbounded.cost.alu * 0.8,
            ).run()

    def test_budget_result_still_equivalent(self, timing, alu_family):
        g = biquad()
        cs = critical_path_length(g, timing) + 4
        unbounded = mfsa_synthesize(g, timing, alu_family, cs=cs)
        capped = MFSAScheduler(
            g, timing, alu_family, cs=cs, area_budget=unbounded.cost.alu
        ).run()
        inputs = {name: i + 1 for i, name in enumerate(g.inputs)}
        verify_equivalence(capped.datapath, inputs)

    def test_impossible_budget_raises(self, timing, alu_family):
        g = biquad()
        cs = critical_path_length(g, timing) + 2
        with pytest.raises(InfeasibleScheduleError):
            MFSAScheduler(
                g, timing, alu_family, cs=cs, area_budget=1000.0
            ).run()

    def test_nonpositive_budget_rejected(self, timing, alu_family):
        with pytest.raises(ValueError):
            MFSAScheduler(
                biquad(), timing, alu_family, cs=8, area_budget=0.0
            )

    def test_more_slack_lowers_the_appetite(self, timing, alu_family):
        # The way to spend less area is a looser time constraint: the
        # reuse-first policy then serializes onto fewer instances, and the
        # budget can certify the smaller ceiling.
        g = dct8()
        tight_cs = critical_path_length(g, timing) + 2
        loose_cs = critical_path_length(g, timing) + 24
        tight = mfsa_synthesize(g, timing, alu_family, cs=tight_cs)
        loose = mfsa_synthesize(g, timing, alu_family, cs=loose_cs)
        assert loose.cost.alu < tight.cost.alu
        certified = MFSAScheduler(
            g, timing, alu_family, cs=loose_cs, area_budget=loose.cost.alu
        ).run()
        assert certified.cost.alu <= loose.cost.alu
