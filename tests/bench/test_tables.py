"""Tests for the Table-1 / Table-2 regeneration harnesses.

These are the *shape checks* of the reproduction: where the paper's cell
is parseable we require an exact match; everywhere we require the trends
the paper's evaluation rests on.
"""

import pytest

from repro.bench.table1 import format_fu_mix, render_table1, table1_rows
from repro.bench.table2 import (
    render_table2,
    style_overhead,
    table2_rows,
)


@pytest.fixture(scope="module")
def t1_rows():
    return table1_rows()


@pytest.fixture(scope="module")
def t2_rows():
    return table2_rows()


class TestTable1:
    def test_all_cells_regenerate(self, t1_rows):
        assert len(t1_rows) == sum(
            1 for _ in _iter_cases()
        )

    def test_every_schedule_fits_budget(self, t1_rows):
        for row in t1_rows:
            assert row.makespan <= row.cs

    def test_parseable_paper_cells_match(self, t1_rows):
        mismatches = [
            (row.number, row.cs, row.fu_notation(), format_fu_mix(row.paper_fu))
            for row in t1_rows
            if row.matches_paper() is False
        ]
        assert mismatches == []

    def test_fu_counts_shrink_with_budget(self, t1_rows):
        # within one example and identical features, larger T never needs
        # more total units
        from collections import defaultdict

        by_key = defaultdict(list)
        for row in t1_rows:
            by_key[(row.number, row.mul_latency)].append(row)
        for rows in by_key.values():
            rows = [
                r for r in rows
                # compare plain cases only (no pipelining variants)
                if all(
                    r2.cs != r.cs or r2 is r
                    for r2 in rows
                )
            ]
            ordered = sorted(rows, key=lambda r: r.cs)
            totals = [sum(r.fu_counts.values()) for r in ordered]
            assert totals == sorted(totals, reverse=True)

    def test_notation_round_trip(self):
        assert format_fu_mix({"mul": 2, "add": 1, "sub": 1}) == "**,+,-"
        assert format_fu_mix({"add": 3}) == "+++"
        assert format_fu_mix({}) == ""

    def test_render_contains_all_rows(self, t1_rows):
        text = render_table1(t1_rows)
        assert text.count("#") >= len(t1_rows)
        assert "NO" not in text  # no paper mismatches


def _iter_cases():
    from repro.bench.suites import EXAMPLES

    for spec in EXAMPLES.values():
        for case in spec.table1_cases:
            yield spec, case


class TestTable2:
    def test_both_styles_for_all_examples(self, t2_rows):
        assert len(t2_rows) == 12
        assert {row.style for row in t2_rows} == {1, 2}

    def test_costs_positive_and_complete(self, t2_rows):
        for row in t2_rows:
            assert row.cost > 0
            assert row.registers > 0
            assert row.alu_labels

    def test_style2_overhead_in_paper_band(self, t2_rows):
        # Paper: style 2 costs 2-11 % more than style 1.  Heuristic noise
        # can flip individual examples slightly negative; the shape check
        # is a bounded band plus a non-negative trend on the chain-heavy
        # example (#3).
        for number in range(1, 7):
            overhead = style_overhead(t2_rows, number)
            assert -0.05 <= overhead <= 0.15
        assert style_overhead(t2_rows, 3) > 0.0

    def test_multifunction_alus_appear(self, t2_rows):
        merged = [
            label
            for row in t2_rows
            for label in row.alu_labels
            if len(label.strip("()")) > 1
        ]
        assert merged  # the library's merging pay-off is exercised

    def test_mux_inputs_bounded_by_operands(self, t2_rows):
        from repro.bench.suites import EXAMPLES

        per_example = {spec.number: spec for spec in EXAMPLES.values()}
        for row in t2_rows:
            dfg = per_example[row.number].build()
            operand_count = sum(len(node.operands) for node in dfg)
            assert row.mux_inputs <= operand_count

    def test_alu_notation_compact(self, t2_rows):
        row = t2_rows[0]
        notation = row.alu_notation()
        assert "(" in notation

    def test_render_mentions_overheads(self, t2_rows):
        text = render_table2(t2_rows)
        assert "overhead" in text
        for number in range(1, 7):
            assert f"#{number}" in text


class TestFigureHarnesses:
    def test_figure1_renders(self):
        from repro.bench.figures import figure1

        text = figure1("ex3")
        assert "Figure 1" in text
        assert "dV" in text
        assert "must be <= 0" in text

    def test_figure1_move_decreases_energy(self):
        from repro.bench.figures import figure1

        text = figure1("ex1")
        delta_line = next(
            line for line in text.splitlines() if line.startswith("move:")
        )
        delta = float(delta_line.split("dV =")[1].split()[0].rstrip(","))
        assert delta <= 0

    def test_figure2_renders_all_frame_kinds(self):
        from repro.bench.figures import figure2

        text = figure2("ex3")
        assert "Figure 2" in text
        assert "M" in text
        assert "legend" in text

    def test_figure2_has_placed_predecessors(self):
        from repro.bench.figures import figure2

        text = figure2("ex6")
        assert "K" in text

    def test_figure2_svg(self):
        from repro.bench.figures import figure2_svg

        text = figure2_svg("ex3")
        assert text.startswith("<svg")
        assert "forbidden" in text

    def test_figure_gantt_svg(self):
        from repro.bench.figures import figure_gantt_svg

        text = figure_gantt_svg("ex3")
        assert text.startswith("<svg")
        assert "m1 (*)" in text
