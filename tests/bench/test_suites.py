"""Tests pinning the structural properties of the six design examples."""

import pytest

from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.ops import standard_operation_set
from repro.bench.suites import (
    EXAMPLES,
    ar_lattice,
    chained_addsub,
    conditional_example,
    ewf,
    facet_like,
    fir16,
    hal_diffeq,
    iir_bandpass,
)


class TestOpMixes:
    def test_facet_signature(self):
        counts = facet_like().count_by_kind()
        assert counts == {
            "mul": 1, "sub": 1, "add": 2, "eq": 1, "and": 1, "or": 1
        }

    def test_chained_signature(self):
        counts = chained_addsub().count_by_kind()
        assert counts == {"add": 4, "sub": 4}

    def test_hal_signature(self):
        counts = hal_diffeq().count_by_kind()
        assert counts == {"mul": 6, "add": 2, "sub": 2, "lt": 1}

    def test_iir_signature(self):
        counts = iir_bandpass().count_by_kind()
        assert counts["mul"] == 8
        assert counts["add"] + counts["sub"] == 15

    def test_ar_signature(self):
        counts = ar_lattice().count_by_kind()
        assert counts == {"mul": 16, "add": 12}

    def test_ewf_signature(self):
        counts = ewf().count_by_kind()
        assert counts == {"add": 26, "mul": 8}
        assert len(ewf()) == 34

    def test_fir_signature(self):
        counts = fir16().count_by_kind()
        assert counts == {"mul": 16, "add": 15}


class TestCriticalPaths:
    def cases(self):
        ops1 = standard_operation_set(1)
        ops2 = standard_operation_set(2)
        return TimingModel(ops=ops1), TimingModel(ops=ops2)

    def test_facet_cp(self):
        t1, _t2 = self.cases()
        assert critical_path_length(facet_like(), t1) == 4

    def test_hal_cp(self):
        t1, _t2 = self.cases()
        assert critical_path_length(hal_diffeq(), t1) == 4

    def test_chained_cp_with_clock(self):
        ops = standard_operation_set(1)
        chained = TimingModel(ops=ops, clock_period_ns=20.0)
        assert critical_path_length(chained_addsub(), chained) == 4

    def test_iir_cp(self):
        t1, _t2 = self.cases()
        assert critical_path_length(iir_bandpass(), t1) == 8

    def test_ar_cp_two_cycle(self):
        _t1, t2 = self.cases()
        assert critical_path_length(ar_lattice(), t2) == 9

    def test_ewf_cp_both_latencies(self):
        t1, t2 = self.cases()
        assert critical_path_length(ewf(), t1) == 14
        assert critical_path_length(ewf(), t2) == 17

    def test_conditional_example_has_exclusive_ops(self):
        g = conditional_example()
        assert g.mutually_exclusive("then_mul", "else_mul")


class TestRegistry:
    def test_six_examples(self):
        assert len(EXAMPLES) == 6
        assert sorted(spec.number for spec in EXAMPLES.values()) == [
            1, 2, 3, 4, 5, 6
        ]

    def test_every_example_validates(self, ops):
        for spec in EXAMPLES.values():
            spec.build().validate(ops)

    def test_factories_return_fresh_graphs(self):
        spec = EXAMPLES["ex1"]
        assert spec.build() is not spec.build()

    def test_every_example_has_table1_cases(self):
        for spec in EXAMPLES.values():
            assert spec.table1_cases
            for case in spec.table1_cases:
                assert case.cs >= 1

    def test_cases_are_feasible(self):
        for spec in EXAMPLES.values():
            for case in spec.table1_cases:
                ops = standard_operation_set(case.mul_latency)
                timing = TimingModel(ops=ops, clock_period_ns=case.clock_ns)
                assert critical_path_length(spec.build(), timing) <= case.cs
