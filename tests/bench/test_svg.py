"""Tests for the SVG renderers."""

import pytest

from repro.core.mfs import MFSScheduler
from repro.io.svg import frames_to_svg, schedule_to_svg
from repro.bench.suites import hal_diffeq


@pytest.fixture
def mfs_result(timing):
    return MFSScheduler(
        hal_diffeq(), timing, cs=5, mode="time", record_frames=True
    ).run()


class TestScheduleSVG:
    def test_well_formed(self, mfs_result):
        text = schedule_to_svg(mfs_result.schedule)
        assert text.startswith("<svg")
        assert text.endswith("</svg>")
        assert text.count("<rect") >= len(hal_diffeq())

    def test_one_box_per_operation(self, mfs_result):
        text = schedule_to_svg(mfs_result.schedule)
        for name in hal_diffeq().node_names():
            assert f"{name} (" in text

    def test_headers_cover_all_steps(self, mfs_result):
        text = schedule_to_svg(mfs_result.schedule)
        for step in range(1, mfs_result.schedule.cs + 1):
            assert f"cs{step}" in text

    def test_explicit_binding_accepted(self, mfs_result):
        binding = {
            name: (pos.table, pos.x)
            for name, pos in mfs_result.placements.items()
        }
        text = schedule_to_svg(mfs_result.schedule, binding=binding)
        assert "mul#1" in text

    def test_escaping(self, mfs_result):
        text = schedule_to_svg(mfs_result.schedule, title="a < b & c")
        assert "a &lt; b &amp; c" in text


class TestFramesSVG:
    def test_well_formed(self, mfs_result):
        name, frame = next(iter(mfs_result.frames_log.items()))
        text = frames_to_svg(
            frame,
            mfs_result.grid,
            chosen=mfs_result.placements[name],
        )
        assert text.startswith("<svg")
        assert text.endswith("</svg>")
        assert "legend" not in text  # legend is drawn, not labelled as such
        assert "move frame" in text

    def test_predecessors_marked(self, mfs_result):
        dfg = mfs_result.schedule.dfg
        target = next(
            name
            for name in mfs_result.frames_log
            if dfg.predecessors(name)
        )
        predecessors = {
            p: mfs_result.placements[p]
            for p in dfg.predecessors(target)
            if p in mfs_result.placements
        }
        text = frames_to_svg(
            mfs_result.frames_log[target],
            mfs_result.grid,
            predecessors=predecessors,
        )
        assert "predecessor" in text

    def test_cell_count(self, mfs_result):
        name, frame = next(iter(mfs_result.frames_log.items()))
        text = frames_to_svg(frame, mfs_result.grid)
        columns = mfs_result.grid.columns(frame.table)
        expected_cells = columns * mfs_result.grid.cs
        # grid cells + background + legend swatches
        assert text.count("<rect") >= expected_cells
