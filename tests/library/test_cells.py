"""Tests for the cell-library data model."""

import pytest

from repro.errors import LibraryError
from repro.library.cells import ALUCell, CellLibrary, MuxCostTable


def small_library():
    return CellLibrary(
        name="small",
        alus=[
            ALUCell(name="adder", kinds=frozenset({"add"}), area=100.0),
            ALUCell(name="addsub", kinds=frozenset({"add", "sub"}), area=150.0),
            ALUCell(name="mult", kinds=frozenset({"mul"}), area=900.0),
        ],
        register_area=50.0,
        mux_costs=MuxCostTable({2: 10.0, 3: 25.0, 4: 45.0}),
    )


class TestALUCell:
    def test_can_execute(self):
        cell = ALUCell(name="x", kinds=frozenset({"add", "sub"}), area=1.0)
        assert cell.can_execute("add")
        assert not cell.can_execute("mul")

    def test_label_uses_symbols(self):
        cell = ALUCell(name="x", kinds=frozenset({"add", "sub"}), area=1.0)
        assert cell.label() == "(+-)"

    def test_rejects_empty_kinds(self):
        with pytest.raises(LibraryError):
            ALUCell(name="x", kinds=frozenset(), area=1.0)

    def test_rejects_nonpositive_area(self):
        with pytest.raises(LibraryError):
            ALUCell(name="x", kinds=frozenset({"add"}), area=0.0)


class TestMuxCostTable:
    def test_single_input_is_free(self):
        table = MuxCostTable({2: 10.0})
        assert table.cost(0) == 0.0
        assert table.cost(1) == 0.0

    def test_table_lookup(self):
        table = MuxCostTable({2: 10.0, 3: 25.0})
        assert table.cost(2) == 10.0
        assert table.cost(3) == 25.0

    def test_extension_beyond_table(self):
        table = MuxCostTable({2: 10.0}, unit_cost=7.0)
        assert table.cost(5) == 7.0 * 4

    def test_max_increment_positive(self):
        table = MuxCostTable({2: 10.0, 3: 25.0, 4: 45.0})
        assert table.max_increment() >= 20.0

    def test_rejects_invalid_entries(self):
        with pytest.raises(LibraryError):
            MuxCostTable({1: 5.0})
        with pytest.raises(LibraryError):
            MuxCostTable({2: -1.0})


class TestCellLibrary:
    def test_cells_for_kind(self):
        lib = small_library()
        names = {cell.name for cell in lib.cells_for("add")}
        assert names == {"adder", "addsub"}

    def test_cells_for_missing_kind_raises(self):
        with pytest.raises(LibraryError):
            small_library().cells_for("div")

    def test_check_covers(self):
        lib = small_library()
        lib.check_covers(["add", "sub", "mul"])
        with pytest.raises(LibraryError):
            lib.check_covers(["add", "xor"])

    def test_duplicate_cell_name_rejected(self):
        cell = ALUCell(name="dup", kinds=frozenset({"add"}), area=1.0)
        with pytest.raises(LibraryError):
            CellLibrary(name="bad", alus=[cell, cell], register_area=1.0)

    def test_rejects_nonpositive_register_area(self):
        with pytest.raises(LibraryError):
            CellLibrary(name="bad", alus=[], register_area=0.0)

    def test_restricted_sublibrary(self):
        lib = small_library().restricted(["adder", "mult"])
        assert len(lib.cells()) == 2
        with pytest.raises(LibraryError):
            lib.cells_for("sub")

    def test_f_bounds(self):
        lib = small_library()
        assert lib.f_alu_max() == 900.0
        assert lib.f_reg_max() == 100.0
        assert lib.f_mux_max() == 2 * lib.mux_costs.max_increment()

    def test_cell_lookup(self):
        lib = small_library()
        assert lib.cell("adder").area == 100.0
        with pytest.raises(LibraryError):
            lib.cell("ghost")
