"""Tests for the synthetic NCR-like libraries."""

import pytest

from repro.dfg.ops import OpKind
from repro.library.ncr import (
    BASE_AREAS,
    alu_area,
    datapath_library,
    full_pairs_library,
    make_alu,
    ncr_like_library,
    simple_fu_library,
)


class TestAluArea:
    def test_single_function_equals_base(self):
        assert alu_area([OpKind.ADD]) == BASE_AREAS[OpKind.ADD]

    def test_merging_cheaper_than_two_singles(self):
        merged = alu_area([OpKind.ADD, OpKind.SUB])
        singles = BASE_AREAS[OpKind.ADD] + BASE_AREAS[OpKind.SUB]
        assert merged < singles
        assert merged > max(BASE_AREAS[OpKind.ADD], BASE_AREAS[OpKind.SUB])

    def test_dominant_function_sets_floor(self):
        assert alu_area([OpKind.MUL, OpKind.ADD]) > BASE_AREAS[OpKind.MUL]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            alu_area([])

    def test_make_alu_label(self):
        assert make_alu((OpKind.ADD, OpKind.SUB)).label() == "(+-)"


class TestLibraries:
    def test_ncr_covers_all_kinds(self):
        lib = ncr_like_library()
        for kind in OpKind:
            assert lib.cells_for(kind.value)

    def test_ncr_has_multifunction_cells(self):
        lib = ncr_like_library()
        assert any(len(cell.kinds) > 1 for cell in lib.cells())

    def test_extra_combos(self):
        lib = ncr_like_library(extra_combos=[("add", "xor")])
        assert any(
            cell.kinds == frozenset({"add", "xor"}) for cell in lib.cells()
        )

    def test_datapath_library_restricts_singles(self):
        lib = datapath_library()
        # subtraction is only available on multifunction ALUs
        for cell in lib.cells_for("sub"):
            assert len(cell.kinds) > 1

    def test_datapath_library_covers_example_kinds(self):
        lib = datapath_library()
        for kind in ("add", "sub", "mul", "eq", "and", "or", "lt", "gt"):
            assert lib.cells_for(kind)

    def test_simple_fu_library_single_function_only(self):
        lib = simple_fu_library(["add", "mul"])
        assert all(len(cell.kinds) == 1 for cell in lib.cells())
        assert len(lib.cells()) == 2

    def test_simple_fu_library_dedupes_kinds(self):
        lib = simple_fu_library(["add", "add", "mul"])
        assert len(lib.cells()) == 2

    def test_full_pairs_library(self):
        lib = full_pairs_library(["add", "sub", "mul"])
        # 3 singles + 3 pairs
        assert len(lib.cells()) == 6

    def test_mux_costs_nonlinear(self):
        costs = ncr_like_library().mux_costs
        increments = [
            costs.cost(r + 1) - costs.cost(r) for r in range(2, 10)
        ]
        assert increments == sorted(increments)  # marginal cost grows
