"""Conditionals through the whole flow: scheduling shares hardware, the
controller tolerates exclusive co-location, simulation stays faithful to
the speculative semantics."""

import pytest

from repro.core.mfs import mfs_schedule
from repro.core.mfsa import mfsa_synthesize
from repro.dfg.analysis import critical_path_length
from repro.dfg.generators import random_conditional_dfg
from repro.rtl.controller import build_controller
from repro.sim.executor import verify_equivalence
from repro.bench.suites import conditional_example


class TestConditionalFlow:
    def test_mfsa_shares_alus_across_arms(self, timing, alu_family):
        g = conditional_example()
        result = mfsa_synthesize(g, timing, alu_family, cs=4)
        mul_instances = {
            result.datapath.binding["then_mul"],
            result.datapath.binding["else_mul"],
        }
        assert len(mul_instances) == 1  # exclusive arms share the multiplier

    def test_exclusive_ops_may_share_a_step(self, timing, alu_family):
        g = conditional_example()
        result = mfsa_synthesize(g, timing, alu_family, cs=4)
        assert result.schedule.start("then_mul") == result.schedule.start(
            "else_mul"
        )

    def test_controller_builds_despite_colocation(self, timing, alu_family):
        g = conditional_example()
        result = mfsa_synthesize(g, timing, alu_family, cs=4)
        controller = build_controller(result.datapath)
        assert controller.n_states == 4

    def test_speculative_simulation_matches_reference(self, timing, alu_family):
        g = conditional_example()
        result = mfsa_synthesize(g, timing, alu_family, cs=4)
        verify_equivalence(
            result.datapath, {"a": 9, "c": 2, "d": 3, "e": 4, "f": 5}
        )

    def test_random_conditional_designs(self, timing, alu_family):
        for seed in range(4):
            g = random_conditional_dfg(seed=seed, n_ops=16)
            cs = critical_path_length(g, timing) + 2
            result = mfsa_synthesize(g, timing, alu_family, cs=cs)
            inputs = {name: i + 1 for i, name in enumerate(g.inputs)}
            verify_equivalence(result.datapath, inputs)

    def test_merge_then_flow(self, ops, timing, alu_family):
        from repro.dfg.transforms import merge_conditional_shared_ops

        g = conditional_example()
        # both arms read (d,e)/(d,f): no identical ops, merge is a no-op
        merged = merge_conditional_shared_ops(g, ops)
        assert len(merged) == len(g)
        result = mfs_schedule(merged, timing, cs=4)
        result.schedule.validate()
