"""Integration-suite fixtures: every MFS/MFSA run is audited for free.

The autouse fixture below wraps the schedulers' ``run`` methods so each
result produced anywhere in an integration test — golden tables, end to
end synthesis, the full example matrix — is pushed through the
:mod:`repro.check` invariant audit (schedule legality, frame
containment, grid-occupancy consistency, Liapunov descent, and for MFSA
datapath/netlist consistency).  The differential cross-validation is
left off here: it reruns three baseline schedulers per result, which
the ``repro check`` CLI and the property suite cover already.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _audit_every_run(monkeypatch):
    from repro.check.runner import check_mfs_result, check_mfsa_result
    from repro.core.mfs import MFSScheduler
    from repro.core.mfsa import MFSAScheduler

    real_mfs_run = MFSScheduler.run
    real_mfsa_run = MFSAScheduler.run

    def mfs_run(self):
        result = real_mfs_run(self)
        check_mfs_result(
            result,
            resource_bounds=(
                self.user_bounds if self.mode == "resource" else None
            ),
        ).raise_if_failed()
        return result

    def mfsa_run(self):
        result = real_mfsa_run(self)
        check_mfsa_result(result).raise_if_failed()
        return result

    monkeypatch.setattr(MFSScheduler, "run", mfs_run)
    monkeypatch.setattr(MFSAScheduler, "run", mfsa_run)
