"""Golden-file regression guards.

The regenerated paper artifacts are fully deterministic (no randomness,
deterministic tie-breaks throughout), so their renderings are pinned
verbatim.  Any diff here means the reproduction changed — deliberately
(then refresh the files, see below) or by accident (a regression).

Refresh after an intentional algorithm change::

    python -c "
    from repro.bench.table1 import table1_rows, render_table1
    from repro.bench.table2 import table2_rows, render_table2
    from repro.bench.figures import figure1, figure2
    open('tests/golden/table1.txt','w').write(render_table1(table1_rows()) + '\\n')
    open('tests/golden/table2.txt','w').write(render_table2(table2_rows()) + '\\n')
    open('tests/golden/figure1_ex3.txt','w').write(figure1('ex3') + '\\n')
    open('tests/golden/figure2_ex3.txt','w').write(figure2('ex3') + '\\n')
    "
"""

import pathlib

import pytest

GOLDEN = pathlib.Path(__file__).resolve().parents[1] / "golden"


def golden(name: str) -> str:
    return (GOLDEN / name).read_text()


class TestGoldenArtifacts:
    def test_table1_pinned(self):
        from repro.bench.table1 import render_table1, table1_rows

        assert render_table1(table1_rows()) + "\n" == golden("table1.txt")

    def test_table2_pinned(self):
        from repro.bench.table2 import render_table2, table2_rows

        assert render_table2(table2_rows()) + "\n" == golden("table2.txt")

    def test_figure1_pinned(self):
        from repro.bench.figures import figure1

        assert figure1("ex3") + "\n" == golden("figure1_ex3.txt")

    def test_figure2_pinned(self):
        from repro.bench.figures import figure2

        assert figure2("ex3") + "\n" == golden("figure2_ex3.txt")

    def test_goldens_are_reproduced_twice_identically(self):
        """Determinism of the harness itself (same process, two runs)."""
        from repro.bench.table2 import render_table2, table2_rows

        assert render_table2(table2_rows()) == render_table2(table2_rows())
