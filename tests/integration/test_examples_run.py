"""Keep every example script runnable (they are part of the deliverable)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize(
    "script", sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
)
def test_example_runs_clean(script, tmp_path):
    arguments = [sys.executable, str(EXAMPLES_DIR / script)]
    if script == "behavioral_compiler.py":
        arguments.append(str(tmp_path / "out.v"))
    completed = subprocess.run(
        arguments,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def test_expected_example_set_present():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "ewf_design_space.py",
        "behavioral_compiler.py",
        "pipelined_throughput.py",
        "conditional_sharing.py",
        "nested_loops.py",
    } <= names
