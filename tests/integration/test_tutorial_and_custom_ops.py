"""Executable checks for the tutorial snippets and custom operation kinds."""

import pytest

from repro import (
    DFGBuilder,
    MFSScheduler,
    OperationSet,
    OpSpec,
    TimingModel,
    balance_tree,
    constant_fold,
    critical_path_length,
    mfs_schedule,
    mfsa_synthesize,
    parse_behavior,
    standard_operation_set,
)
from repro.library.cells import ALUCell, CellLibrary, MuxCostTable
from repro.library.ncr import datapath_library
from repro.sim.executor import verify_equivalence
from repro.sim.rtl_executor import verify_controller_equivalence

TUTORIAL_BEHAVIOR = """
input x y g0 g1 lr
x1 = x - lr * g0
y1 = y - lr * g1
swap = x1 < y1
output x1 y1 swap
"""


class TestTutorialFlow:
    def test_the_whole_walkthrough(self):
        dfg = parse_behavior(TUTORIAL_BEHAVIOR, name="gradient")
        timing = TimingModel(ops=standard_operation_set())
        assert critical_path_length(dfg, timing) == 3

        dfg = constant_fold(dfg, timing.ops)
        dfg = balance_tree(dfg, timing.ops)

        result = mfs_schedule(dfg, timing, cs=4)
        result.trajectory.verify()

        synth = mfsa_synthesize(
            dfg, timing, datapath_library(), cs=5, style=2
        )
        inputs = {"x": 10, "y": 4, "g0": 2, "g1": -1, "lr": 3}
        verify_equivalence(synth.datapath, inputs)
        verify_controller_equivalence(synth.datapath, inputs)

    def test_builder_variant_equivalent(self, ops):
        from repro.sim.evaluator import evaluate_dfg

        b = DFGBuilder("gradient")
        x, y, g0, g1, lr = b.inputs("x", "y", "g0", "g1", "lr")
        step0 = x - lr * g0
        step1 = y - lr * g1
        b.outputs(x1=step0, y1=step1, swap=step0.lt(step1))
        built = b.build()
        parsed = parse_behavior(TUTORIAL_BEHAVIOR, name="gradient")
        inputs = {"x": 7, "y": -2, "g0": 1, "g1": 4, "lr": 2}
        for out in ("x1", "y1", "swap"):
            assert (
                evaluate_dfg(built, ops, inputs)[out]
                == evaluate_dfg(parsed, ops, inputs)[out]
            )


class TestCustomOperationKind:
    """A user-registered kind flows through the whole stack."""

    def build_world(self):
        ops = standard_operation_set()
        ops.register(
            OpSpec(
                kind="mac",
                latency=2,
                delay_ns=45.0,
                commutative=False,
                arity=2,
                symbol="#",
                evaluate=lambda a, b: a * b + a,
            )
        )
        timing = TimingModel(ops=ops)

        b = DFGBuilder("custom")
        x, y = b.inputs("x", "y")
        m = b.op("mac", x, y, name="m")
        out = b.op("add", m, y, name="out")
        b.output("o", out)
        return b.build(), timing

    def test_mfs_schedules_custom_kind(self):
        dfg, timing = self.build_world()
        result = mfs_schedule(dfg, timing, cs=4)
        result.schedule.validate()
        assert result.schedule.end("m") == result.schedule.start("m") + 1

    def test_evaluator_uses_custom_semantics(self):
        from repro.sim.evaluator import evaluate_dfg

        dfg, timing = self.build_world()
        values = evaluate_dfg(dfg, timing.ops, {"x": 3, "y": 4})
        assert values["op:m"] == 3 * 4 + 3
        assert values["o"] == 15 + 4

    def test_mfsa_with_custom_cell_library(self):
        dfg, timing = self.build_world()
        library = CellLibrary(
            name="custom",
            alus=[
                ALUCell(name="mac_unit", kinds=frozenset({"mac"}), area=9000.0),
                ALUCell(name="adder", kinds=frozenset({"add"}), area=2800.0),
            ],
            register_area=1500.0,
            mux_costs=MuxCostTable({2: 700.0}),
        )
        result = mfsa_synthesize(dfg, timing, library, cs=4)
        assert sorted(
            cell for cell, _i in result.datapath.binding.values()
        ) == ["adder", "mac_unit"]
        verify_equivalence(result.datapath, {"x": 3, "y": 4})

    def test_custom_kind_in_resource_mode(self):
        dfg, timing = self.build_world()
        result = MFSScheduler(
            dfg,
            timing,
            mode="resource",
            resource_bounds={"mac": 1, "add": 1},
        ).run()
        result.schedule.validate(resource_bounds={"mac": 1, "add": 1})
