"""Tests for the design-space exploration driver."""

import pytest

from repro.explore import (
    DesignPoint,
    design_space,
    knee_point,
    pareto_front,
    render_design_space,
)
from repro.bench.suites import hal_diffeq, iir_bandpass


@pytest.fixture(scope="module")
def points():
    from repro.dfg.analysis import TimingModel
    from repro.dfg.ops import standard_operation_set
    from repro.library.ncr import datapath_library

    timing = TimingModel(ops=standard_operation_set())
    return design_space(hal_diffeq(), timing, datapath_library())


class TestDesignSpace:
    def test_default_ladder_nonempty(self, points):
        assert len(points) >= 4
        assert points[0].cs == 4  # the critical path

    def test_area_decreases_with_latency(self, points):
        ordered = sorted(points, key=lambda p: p.cs)
        alu_areas = [p.alu_area for p in ordered]
        assert alu_areas == sorted(alu_areas, reverse=True)

    def test_keep_results(self, ops):
        from repro.dfg.analysis import TimingModel
        from repro.library.ncr import datapath_library

        timing = TimingModel(ops=ops)
        points = design_space(
            hal_diffeq(), timing, datapath_library(),
            budgets=[4, 6], keep_results=True,
        )
        assert set(points.results) == {4, 6}
        points.results[4].schedule.validate()

    def test_explicit_budgets(self, ops):
        from repro.dfg.analysis import TimingModel
        from repro.library.ncr import datapath_library

        timing = TimingModel(ops=ops)
        points = design_space(
            iir_bandpass(), timing, datapath_library(), budgets=[8, 13]
        )
        assert [p.cs for p in points] == [8, 13]


class TestPareto:
    def test_front_is_nondominated(self, points):
        front = pareto_front(points)
        for a in front:
            for b in front:
                if a is not b:
                    assert not a.dominates(b)

    def test_front_members_come_from_points(self, points):
        front = pareto_front(points)
        assert set(id(p) for p in front) <= set(id(p) for p in points)

    def test_dominance_semantics(self):
        cheap_fast = DesignPoint(4, 100.0, 50.0, 2, 4, ())
        dear_slow = DesignPoint(6, 200.0, 80.0, 3, 6, ())
        assert cheap_fast.dominates(dear_slow)
        assert not dear_slow.dominates(cheap_fast)
        assert not cheap_fast.dominates(cheap_fast)

    def test_knee_on_synthetic_front(self):
        front = [
            DesignPoint(4, 100.0, 0, 0, 0, ()),
            DesignPoint(5, 40.0, 0, 0, 0, ()),  # the obvious knee
            DesignPoint(10, 35.0, 0, 0, 0, ()),
        ]
        assert knee_point(front).cs == 5

    def test_knee_edge_cases(self):
        assert knee_point([]) is None
        only = DesignPoint(4, 1.0, 0, 0, 0, ())
        assert knee_point([only]) is only

    def test_knee_lies_on_front(self, points):
        front = pareto_front(points)
        knee = knee_point(front)
        assert knee in front


class TestRendering:
    def test_render_marks_front(self, points):
        text = render_design_space(points)
        assert "Pareto-optimal" in text
        assert "*" in text
        for point in points:
            assert str(point.cs) in text
