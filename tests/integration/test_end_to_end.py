"""End-to-end integration: behavior text → schedule → datapath → RTL → sim."""

import pytest

from repro.core.mfs import MFSScheduler
from repro.core.mfsa import mfsa_synthesize
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.parser import parse_behavior
from repro.dfg.transforms import merge_conditional_shared_ops
from repro.rtl.controller import build_controller
from repro.rtl.netlist import build_netlist
from repro.rtl.verilog import emit_verilog
from repro.sim.executor import verify_equivalence


BEHAVIOR = """
# complex-multiply accumulate: (a+jb) * (c+jd) + (er+jei)
input ar ai br bi er ei
t1 = ar * br
t2 = ai * bi
t3 = ar * bi
t4 = ai * br
re = t1 - t2 + er
im = t3 + t4 + ei
output re im
"""


class TestFullFlow:
    def test_parse_schedule_allocate_emit_simulate(self, ops, alu_family):
        dfg = parse_behavior(BEHAVIOR, name="cmac")
        timing = TimingModel(ops=ops)
        cs = critical_path_length(dfg, timing) + 1
        result = mfsa_synthesize(dfg, timing, alu_family, cs=cs)

        # schedule level
        result.schedule.validate()
        result.trajectory.verify()

        # datapath level: functional equivalence on several input vectors
        for scale in (1, -3, 17):
            inputs = {
                "ar": 2 * scale,
                "ai": 3 * scale,
                "br": 5,
                "bi": -7,
                "er": 11,
                "ei": 13,
            }
            trace = verify_equivalence(result.datapath, inputs)
            expected_re = (2 * scale * 5) - (3 * scale * -7) + 11
            assert trace.result("re") == expected_re

        # RTL level
        netlist = build_netlist(result.datapath)
        netlist.validate()
        controller = build_controller(result.datapath)
        assert controller.n_states == cs
        verilog = emit_verilog(result.datapath, module_name="cmac")
        assert "module cmac" in verilog

    def test_conditional_flow_with_merge(self, ops, alu_family):
        text = """
        input a b c
        cond = a < b
        branch c0 then
        x1 = a * b
        y1 = x1 + c
        branch c0 else
        x2 = a * b
        y2 = x2 - c
        end c0
        output cond y1 y2
        """
        dfg = parse_behavior(text, name="cond_flow")
        timing = TimingModel(ops=ops)
        merged = merge_conditional_shared_ops(dfg, ops)
        assert merged.count_by_kind()["mul"] == 1

        cs = critical_path_length(merged, timing) + 1
        result = mfsa_synthesize(merged, timing, alu_family, cs=cs)
        verify_equivalence(result.datapath, {"a": 4, "b": 9, "c": 2})

    def test_mfs_then_manual_binding_flow(self, ops):
        from repro.allocation.binding import bind_functional_units
        from repro.allocation.datapath import Datapath
        from repro.library.ncr import simple_fu_library

        dfg = parse_behavior(BEHAVIOR, name="cmac")
        timing = TimingModel(ops=ops)
        result = MFSScheduler(dfg, timing, cs=4, mode="time").run()
        binding = {
            name: (f"alu_{kind}", index)
            for name, (kind, index) in bind_functional_units(
                result.schedule
            ).items()
        }
        library = simple_fu_library(dfg.kinds_used())
        datapath = Datapath(result.schedule, library, binding)
        verify_equivalence(
            datapath,
            {"ar": 1, "ai": 2, "br": 3, "bi": 4, "er": 5, "ei": 6},
        )

    def test_resource_constrained_flow(self, ops, alu_family):
        dfg = parse_behavior(BEHAVIOR, name="cmac")
        timing = TimingModel(ops=ops)
        bounds = {"mul": 1, "add": 1, "sub": 1}
        result = MFSScheduler(
            dfg, timing, mode="resource", resource_bounds=bounds
        ).run()
        result.schedule.validate(resource_bounds=bounds)
        assert result.schedule.makespan() >= 4  # 4 multiplies on one unit
