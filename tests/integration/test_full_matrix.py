"""The full-stack matrix: every example through every oracle.

For each of the paper's six examples (plus the extra DSP workloads):
MFS validity, MFSA synthesis, static verification, both simulators,
netlist integrity, both Verilog emitters, testbench and VCD generation.
One parametrized test per (design, stage) keeps failures precise.
"""

import pytest

from repro.allocation.verify import verify_datapath
from repro.core.mfsa import mfsa_synthesize
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library
from repro.rtl.netlist import build_netlist
from repro.rtl.structural import emit_structural_verilog
from repro.rtl.testbench import emit_testbench
from repro.rtl.verilog import emit_verilog
from repro.sim.executor import execute_datapath, verify_equivalence
from repro.sim.rtl_executor import verify_controller_equivalence
from repro.sim.vcd import trace_to_vcd
from repro.bench.suites import EXAMPLES
from repro.bench.workloads import biquad, dct8, fft8

LIBRARY = datapath_library()


def all_designs():
    for key in sorted(EXAMPLES):
        spec = EXAMPLES[key]
        yield pytest.param(key, spec.build, spec.mfsa_mul_latency,
                           spec.mfsa_clock_ns, id=key)
    for factory in (biquad, dct8, fft8):
        yield pytest.param(factory.__name__, factory, 1, None,
                           id=factory.__name__)


@pytest.fixture(scope="module")
def synthesized():
    cache = {}

    def get(key, factory, mul_latency, clock_ns):
        if key not in cache:
            dfg = factory()
            ops = standard_operation_set(mul_latency)
            timing = TimingModel(ops=ops, clock_period_ns=clock_ns)
            cs = critical_path_length(dfg, timing) + 2
            cache[key] = mfsa_synthesize(dfg, timing, LIBRARY, cs=cs)
        return cache[key]

    return get


def _inputs(dfg):
    return {name: (i * 7) % 13 + 1 for i, name in enumerate(dfg.inputs)}


@pytest.mark.parametrize("key,factory,mul_latency,clock_ns", list(all_designs()))
class TestFullMatrix:
    def test_schedule_and_trajectory(self, synthesized, key, factory,
                                     mul_latency, clock_ns):
        result = synthesized(key, factory, mul_latency, clock_ns)
        result.schedule.validate()
        result.trajectory.verify()

    def test_static_verifier_clean(self, synthesized, key, factory,
                                   mul_latency, clock_ns):
        result = synthesized(key, factory, mul_latency, clock_ns)
        assert verify_datapath(result.datapath) == []

    def test_dataflow_simulation(self, synthesized, key, factory,
                                 mul_latency, clock_ns):
        result = synthesized(key, factory, mul_latency, clock_ns)
        verify_equivalence(result.datapath, _inputs(result.schedule.dfg))

    def test_controller_simulation(self, synthesized, key, factory,
                                   mul_latency, clock_ns):
        result = synthesized(key, factory, mul_latency, clock_ns)
        verify_controller_equivalence(
            result.datapath, _inputs(result.schedule.dfg)
        )

    def test_netlist_integrity(self, synthesized, key, factory,
                               mul_latency, clock_ns):
        result = synthesized(key, factory, mul_latency, clock_ns)
        netlist = build_netlist(result.datapath)
        netlist.validate()
        assert netlist.count("alu") == len(result.datapath.instances)

    def test_verilog_emission(self, synthesized, key, factory,
                              mul_latency, clock_ns):
        result = synthesized(key, factory, mul_latency, clock_ns)
        for text in (
            emit_verilog(result.datapath),
            emit_structural_verilog(result.datapath),
        ):
            assert text.count("endmodule") == 1
            assert text.count("(") == text.count(")")

    def test_testbench_and_vcd(self, synthesized, key, factory,
                               mul_latency, clock_ns):
        result = synthesized(key, factory, mul_latency, clock_ns)
        inputs = _inputs(result.schedule.dfg)
        bench = emit_testbench(result.datapath, [inputs])
        assert "$finish;" in bench
        trace = execute_datapath(result.datapath, inputs)
        vcd = trace_to_vcd(result.datapath, trace)
        assert "$enddefinitions $end" in vcd
