"""Reproduction checks of the paper's §6 claims (beyond the two tables).

Each test pins one sentence of the experimental section to measurable
behaviour of this implementation; EXPERIMENTS.md cross-references them.
"""

import time

import pytest

from repro.core.mfs import MFSScheduler
from repro.dfg.analysis import TimingModel
from repro.dfg.ops import standard_operation_set
from repro.bench.baselines import compare_methods
from repro.bench.suites import EXAMPLES
from repro.bench.table1 import run_case
from repro.bench.table2 import run_example


class TestRuntimeClaims:
    """"The CPU time for all examples is less than 0.2 seconds" (MFS) and
    "less than 0.4 seconds" (MFSA) — on a 1992 SPARC; we allow the same
    absolute budget per example on modern hardware, which is generous but
    still catches complexity regressions."""

    def test_mfs_under_200ms_per_example(self):
        for spec in EXAMPLES.values():
            for case in spec.table1_cases:
                start = time.perf_counter()
                run_case(spec, case)
                assert time.perf_counter() - start < 0.2

    def test_mfsa_under_400ms_per_example(self):
        for spec in EXAMPLES.values():
            for style in (1, 2):
                start = time.perf_counter()
                run_example(spec, style)
                assert time.perf_counter() - start < 0.4


class TestQualityClaims:
    """"...produce optimal or near-optimal results for all of the examples
    attempted" — MFS must match our exact scheduler where it can run and
    stay within one unit of force-directed scheduling everywhere."""

    @pytest.fixture(scope="class")
    def rows(self):
        return compare_methods()

    def test_mfs_matches_exact_optimum(self, rows):
        by_example = {}
        for row in rows:
            by_example.setdefault(row.example, {})[row.method] = row
        for example, methods in by_example.items():
            if "exact" in methods:
                assert (
                    methods["mfs"].total_units == methods["exact"].total_units
                ), f"{example}: MFS {methods['mfs'].fu_counts} vs exact"

    def test_mfs_within_one_unit_of_fds(self, rows):
        by_example = {}
        for row in rows:
            by_example.setdefault(row.example, {})[row.method] = row
        for example, methods in by_example.items():
            assert (
                methods["mfs"].total_units <= methods["fds"].total_units + 1
            )

    def test_mfs_weighted_area_within_5pct_of_fds(self, rows):
        by_example = {}
        for row in rows:
            by_example.setdefault(row.example, {})[row.method] = row
        for example, methods in by_example.items():
            ratio = methods["mfs"].weighted_area / methods["fds"].weighted_area
            assert ratio <= 1.05


class TestComplexityClaim:
    """"Analysis of MFS shows that the algorithm runs in O(l^3) in the
    worst case" — check that doubling the problem size scales far below
    quartic (a loose but regression-catching envelope)."""

    def test_scaling_envelope(self):
        from repro.dfg.generators import layered_workload
        from repro.dfg.analysis import critical_path_length

        ops = standard_operation_set()
        timing = TimingModel(ops=ops)

        def runtime(layers, width):
            g = layered_workload(seed=1, layers=layers, width=width)
            cs = critical_path_length(g, timing) + 2
            start = time.perf_counter()
            MFSScheduler(g, timing, cs=cs, mode="time").run()
            return time.perf_counter() - start

        small = max(runtime(6, 5), 1e-3)
        large = runtime(12, 10)  # 4x the operations
        assert large / small < 4**4


class TestStabilityClaim:
    """The Liapunov-decrease property (§2.2) holds on every run — checked
    by the trajectory verifier over all six examples."""

    def test_all_example_trajectories_verify(self):
        for spec in EXAMPLES.values():
            for case in spec.table1_cases:
                result = run_case(spec, case)
                result.trajectory.verify()

    def test_energy_of_choice_is_frame_minimum(self):
        result = run_case(EXAMPLES["ex3"], EXAMPLES["ex3"].table1_cases[0])
        for event in result.trajectory.events:
            assert event.alternatives
            best = min(energy for _p, energy in event.alternatives)
            assert event.energy == pytest.approx(best)
