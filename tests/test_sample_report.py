"""Drift check: docs/sample_report.md is a fresh regeneration, verbatim.

The report renderer derives everything from the trace events (no
wall-clock readings), so the checked-in sample must match a fresh
traced run byte for byte.  Refresh after an intentional renderer or
scheduler change::

    PYTHONPATH=src python -c "
    from pathlib import Path
    from repro.dfg.analysis import TimingModel
    from repro.dfg.ops import standard_operation_set
    from repro.dfg.parser import parse_behavior
    from repro.trace import trace_run
    dfg = parse_behavior(Path('examples/designs/gradient.beh').read_text(),
                         name='gradient')
    run = trace_run(dfg, TimingModel(ops=standard_operation_set()))
    Path('docs/sample_report.md').write_text(run.report)
    "
"""

from pathlib import Path

import pytest

from repro.dfg.analysis import TimingModel
from repro.dfg.ops import standard_operation_set
from repro.dfg.parser import parse_behavior
from repro.trace import trace_run

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def fresh_run():
    dfg = parse_behavior(
        (REPO / "examples/designs/gradient.beh").read_text(), name="gradient"
    )
    return trace_run(dfg, TimingModel(ops=standard_operation_set()))


def test_sample_report_matches_fresh_regeneration(fresh_run):
    assert fresh_run.ok
    sample = (REPO / "docs/sample_report.md").read_text()
    assert fresh_run.report == sample


def test_regeneration_is_deterministic(fresh_run):
    dfg = parse_behavior(
        (REPO / "examples/designs/gradient.beh").read_text(), name="gradient"
    )
    again = trace_run(dfg, TimingModel(ops=standard_operation_set()))
    assert again.jsonl == fresh_run.jsonl
    assert again.report == fresh_run.report
