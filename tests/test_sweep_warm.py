"""Warm-worker regression tests: pool reuse, per-worker caches, chunking.

The acceptance criterion under test: a ``keep_pool=True`` executor must
*reuse* its worker processes across ``map`` calls — the pool initializer
runs once per worker, and :func:`repro.sweep.worker_cached` builds a
heavyweight object (cell library, timing model) at most once per worker
no matter how many items or maps that worker serves.
"""

import pytest

import repro.sweep as sweep_mod
from repro.perf import PerfCounters
from repro.sweep import (
    SweepExecutor,
    worker_cache_builds,
    worker_cached,
    worker_context,
    worker_init_count,
)


def _build_sentinel():
    return object()


def _probe_worker(item):
    """Report this worker's init/cache state alongside the item result.

    ``worker_cached`` is probed with a fixed key, so the build count
    tells exactly how many times this worker paid the heavy build.
    """
    worker_cached(("warm-test.sentinel",), _build_sentinel)
    return (item * item, worker_init_count(), worker_cache_builds())


def _context_worker(item):
    base = worker_context()
    return base + item


class TestWarmPoolReuse:
    def test_keep_pool_reuses_worker_caches_across_maps(
        self, clean_worker_state
    ):
        """One initializer run, one cached build — across many maps."""
        with SweepExecutor(
            backend="process", workers=1, keep_pool=True
        ) as executor:
            first = executor.map(_probe_worker, [1, 2, 3])
            if executor.last_fallback_reason is not None:
                pytest.skip("process pool unavailable in this sandbox")
            second = executor.map(_probe_worker, [4, 5])
        for value, inits, builds in first + second:
            # The worker was initialized exactly once and built the
            # cached object exactly once, even on the second map.
            assert inits == 1
            assert builds == 1
        assert [v for v, _i, _b in first] == [1, 4, 9]
        assert [v for v, _i, _b in second] == [16, 25]

    def test_fresh_pool_per_map_reinitializes(self, clean_worker_state):
        """Without ``keep_pool`` each map pays pool start-up again —
        the contrast that makes the warm path a measurable win."""
        executor = SweepExecutor(backend="process", workers=1)
        first = executor.map(_probe_worker, [2])
        if executor.last_fallback_reason is not None:
            pytest.skip("process pool unavailable in this sandbox")
        second = executor.map(_probe_worker, [3])
        assert first[0][1] == 1 and second[0][1] == 1
        assert first[0][2] == 1 and second[0][2] == 1

    def test_worker_cached_in_parent_builds_once(self):
        before = worker_cache_builds()
        a = worker_cached(("warm-test.parent",), _build_sentinel)
        b = worker_cached(("warm-test.parent",), _build_sentinel)
        assert a is b
        assert worker_cache_builds() == before + 1


class TestSharedContext:
    def test_context_reaches_serial_workers(self):
        executor = SweepExecutor(backend="serial", context=100)
        assert executor.map(_context_worker, [1, 2, 3]) == [101, 102, 103]

    def test_context_reaches_pool_workers(self):
        executor = SweepExecutor(backend="process", workers=1, context=100)
        result = executor.map(_context_worker, [1, 2, 3])
        assert result == [101, 102, 103]

    def test_latest_executor_context_wins_in_parent(self):
        SweepExecutor(backend="serial", context="old")
        executor = SweepExecutor(backend="serial", context="new")
        assert executor.map(lambda _x: worker_context(), [0]) == ["new"]
        executor.map(lambda _x: None, [0])
        assert sweep_mod._WORKER_CONTEXT[1] == "new"


class TestChunkedMap:
    def test_chunked_results_match_serial(self):
        items = list(range(17))
        serial = SweepExecutor(backend="serial").map(_probe_worker, items)
        chunked = SweepExecutor(
            backend="process", workers=2, chunksize=5
        ).map(_probe_worker, items)
        assert [v for v, _i, _b in chunked] == [v for v, _i, _b in serial]

    def test_auto_chunksize_resolution(self):
        executor = SweepExecutor(backend="serial", workers=2, chunksize=0)
        assert executor._effective_chunksize(17) == 3
        assert executor._effective_chunksize(1) == 1
        assert SweepExecutor(chunksize=7)._effective_chunksize(100) == 7

    def test_chunked_on_item_sees_every_item(self):
        seen = {}
        executor = SweepExecutor(backend="process", workers=2, chunksize=4)
        executor.map(
            _square_for_chunks,
            list(range(10)),
            on_item=lambda index, value: seen.__setitem__(index, value),
        )
        assert seen == {i: i * i for i in range(10)}

    def test_bad_chunksize_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(chunksize=-1)

    def test_chunked_perf_counts_every_task(self):
        perf = PerfCounters()
        executor = SweepExecutor(
            backend="process", workers=2, chunksize=3, perf=perf
        )
        executor.map(_square_for_chunks, list(range(9)))
        assert perf.get("sweep.tasks") == 9


def _square_for_chunks(x):
    return x * x


@pytest.fixture
def clean_worker_state(monkeypatch):
    """Reset the parent-side worker globals for absolute-count assertions.

    Forked pool workers inherit the parent's module globals, so any
    earlier in-process ``worker_cached`` call (serial sweeps, the serve
    layer, ``repro.check``) would shift the baseline the workers report.
    """
    monkeypatch.setattr(sweep_mod, "_WORKER_CACHE", {})
    monkeypatch.setattr(sweep_mod, "_WORKER_CACHE_BUILDS", 0)
    monkeypatch.setattr(sweep_mod, "_WORKER_INITS", 0)
