"""Tests for the multiplexer input-list optimiser (§5.6)."""

from repro.allocation.mux import MuxAssignment, MuxOperand, optimize_mux_inputs


def operand(op, left, right, commutative=True):
    return MuxOperand(op=op, left=left, right=right, commutative=commutative)


class TestNonCommutative:
    def test_sides_fixed(self):
        assignment = optimize_mux_inputs(
            [operand("s", "a", "b", commutative=False)]
        )
        assert assignment.l1 == ("a",)
        assert assignment.l2 == ("b",)
        assert assignment.port_of("s", textual_left=True) == 1

    def test_shared_signals_merge(self):
        assignment = optimize_mux_inputs(
            [
                operand("s1", "a", "b", commutative=False),
                operand("s2", "a", "c", commutative=False),
            ]
        )
        assert assignment.l1 == ("a",)
        assert set(assignment.l2) == {"b", "c"}
        assert assignment.total_inputs == 3


class TestCommutative:
    def test_flip_saves_an_input(self):
        # s1 pins a->L1, b->L2; the commutative s2 (b, a) should flip.
        assignment = optimize_mux_inputs(
            [
                operand("s1", "a", "b", commutative=False),
                operand("s2", "b", "a", commutative=True),
            ]
        )
        assert assignment.total_inputs == 2
        assert assignment.swapped["s2"] is True
        assert assignment.port_of("s2", textual_left=True) == 2

    def test_unswapped_preferred_on_tie(self):
        assignment = optimize_mux_inputs([operand("s", "a", "b")])
        assert assignment.swapped["s"] is False

    def test_three_way_sharing(self):
        assignment = optimize_mux_inputs(
            [
                operand("o1", "a", "b"),
                operand("o2", "b", "a"),
                operand("o3", "a", "b"),
            ]
        )
        assert assignment.total_inputs == 2

    def test_improvement_sweep_beats_greedy(self):
        # Greedy order can trap the first op on the wrong side; the
        # fixpoint sweep must recover the optimum of 4.
        operands = [
            operand("o1", "a", "b"),
            operand("o2", "c", "d", commutative=False),
            operand("o3", "b", "c"),
            operand("o4", "d", "a"),
        ]
        assignment = optimize_mux_inputs(operands)
        assert assignment.total_inputs <= 5

    def test_same_signal_both_sides(self):
        assignment = optimize_mux_inputs([operand("sq", "x", "x")])
        assert assignment.l1 == ("x",)
        assert assignment.l2 == ("x",)


class TestUnary:
    def test_unary_goes_to_port1(self):
        assignment = optimize_mux_inputs(
            [MuxOperand(op="n", left="a", right=None, commutative=False)]
        )
        assert assignment.l1 == ("a",)
        assert assignment.l2 == ()

    def test_commutative_unary_treated_as_fixed(self):
        assignment = optimize_mux_inputs(
            [MuxOperand(op="n", left="a", right=None, commutative=True)]
        )
        assert assignment.l1 == ("a",)


class TestInvariants:
    def test_every_operand_reachable(self):
        import random

        rng = random.Random(3)
        signals = [f"s{i}" for i in range(6)]
        for _trial in range(25):
            operands = []
            for index in range(8):
                operands.append(
                    operand(
                        f"o{index}",
                        rng.choice(signals),
                        rng.choice(signals),
                        commutative=rng.random() < 0.5,
                    )
                )
            assignment = optimize_mux_inputs(operands)
            for item in operands:
                left_port = assignment.port_of(item.op, textual_left=True)
                right_port = assignment.port_of(item.op, textual_left=False)
                l_list = assignment.l1 if left_port == 1 else assignment.l2
                r_list = assignment.l1 if right_port == 1 else assignment.l2
                assert item.left in l_list
                assert item.right in r_list

    def test_never_worse_than_naive(self):
        import random

        rng = random.Random(11)
        signals = [f"s{i}" for i in range(5)]
        for _trial in range(25):
            operands = [
                operand(
                    f"o{index}",
                    rng.choice(signals),
                    rng.choice(signals),
                    commutative=rng.random() < 0.7,
                )
                for index in range(7)
            ]
            assignment = optimize_mux_inputs(operands)
            naive_l1 = {item.left for item in operands}
            naive_l2 = {item.right for item in operands}
            assert assignment.total_inputs <= len(naive_l1) + len(naive_l2)

    def test_deterministic(self):
        operands = [
            operand("o1", "a", "b"),
            operand("o2", "b", "c"),
            operand("o3", "c", "a"),
        ]
        first = optimize_mux_inputs(operands)
        second = optimize_mux_inputs(list(operands))
        assert first.l1 == second.l1
        assert first.l2 == second.l2
        assert first.swapped == second.swapped
