"""Tests for value-lifetime analysis."""

from repro.allocation.lifetimes import Lifetime, value_lifetimes
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind
from repro.schedule.types import Schedule


class TestLifetime:
    def test_needs_register(self):
        assert Lifetime("v", 1, 3).needs_register
        assert not Lifetime("v", 2, 2).needs_register

    def test_overlap_semantics(self):
        a = Lifetime("a", 1, 3)
        assert a.overlaps(Lifetime("b", 2, 4))
        assert not a.overlaps(Lifetime("b", 3, 5))  # back-to-back shares
        assert not a.overlaps(Lifetime("b", 4, 6))
        assert a.overlaps(Lifetime("b", 0, 2))

    def test_degenerate_lifetime_never_overlaps(self):
        empty = Lifetime("e", 2, 2)
        assert not empty.overlaps(Lifetime("b", 1, 5))


class TestValueLifetimes:
    def build(self, timing):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        m = b.op(OpKind.MUL, x, y, name="m")
        a = b.op(OpKind.ADD, m, x, name="a")
        late = b.op(OpKind.SUB, m, y, name="late")
        b.output("o", a)
        b.output("p", late)
        g = b.build()
        starts = {"m": 1, "a": 2, "late": 4}
        return Schedule(dfg=g, timing=timing, cs=4, starts=starts)

    def test_birth_is_producer_end(self, timing):
        lifetimes = value_lifetimes(self.build(timing))
        assert lifetimes["op:m"].birth == 1

    def test_death_is_last_consumer(self, timing):
        lifetimes = value_lifetimes(self.build(timing))
        assert lifetimes["op:m"].death == 4  # read by 'late' at step 4

    def test_outputs_live_past_final_step(self, timing):
        lifetimes = value_lifetimes(self.build(timing))
        assert lifetimes["op:a"].death == 5  # cs + 1
        assert lifetimes["op:late"].death == 5

    def test_unused_value_dies_at_birth(self, timing):
        b = DFGBuilder()
        x = b.input("x")
        b.op(OpKind.ADD, x, 1, name="dead")
        g = b.build()
        schedule = Schedule(dfg=g, timing=timing, cs=1, starts={"dead": 1})
        lifetimes = value_lifetimes(schedule)
        assert not lifetimes["op:dead"].needs_register

    def test_inputs_excluded_by_default(self, timing):
        lifetimes = value_lifetimes(self.build(timing))
        assert "in:x" not in lifetimes

    def test_inputs_included_on_request(self, timing):
        lifetimes = value_lifetimes(self.build(timing), count_inputs=True)
        assert lifetimes["in:x"].birth == 0
        assert lifetimes["in:x"].death == 2  # last read by 'a'
        assert lifetimes["in:y"].death == 4  # last read by 'late'

    def test_multicycle_birth(self, timing_mul2):
        b = DFGBuilder()
        x = b.input("x")
        m = b.op(OpKind.MUL, x, x, name="m")
        a = b.op(OpKind.ADD, m, x, name="a")
        b.output("o", a)
        g = b.build()
        schedule = Schedule(
            dfg=g, timing=timing_mul2, cs=4, starts={"m": 1, "a": 4}
        )
        lifetimes = value_lifetimes(schedule)
        assert lifetimes["op:m"].birth == 2  # end of the 2-cycle multiply
        assert lifetimes["op:m"].death == 4
