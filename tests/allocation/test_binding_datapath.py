"""Tests for FU binding, the Datapath container and interconnect stats."""

import pytest

from repro.allocation.binding import bind_functional_units
from repro.allocation.datapath import Datapath
from repro.allocation.interconnect import (
    sharing_ratio,
    transfer_counts,
    wire_count,
    wires,
)
from repro.core.mfs import mfs_schedule
from repro.core.mfsa import mfsa_synthesize
from repro.dfg.analysis import critical_path_length
from repro.dfg.generators import random_dfg
from repro.errors import AllocationError
from repro.library.ncr import simple_fu_library
from repro.schedule.list_scheduler import list_schedule_time_constrained
from repro.bench.suites import hal_diffeq


class TestBinding:
    def test_instances_match_fu_usage(self, timing):
        g = hal_diffeq()
        schedule = list_schedule_time_constrained(g, timing, cs=6)
        binding = bind_functional_units(schedule)
        usage = schedule.fu_usage()
        per_kind = {}
        for name, (kind, index) in binding.items():
            per_kind.setdefault(kind, set()).add(index)
        for kind, instances in per_kind.items():
            assert len(instances) == usage[kind]

    def test_no_temporal_overlap_on_one_instance(self, timing_mul2):
        g = hal_diffeq()
        schedule = list_schedule_time_constrained(g, timing_mul2, cs=8)
        binding = bind_functional_units(schedule)
        occupancy = {}
        for name, key in binding.items():
            for step in range(schedule.start(name), schedule.end(name) + 1):
                slot = (key, step)
                assert slot not in occupancy
                occupancy[slot] = name

    def test_every_node_bound(self, timing):
        for seed in range(5):
            g = random_dfg(seed=seed, n_ops=25)
            cs = critical_path_length(g, timing) + 2
            schedule = list_schedule_time_constrained(g, timing, cs)
            binding = bind_functional_units(schedule)
            assert set(binding) == set(g.node_names())


class TestDatapath:
    def make(self, timing):
        g = hal_diffeq()
        schedule = mfs_schedule(g, timing, cs=6).schedule
        binding = {
            name: (f"alu_{kind}", index)
            for name, (kind, index) in bind_functional_units(schedule).items()
        }
        library = simple_fu_library(["add", "sub", "mul", "lt"])
        return Datapath(schedule, library, binding)

    def test_builds_from_mfs_plus_binding(self, timing):
        datapath = self.make(timing)
        assert datapath.register_count() > 0
        assert datapath.cost_breakdown().total > 0

    def test_unbound_node_rejected(self, timing):
        g = hal_diffeq()
        schedule = mfs_schedule(g, timing, cs=6).schedule
        library = simple_fu_library(["add", "sub", "mul", "lt"])
        with pytest.raises(AllocationError):
            Datapath(schedule, library, {"m1": ("alu_mul", 1)})

    def test_incapable_cell_rejected(self, timing):
        g = hal_diffeq()
        schedule = mfs_schedule(g, timing, cs=6).schedule
        library = simple_fu_library(["add", "sub", "mul", "lt"])
        binding = {
            name: ("alu_add", 1) for name in g.node_names()
        }
        with pytest.raises(AllocationError, match="incapable"):
            Datapath(schedule, library, binding)

    def test_bad_instance_index_rejected(self, timing):
        g = hal_diffeq()
        schedule = mfs_schedule(g, timing, cs=6).schedule
        library = simple_fu_library(["add", "sub", "mul", "lt"])
        binding = bind_functional_units(schedule)
        bad = {
            name: (f"alu_{kind}", 0) for name, (kind, _i) in binding.items()
        }
        with pytest.raises(AllocationError, match=">= 1"):
            Datapath(schedule, library, bad)

    def test_mux_counts_consistent(self, timing):
        datapath = self.make(timing)
        # every counted mux has >= 2 inputs, so inputs >= 2 * muxes
        assert datapath.mux_inputs() >= 2 * datapath.mux_count()

    def test_cost_breakdown_sums(self, timing):
        datapath = self.make(timing)
        breakdown = datapath.cost_breakdown()
        assert breakdown.total == pytest.approx(
            breakdown.alu + breakdown.registers + breakdown.mux
        )

    def test_register_count_matches_left_edge(self, timing):
        from repro.allocation.registers import max_simultaneously_live

        datapath = self.make(timing)
        assert datapath.register_count() == max_simultaneously_live(
            datapath.lifetimes.values()
        )


class TestInterconnect:
    def make(self, timing, alu_family):
        return mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6).datapath

    def test_wires_cover_all_mux_inputs(self, timing, alu_family):
        datapath = self.make(timing, alu_family)
        total_inputs = sum(
            len(inst.mux.l1) + len(inst.mux.l2)
            for inst in datapath.instances.values()
        )
        assert wire_count(datapath) == total_inputs

    def test_transfers_at_least_one_per_operand(self, timing, alu_family):
        datapath = self.make(timing, alu_family)
        counts = transfer_counts(datapath)
        dfg = datapath.schedule.dfg
        operand_count = sum(len(node.operands) for node in dfg)
        assert sum(counts.values()) == operand_count

    def test_sharing_ratio_at_least_one(self, timing, alu_family):
        datapath = self.make(timing, alu_family)
        assert sharing_ratio(datapath) >= 1.0

    def test_wires_deterministic(self, timing, alu_family):
        datapath = self.make(timing, alu_family)
        assert wires(datapath) == wires(datapath)
