"""Tests for the bus-interconnect substrate and the static verifier."""

import pytest

from repro.allocation.buses import (
    allocate_buses,
    compare_interconnect_styles,
    enumerate_transfers,
)
from repro.allocation.verify import verify_datapath
from repro.core.mfsa import mfsa_synthesize
from repro.dfg.analysis import critical_path_length
from repro.dfg.generators import random_dfg
from repro.dfg.ops import OpKind
from repro.bench.suites import ewf, hal_diffeq


@pytest.fixture
def hal_datapath(timing, alu_family):
    return mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6).datapath


class TestTransfers:
    def test_one_transfer_per_noneconstant_operand(self, hal_datapath):
        transfers = enumerate_transfers(hal_datapath)
        dfg = hal_datapath.schedule.dfg
        expected = sum(
            1
            for node in dfg
            for port in node.operands
            if not port.is_const
        )
        assert len(transfers) == expected

    def test_transfer_steps_match_schedule(self, hal_datapath):
        for transfer in enumerate_transfers(hal_datapath):
            assert transfer.step == hal_datapath.schedule.start(transfer.op)


class TestBusAllocation:
    def test_bus_count_is_peak_parallelism(self, hal_datapath):
        allocation = allocate_buses(hal_datapath)
        assert allocation.bus_count == allocation.peak_parallel_transfers()

    def test_no_bus_carries_two_transfers_in_one_step(self, hal_datapath):
        allocation = allocate_buses(hal_datapath)
        for bus in allocation.buses:
            steps = [t.step for t in bus.transfers]
            assert len(steps) == len(set(steps))

    def test_every_transfer_assigned(self, hal_datapath):
        allocation = allocate_buses(hal_datapath)
        assigned = sum(len(bus.transfers) for bus in allocation.buses)
        assert assigned == len(allocation.transfers)

    def test_driver_sharing_preferred(self, hal_datapath):
        allocation = allocate_buses(hal_datapath)
        total_drivers = sum(len(bus.sources()) for bus in allocation.buses)
        distinct_sources = len({t.source for t in allocation.transfers})
        # with sharing, total drivers stays well below one per transfer
        assert total_drivers <= len(allocation.transfers)
        assert total_drivers >= distinct_sources * 0  # sanity

    def test_deterministic(self, hal_datapath):
        first = allocate_buses(hal_datapath)
        second = allocate_buses(hal_datapath)
        assert [b.sources() for b in first.buses] == [
            b.sources() for b in second.buses
        ]

    def test_area_positive(self, hal_datapath):
        assert allocate_buses(hal_datapath).area() > 0


class TestStyleComparison:
    def test_comparison_fields(self, hal_datapath):
        comparison = compare_interconnect_styles(hal_datapath)
        assert comparison.winner in ("mux", "bus")
        assert comparison.bus_count >= 1

    def test_fully_parallel_design_prefers_mux(self, timing, alu_family):
        # every op on its own ALU: single-source ports cost nothing in the
        # mux style, while the bus style pays one bus per parallel transfer
        from repro.dfg.builder import DFGBuilder

        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        for index in range(4):
            b.op(OpKind.ADD, x, y, name=f"p{index}")
        g = b.build()
        result = mfsa_synthesize(g, timing, alu_family, cs=1)
        comparison = compare_interconnect_styles(result.datapath)
        assert comparison.mux_area == 0.0
        assert comparison.winner == "mux"
        assert comparison.bus_count >= 4

    def test_serial_design_needs_one_bus(self, timing, alu_family):
        from repro.dfg.builder import DFGBuilder

        b = DFGBuilder()
        x = b.input("x")
        acc = x
        for index in range(3):
            acc = b.op(OpKind.ADD, acc, index, name=f"a{index}")
        b.output("o", acc)
        g = b.build()
        result = mfsa_synthesize(g, timing, alu_family, cs=3)
        comparison = compare_interconnect_styles(result.datapath)
        assert comparison.bus_count == 1

    def test_ewf_comparison_runs(self, timing_mul2, alu_family):
        result = mfsa_synthesize(ewf(), timing_mul2, alu_family, cs=17)
        comparison = compare_interconnect_styles(result.datapath)
        assert comparison.bus_count >= 2


class TestStaticVerifier:
    def test_clean_design_has_no_violations(self, hal_datapath):
        assert verify_datapath(hal_datapath) == []

    def test_random_designs_clean(self, timing, alu_family):
        for seed in range(5):
            g = random_dfg(seed=seed, n_ops=18)
            cs = critical_path_length(g, timing) + 2
            result = mfsa_synthesize(g, timing, alu_family, cs=cs)
            assert verify_datapath(result.datapath) == []

    def test_style2_flag(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6, style=2)
        assert verify_datapath(result.datapath, expect_style2=True) == []

    def test_detects_incapable_binding(self, hal_datapath):
        victim = next(iter(hal_datapath.binding))
        wrong = next(
            key
            for key, inst in hal_datapath.instances.items()
            if not inst.cell.can_execute(
                hal_datapath.schedule.dfg.node(victim).kind
            )
        )
        hal_datapath.binding[victim] = wrong
        assert any(
            "incapable" in v for v in verify_datapath(hal_datapath)
        )

    def test_detects_register_conflict(self, hal_datapath):
        overlapping = [
            s
            for s, life in hal_datapath.lifetimes.items()
            if life.needs_register
        ]
        first, second = None, None
        for a in overlapping:
            for b in overlapping:
                if a != b and hal_datapath.lifetimes[a].overlaps(
                    hal_datapath.lifetimes[b]
                ):
                    first, second = a, b
                    break
            if first:
                break
        assert first is not None
        hal_datapath.registers.assignment[second] = (
            hal_datapath.registers.assignment[first]
        )
        hal_datapath.registers.tracks[
            hal_datapath.registers.assignment[first]
        ].append(hal_datapath.lifetimes[second])
        assert any("overlap" in v for v in verify_datapath(hal_datapath))

    def test_detects_mux_gap(self, hal_datapath):
        instance = next(
            inst
            for inst in hal_datapath.instances.values()
            if len(inst.mux.l1) >= 1
        )
        instance.mux = type(instance.mux)(
            l1=instance.mux.l1[1:], l2=instance.mux.l2, swapped=instance.mux.swapped
        )
        assert any(
            "missing from mux" in v for v in verify_datapath(hal_datapath)
        )
