"""Tests for left-edge register allocation (§5.8)."""

from repro.allocation.lifetimes import Lifetime
from repro.allocation.registers import (
    IncrementalRegisterEstimator,
    RegisterAllocation,
    left_edge_allocate,
    max_simultaneously_live,
)


def life(name, birth, death):
    return Lifetime(name, birth, death)


class TestLeftEdge:
    def test_disjoint_lifetimes_share_one_register(self):
        allocation = left_edge_allocate(
            [life("a", 1, 2), life("b", 2, 3), life("c", 3, 4)]
        )
        assert allocation.count == 1
        assert allocation.values_in(0) == ("a", "b", "c")

    def test_overlapping_lifetimes_get_distinct_registers(self):
        allocation = left_edge_allocate([life("a", 1, 3), life("b", 2, 4)])
        assert allocation.count == 2
        assert allocation.register_of("a") != allocation.register_of("b")

    def test_meets_peak_liveness_bound(self):
        lifetimes = [
            life("a", 1, 5),
            life("b", 2, 3),
            life("c", 3, 6),
            life("d", 4, 5),
            life("e", 5, 7),
        ]
        allocation = left_edge_allocate(lifetimes)
        assert allocation.count == max_simultaneously_live(lifetimes)

    def test_degenerate_lifetimes_skipped(self):
        allocation = left_edge_allocate([life("a", 2, 2), life("b", 1, 3)])
        assert allocation.count == 1
        assert "a" not in allocation.assignment

    def test_empty_input(self):
        allocation = left_edge_allocate([])
        assert allocation.count == 0
        assert allocation.assignment == {}

    def test_deterministic_assignment(self):
        lifetimes = [life("b", 1, 3), life("a", 1, 3), life("c", 3, 5)]
        first = left_edge_allocate(lifetimes)
        second = left_edge_allocate(list(lifetimes))
        assert first.assignment == second.assignment

    def test_random_allocations_are_conflict_free(self):
        import random

        rng = random.Random(7)
        for _trial in range(20):
            lifetimes = []
            for index in range(30):
                birth = rng.randint(0, 15)
                death = birth + rng.randint(0, 6)
                lifetimes.append(life(f"v{index}", birth, death))
            allocation = left_edge_allocate(lifetimes)
            assert allocation.count == max_simultaneously_live(lifetimes)
            for track in allocation.tracks:
                for i, first in enumerate(track):
                    for second in track[i + 1:]:
                        assert not first.overlaps(second)


class TestIncrementalEstimator:
    def test_cost_matches_commit(self):
        estimator = IncrementalRegisterEstimator()
        batch = [life("a", 1, 3), life("b", 2, 4)]
        assert estimator.cost_of(batch) == 2
        estimator.commit(batch)
        assert estimator.count == 2

    def test_cost_of_does_not_mutate(self):
        estimator = IncrementalRegisterEstimator()
        estimator.cost_of([life("a", 1, 3)])
        assert estimator.count == 0

    def test_reuses_free_tracks(self):
        estimator = IncrementalRegisterEstimator()
        estimator.commit([life("a", 1, 2)])
        assert estimator.cost_of([life("b", 2, 4)]) == 0
        estimator.commit([life("b", 2, 4)])
        assert estimator.count == 1

    def test_known_values_free(self):
        estimator = IncrementalRegisterEstimator()
        estimator.commit([life("a", 1, 3)])
        assert estimator.cost_of([life("a", 1, 3)]) == 0

    def test_degenerate_lifetimes_free(self):
        estimator = IncrementalRegisterEstimator()
        assert estimator.cost_of([life("a", 2, 2)]) == 0

    def test_batch_internal_packing(self):
        estimator = IncrementalRegisterEstimator()
        batch = [life("a", 1, 2), life("b", 2, 3)]  # can share one track
        assert estimator.cost_of(batch) == 1
