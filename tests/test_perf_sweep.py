"""Tests for the performance layer: counters, timers, sweep executor.

The sweep contract under test is the acceptance criterion of the perf PR:
``design_space`` over >= 6 budgets through the process-pool backend must
return results identical — same order, same values — to the serial
backend.  On single-core boxes the pool degrades to one worker process
but the contract still holds.
"""

import multiprocessing
import os
import pickle

import pytest

from repro.bench.suites import EXAMPLES
from repro.bench.table1 import table1_rows
from repro.bench.table2 import table2_rows
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.ops import standard_operation_set
from repro.explore import default_budget_ladder, design_space
from repro.library.ncr import datapath_library
from repro.perf import PerfCounters
from repro.sweep import SweepExecutor, default_workers, sweep_map

TIMING = TimingModel(ops=standard_operation_set())
LIBRARY = datapath_library()


# ---------------------------------------------------------------------------
# PerfCounters
# ---------------------------------------------------------------------------
class TestPerfCounters:
    def test_incr_and_get(self):
        perf = PerfCounters()
        perf.incr("a")
        perf.incr("a", 4)
        assert perf.get("a") == 5
        assert perf.get("missing") == 0

    def test_timer_accumulates(self):
        perf = PerfCounters()
        with perf.timer("phase"):
            pass
        with perf.timer("phase"):
            pass
        assert perf.timers["phase"] >= 0.0

    def test_hit_rate(self):
        perf = PerfCounters()
        perf.incr("cache_hits", 3)
        perf.incr("cache_misses", 1)
        assert perf.hit_rate("cache") == pytest.approx(0.75)
        assert perf.hit_rate("nothing") is None

    def test_merge_snapshot_roundtrip(self):
        worker = PerfCounters()
        worker.incr("n", 2)
        worker.add_time("t", 0.5)
        main = PerfCounters()
        main.incr("n", 1)
        main.merge(worker.as_dict())
        assert main.get("n") == 3
        assert main.timers["t"] == pytest.approx(0.5)

    def test_render_mentions_counters(self):
        perf = PerfCounters()
        perf.incr("mfsa.candidates_evaluated", 7)
        text = perf.render()
        assert "mfsa.candidates_evaluated" in text
        assert "7" in text


# ---------------------------------------------------------------------------
# SweepExecutor basics
# ---------------------------------------------------------------------------
def _square(x):
    return x * x


class TestSweepExecutor:
    def test_serial_map_preserves_order(self):
        assert sweep_map(_square, [3, 1, 2], backend="serial") == [9, 1, 4]

    def test_process_map_matches_serial(self):
        items = list(range(12))
        serial = sweep_map(_square, items, backend="serial")
        process = sweep_map(_square, items, backend="process", workers=2)
        assert process == serial

    def test_unpicklable_payload_falls_back_to_serial(self):
        items = [lambda: 1]  # lambdas do not pickle
        with pytest.raises(Exception):
            pickle.dumps(items)
        result = SweepExecutor(backend="process").map(lambda f: f(), items)
        assert result == [1]

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(backend="threads")
        with pytest.raises(ValueError):
            SweepExecutor(workers=0)

    def test_perf_counts_tasks(self):
        perf = PerfCounters()
        sweep_map(_square, [1, 2, 3], backend="serial", perf=perf)
        assert perf.get("sweep.tasks") == 3
        assert "sweep.map" in perf.timers

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_default_workers_prefers_affinity_mask(self, monkeypatch):
        # Containers/cgroups confine the process to fewer cores than the
        # machine has; the affinity mask is the truth, cpu_count is not.
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 1}, raising=False
        )
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_workers() == 2

    def test_default_workers_falls_back_to_cpu_count(self, monkeypatch):
        def unavailable(pid):
            raise OSError("affinity not supported")

        monkeypatch.setattr(
            os, "sched_getaffinity", unavailable, raising=False
        )
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert default_workers() == 3


# ---------------------------------------------------------------------------
# Pool fault tolerance: crashed workers and unpicklable results must not
# kill the sweep — the poison item is quarantined to an in-process run
# while every healthy item still goes through the pool.
# ---------------------------------------------------------------------------
def _die_in_pool_worker(x):
    """Crash hard when running inside a pool child (simulated OOM-kill);
    compute normally in the main process (the quarantine rerun)."""
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return x + 10


def _poison_seven_worker(x):
    """Crash the pool child only for item 7; every other item is healthy."""
    if x == 7 and multiprocessing.parent_process() is not None:
        os._exit(1)
    return x * 2


class _RefusesToPickle:
    def __reduce__(self):
        raise pickle.PicklingError("result refuses to pickle")


def _unpicklable_result_in_pool(x):
    """Return a result the child cannot send back; compute normally in
    the quarantine rerun."""
    if multiprocessing.parent_process() is not None:
        return _RefusesToPickle()
    return x * 2


class TestPoolFaultTolerance:
    def test_worker_crash_quarantines_items(self):
        perf = PerfCounters()
        executor = SweepExecutor(backend="process", workers=2, perf=perf)
        result = executor.map(_die_in_pool_worker, [1, 2, 3])
        assert result == [11, 12, 13]
        # Every item kills its worker, so after the per-item retry budget
        # all three end up quarantined — but the map never degrades to a
        # whole-map serial fallback.
        assert perf.get("sweep.quarantined") == 3
        assert perf.get("sweep.quarantine.worker-crash") == 3
        assert perf.get("sweep.pool_failures") >= 1
        assert perf.get("sweep.serial_fallbacks") == 0
        assert executor.last_quarantine_reason == "worker-crash"
        assert executor.last_fallback_reason is None

    def test_single_poison_item_quarantined_alone(self):
        # The acceptance scenario: one poison item in a 16-item sweep
        # degrades only itself; the other 15 run in the pool.
        perf = PerfCounters()
        executor = SweepExecutor(backend="process", workers=2, perf=perf)
        result = executor.map(_poison_seven_worker, list(range(16)))
        assert result == [x * 2 for x in range(16)]
        assert perf.get("sweep.quarantined") == 1
        assert perf.get("sweep.quarantine.worker-crash") == 1
        assert perf.get("sweep.serial_fallbacks") == 0
        assert executor.last_quarantine_reason == "worker-crash"

    def test_unpicklable_result_quarantines_item(self):
        perf = PerfCounters()
        executor = SweepExecutor(backend="process", workers=2, perf=perf)
        result = executor.map(_unpicklable_result_in_pool, [2, 3])
        assert result == [4, 6]
        # The pool survives — only the offending results re-ran in-process.
        assert perf.get("sweep.quarantined") == 2
        assert perf.get("sweep.quarantine.result-unpicklable") == 2
        assert perf.get("sweep.serial_fallbacks") == 0
        assert executor.last_quarantine_reason == "result-unpicklable"

    def test_unpicklable_payload_fallback_is_attributed(self):
        perf = PerfCounters()
        executor = SweepExecutor(backend="process", perf=perf)
        assert executor.map(lambda f: f(), [lambda: 1]) == [1]
        # No pool ever started, so the historical counter stays 0 …
        assert perf.get("sweep.pool_failures") == 0
        # … but the degradation itself is still visible and attributed.
        assert perf.get("sweep.serial_fallbacks") == 1
        assert perf.get("sweep.fallback.payload-unpicklable") == 1
        assert executor.last_fallback_reason == "payload-unpicklable"

    def test_pool_start_failure_is_attributed(self, monkeypatch):
        import repro.sweep as sweep_module

        class _RefusesToStart:
            def __init__(self, *args, **kwargs):
                raise PermissionError("no /dev/shm in this sandbox")

        monkeypatch.setattr(
            sweep_module, "ProcessPoolExecutor", _RefusesToStart
        )
        perf = PerfCounters()
        executor = SweepExecutor(backend="process", workers=2, perf=perf)
        assert executor.map(_square, [2, 3]) == [4, 9]
        assert perf.get("sweep.pool_failures") == 1
        assert perf.get("sweep.fallback.pool-start") == 1
        assert executor.last_fallback_reason == "pool-start"

    def test_healthy_map_records_no_fallback(self):
        perf = PerfCounters()
        executor = SweepExecutor(backend="process", workers=2, perf=perf)
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert perf.get("sweep.serial_fallbacks") == 0
        assert executor.last_fallback_reason is None


class TestPersistentPool:
    def test_keep_pool_reuses_one_pool_across_maps(self):
        with SweepExecutor(
            backend="process", workers=2, keep_pool=True
        ) as executor:
            assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
            pool = executor._pool
            assert pool is not None
            assert executor.map(_square, [4, 5]) == [16, 25]
            assert executor._pool is pool
        assert executor._pool is None

    def test_keep_pool_recovers_from_worker_crash(self):
        perf = PerfCounters()
        with SweepExecutor(
            backend="process", workers=2, keep_pool=True, perf=perf
        ) as executor:
            assert executor.map(_die_in_pool_worker, [1, 2]) == [11, 12]
            assert perf.get("sweep.quarantine.worker-crash") == 2
            # The broken pool was discarded; the next map gets a fresh one
            # and runs in processes again.
            assert executor.map(_square, [3, 4]) == [9, 16]
            assert perf.get("sweep.serial_fallbacks") == 0

    def test_close_is_idempotent(self):
        executor = SweepExecutor(backend="serial", keep_pool=True)
        executor.close()
        executor.close()


# ---------------------------------------------------------------------------
# Acceptance: design_space process pool == serial, >= 6 budgets
# ---------------------------------------------------------------------------
def _ladder(dfg, timing, minimum=6):
    budgets = default_budget_ladder(dfg, timing)
    base = budgets[-1]
    while len(budgets) < minimum:
        base += 1
        budgets.append(base)
    return budgets


class TestDesignSpaceBackends:
    def test_process_identical_to_serial_six_budgets(self):
        spec = EXAMPLES["ex2"]
        dfg = spec.build()
        budgets = _ladder(dfg, TIMING)
        assert len(budgets) >= 6
        serial = design_space(dfg, TIMING, LIBRARY, budgets=budgets)
        pooled = design_space(
            dfg, TIMING, LIBRARY, budgets=budgets, backend="process"
        )
        assert pooled == serial  # same order, same values

    def test_auto_backend_matches_serial(self):
        spec = EXAMPLES["ex1"]
        dfg = spec.build()
        budgets = _ladder(dfg, TIMING)
        serial = design_space(dfg, TIMING, LIBRARY, budgets=budgets)
        auto = design_space(
            dfg, TIMING, LIBRARY, budgets=budgets, backend="auto"
        )
        assert auto == serial

    def test_worker_perf_merged_across_pool(self):
        spec = EXAMPLES["ex1"]
        dfg = spec.build()
        budgets = _ladder(dfg, TIMING)
        perf = PerfCounters()
        design_space(
            dfg, TIMING, LIBRARY, budgets=budgets, backend="process", perf=perf
        )
        assert perf.get("sweep.tasks") == len(budgets)
        assert perf.get("mfsa.candidates_evaluated") > 0


class TestTableBackends:
    def test_table1_process_identical_to_serial(self):
        keys = ["ex1", "ex2"]
        serial = table1_rows(keys=keys)
        pooled = table1_rows(keys=keys, backend="process", workers=2)
        assert pooled == serial

    def test_table2_process_identical_to_serial(self):
        keys = ["ex1"]
        serial = table2_rows(keys=keys)
        pooled = table2_rows(keys=keys, backend="process", workers=2)
        assert pooled == serial
