"""Schedule-legality, frame-containment and grid-consistency checkers.

Each negative test corrupts one aspect of a genuine MFS run and asserts
the corresponding violation code appears — proving the checker actually
discriminates, not just that clean runs pass.
"""

import pytest

from repro.bench.suites import chained_addsub, hal_diffeq
from repro.check.schedule import (
    check_frame_containment,
    check_grid_consistency,
    check_schedule_legality,
)
from repro.core.grid import GridPosition
from repro.core.mfs import mfs_schedule


def codes(violations):
    return {violation.code for violation in violations}


def node_with_op_predecessor(schedule):
    """Some (node, predecessor) pair where both are scheduled operations."""
    for node in schedule.dfg:
        for pred in node.predecessor_names():
            if pred in schedule.starts and node.name in schedule.starts:
                return node.name, pred
    raise AssertionError("graph has no op-to-op edge")


@pytest.fixture
def result(timing):
    return mfs_schedule(hal_diffeq(), timing, cs=5)


class TestLegality:
    def test_clean_run_passes(self, result):
        assert check_schedule_legality(result.schedule) == []

    def test_unscheduled_node_detected(self, result):
        name = next(iter(result.schedule.starts))
        del result.schedule.starts[name]
        assert "schedule.unscheduled" in codes(
            check_schedule_legality(result.schedule)
        )

    def test_unknown_node_detected(self, result):
        result.schedule.starts["phantom"] = 1
        assert "schedule.unknown-node" in codes(
            check_schedule_legality(result.schedule)
        )

    def test_precedence_breach_detected(self, result):
        name, pred = node_with_op_predecessor(result.schedule)
        # Same step as the predecessor: illegal without chaining.
        result.schedule.starts[name] = result.schedule.starts[pred]
        assert "schedule.precedence" in codes(
            check_schedule_legality(result.schedule)
        )

    def test_budget_overrun_detected(self, result):
        name = next(iter(result.schedule.starts))
        result.schedule.starts[name] = result.schedule.cs + 3
        assert "schedule.exceeds-budget" in codes(
            check_schedule_legality(result.schedule)
        )

    def test_before_start_detected(self, result):
        name = next(iter(result.schedule.starts))
        result.schedule.starts[name] = 0
        assert "schedule.before-start" in codes(
            check_schedule_legality(result.schedule)
        )

    def test_resource_bound_breach_detected(self, timing):
        # hal at cs=4 genuinely needs two multipliers.
        tight = mfs_schedule(hal_diffeq(), timing, cs=4)
        violations = check_schedule_legality(
            tight.schedule, resource_bounds={"mul": 1}
        )
        assert codes(violations) == {"schedule.resource-bound"}

    def test_chained_schedule_passes(self, timing_chained):
        chained = mfs_schedule(chained_addsub(), timing_chained, cs=4)
        assert check_schedule_legality(chained.schedule) == []


class TestFrameContainment:
    def test_clean_run_passes(self, result):
        assert check_frame_containment(result.schedule) == []

    def test_outside_frame_detected(self, result):
        # A node pushed past its ALAP leaves the primary frame.
        name = next(iter(result.schedule.starts))
        result.schedule.starts[name] = result.schedule.cs + 5
        assert "schedule.outside-frame" in codes(
            check_frame_containment(result.schedule)
        )


class TestGridConsistency:
    def test_clean_run_passes(self, result):
        assert (
            check_grid_consistency(
                result.schedule, result.grid, result.placements
            )
            == []
        )

    def test_unplaced_node_detected(self, result):
        placements = dict(result.placements)
        name = next(iter(placements))
        del placements[name]
        found = codes(
            check_grid_consistency(result.schedule, result.grid, placements)
        )
        # Missing from the placements map, yet still recorded in the grid.
        assert "grid.unplaced" in found
        assert "grid.ghost-occupant" in found

    def test_step_mismatch_detected(self, result):
        placements = dict(result.placements)
        name = next(iter(placements))
        old = placements[name]
        placements[name] = GridPosition(old.table, old.x, old.y + 1)
        found = codes(
            check_grid_consistency(result.schedule, result.grid, placements)
        )
        assert "grid.step-mismatch" in found

    def test_ghost_occupant_detected(self, result):
        # Simulate asymmetric place/remove: an occupant entry with no
        # backing placement.
        cell = next(iter(result.grid._occupants))
        outsider = next(
            name
            for name, pos in result.placements.items()
            if (pos.table, pos.x, pos.y) != cell
        )
        result.grid._occupants[cell].append(outsider)
        found = codes(
            check_grid_consistency(
                result.schedule, result.grid, result.placements
            )
        )
        assert "grid.ghost-occupant" in found

    def test_duplicate_occupant_detected(self, result):
        cell = next(iter(result.grid._occupants))
        occupant = result.grid._occupants[cell][0]
        result.grid._occupants[cell].append(occupant)
        found = codes(
            check_grid_consistency(
                result.schedule, result.grid, result.placements
            )
        )
        assert "grid.duplicate-occupant" in found

    def test_column_bound_detected(self, result):
        placements = dict(result.placements)
        name = next(iter(placements))
        old = placements[name]
        placements[name] = GridPosition(old.table, 99, old.y)
        found = codes(
            check_grid_consistency(result.schedule, result.grid, placements)
        )
        assert "grid.column-bound" in found

    def test_folded_grid_passes(self, timing):
        # Functional pipelining: occupancy audited on folded steps.
        folded = mfs_schedule(
            hal_diffeq(), timing, cs=8, latency_l=4
        )
        assert (
            check_grid_consistency(
                folded.schedule, folded.grid, folded.placements
            )
            == []
        )
