"""Datapath- and netlist-consistency checkers against real MFSA output."""

import pytest

from repro.bench.suites import hal_diffeq
from repro.check.allocation import (
    check_datapath_consistency,
    check_netlist_consistency,
)
from repro.core.mfsa import MFSAScheduler


def codes(violations):
    return {violation.code for violation in violations}


@pytest.fixture
def datapath(timing, alu_family):
    return (
        MFSAScheduler(hal_diffeq(), timing, alu_family, cs=6).run().datapath
    )


class TestDatapathConsistency:
    def test_clean_datapath_passes(self, datapath):
        assert check_datapath_consistency(datapath) == []

    def test_style2_expectation_flags_self_loop(self, datapath):
        # The style-1 hal datapath feeds an ALU from itself; claiming it
        # is style 2 must surface as a structural violation.
        assert datapath.has_self_loop()
        found = codes(
            check_datapath_consistency(datapath, expect_style2=True)
        )
        assert found == {"datapath.structure"}

    def test_style2_run_passes_style2_check(self, timing, alu_family):
        result = MFSAScheduler(
            hal_diffeq(), timing, alu_family, cs=6, style=2
        ).run()
        assert (
            check_datapath_consistency(result.datapath, expect_style2=True)
            == []
        )


class TestNetlistConsistency:
    def test_clean_netlist_passes(self, datapath):
        assert check_netlist_consistency(datapath) == []

    def test_dropped_op_detected(self, datapath):
        instance = max(datapath.instances.values(), key=lambda i: len(i.ops))
        instance.ops.pop()
        assert "netlist.unbound-op" in codes(
            check_netlist_consistency(datapath)
        )

    def test_multiply_listed_op_detected(self, datapath):
        instances = list(datapath.instances.values())
        assert len(instances) >= 2
        instances[1].ops.append(instances[0].ops[0])
        assert "netlist.multiply-bound-op" in codes(
            check_netlist_consistency(datapath)
        )
