"""Liapunov-descent replay checker on handcrafted trajectories."""

from repro.check.liapunov import check_liapunov_descent
from repro.core.grid import GridPosition
from repro.core.stability import Trajectory

P1 = GridPosition("add", 1, 1)
P2 = GridPosition("add", 1, 2)


def codes(violations):
    return {violation.code for violation in violations}


def test_clean_trajectory_passes():
    t = Trajectory()
    t.record("a", P1, 3.0, alternatives=((P1, 3.0), (P2, 5.0)))
    t.record("a", P1, 2.0, alternatives=((P1, 2.0),))  # descent is fine
    assert check_liapunov_descent(t) == []


def test_empty_alternatives_are_skipped():
    t = Trajectory()
    t.record("a", P1, 3.0)
    assert check_liapunov_descent(t) == []


def test_not_argmin_detected():
    t = Trajectory()
    t.record("a", P2, 5.0, alternatives=((P1, 3.0), (P2, 5.0)))
    assert codes(check_liapunov_descent(t)) == {"liapunov.not-argmin"}


def test_position_not_in_frame_detected():
    t = Trajectory()
    t.record("a", P2, 3.0, alternatives=((P1, 3.0),))
    assert codes(check_liapunov_descent(t)) == {
        "liapunov.position-not-in-frame"
    }


def test_energy_mismatch_detected():
    # Energy below every alternative: not an argmin breach, but the
    # recorded value disagrees with the frame's entry for that position.
    t = Trajectory()
    t.record("a", P1, 2.0, alternatives=((P1, 3.0),))
    assert codes(check_liapunov_descent(t)) == {"liapunov.energy-mismatch"}


def test_ascent_detected():
    t = Trajectory()
    t.record("a", P1, 1.0)
    t.record("a", P2, 2.0)
    assert codes(check_liapunov_descent(t)) == {"liapunov.ascent"}


def test_ascent_across_other_nodes_detected():
    t = Trajectory()
    t.record("a", P1, 1.0)
    t.record("b", P2, 9.0)
    t.record("a", P2, 1.5)
    assert codes(check_liapunov_descent(t)) == {"liapunov.ascent"}


def test_all_breaches_reported_at_once():
    t = Trajectory()
    t.record("a", P2, 5.0, alternatives=((P1, 3.0), (P2, 5.0)))
    t.record("a", P1, 6.0, alternatives=((P1, 6.0),))
    found = codes(check_liapunov_descent(t))
    assert "liapunov.not-argmin" in found
    assert "liapunov.ascent" in found
