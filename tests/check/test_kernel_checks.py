"""Kernel cross-validation audits (repro.check.kernels) and the CLI flag.

The vector kernel must be byte-identical to the scalar reference on the
paper's own examples — these tests enforce that through the same
``repro.check`` layer the CLI exposes as ``repro check --kernels``.
When numpy is absent there is no vector kernel to compare: the audit
degrades to an availability note and the CLI flag warns instead of
failing, which the last test pins down.
"""

import pytest

from repro.check import (
    check_kernels_example,
    check_kernels_random,
    check_mfs_kernels,
    check_mfsa_kernels,
)
from repro.check.kernels import vector_available
from repro.cli import main
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.generators import layered_workload
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library

needs_numpy = pytest.mark.skipif(
    not vector_available(), reason="numpy not installed (no vector kernel)"
)

TIMING = TimingModel(ops=standard_operation_set())


@needs_numpy
class TestKernelAudits:
    @pytest.mark.parametrize("key", ["ex1", "ex4", "ex6"])
    def test_paper_example_kernels_identical(self, key):
        report = check_kernels_example(key)
        assert report.ok, report.render()
        assert "kernel-schedule" in report.checks_run
        assert "kernel-datapath" in report.checks_run

    def test_random_workloads_identical(self):
        report = check_kernels_random(count=3, seed=11)
        assert report.ok, report.render()

    def test_layered_workload_with_slack(self):
        """The benchmark regime: tall grids, pruning active."""
        g = layered_workload(seed=7, layers=5, width=20)
        cs = critical_path_length(g, TIMING) + 40
        report = check_mfs_kernels(g, TIMING, cs=cs)
        assert report.ok, report.render()
        report = check_mfsa_kernels(
            g, TIMING, datapath_library(), cs=cs
        )
        assert report.ok, report.render()

    def test_cli_check_kernels_flag(self, capsys):
        assert main(["check", "--example", "ex1", "--kernels"]) == 0
        out = capsys.readouterr().out
        assert "kernel equivalence" in out
        assert "PASS" in out


def test_audit_degrades_without_numpy(monkeypatch):
    """No numpy -> the audit reports availability only, no violations."""
    from repro.check import kernels as kernels_mod
    from repro.core import kernel as kernel_mod

    monkeypatch.setattr(kernel_mod, "HAVE_NUMPY", False)
    g = layered_workload(seed=1, layers=2, width=3)
    cs = critical_path_length(g, TIMING) + 2
    report = kernels_mod.check_mfs_kernels(g, TIMING, cs=cs)
    assert report.ok
    assert report.checks_run == ["kernel-availability"]


def test_cli_warns_without_numpy(monkeypatch, capsys):
    from repro.core import kernel as kernel_mod

    monkeypatch.setattr(kernel_mod, "HAVE_NUMPY", False)
    assert main(["check", "--example", "ex1", "--kernels"]) == 0
    err = capsys.readouterr().err
    assert "numpy not installed" in err
