"""Tests for the Violation/CheckReport value objects."""

import pytest

from repro.check.report import CheckReport, Violation
from repro.errors import VerificationError


class TestViolation:
    def test_str_format(self):
        v = Violation("schedule.precedence", "n3", "starts too early")
        assert str(v) == "[schedule.precedence] n3: starts too early"


class TestCheckReport:
    def test_empty_report_is_ok(self):
        report = CheckReport(target="t")
        assert report.ok
        report.raise_if_failed()  # no-op

    def test_add_makes_report_fail(self):
        report = CheckReport(target="t")
        report.add("x.y", "s", "m")
        assert not report.ok
        assert len(report.violations) == 1

    def test_ran_deduplicates(self):
        report = CheckReport(target="t")
        report.ran("a")
        report.ran("a")
        report.ran("b")
        assert report.checks_run == ["a", "b"]

    def test_merge_folds_violations_and_checks(self):
        a = CheckReport(target="a")
        a.ran("legality")
        b = CheckReport(target="b")
        b.ran("legality")
        b.ran("frames")
        b.add("x.y", "s", "m")
        a.merge(b)
        assert a.checks_run == ["legality", "frames"]
        assert not a.ok

    def test_render_mentions_status_and_violations(self):
        report = CheckReport(target="hal")
        report.ran("legality")
        assert "PASS" in report.render()
        report.add("schedule.precedence", "n1", "bad")
        text = report.render()
        assert "FAIL (1 violations)" in text
        assert "[schedule.precedence] n1: bad" in text

    def test_raise_if_failed_carries_report(self):
        report = CheckReport(target="t")
        report.add("x.y", "s", "m")
        with pytest.raises(VerificationError) as excinfo:
            report.raise_if_failed()
        assert excinfo.value.report is report
        assert "x.y" in str(excinfo.value)
