"""Composed audits (runner), the verify=True post-condition and the CLI."""

import pytest

from repro.bench.suites import hal_diffeq
from repro.check import check_example, check_mfs_result, check_schedule
from repro.cli import main
from repro.core.mfs import MFSScheduler, mfs_schedule
from repro.core.mfsa import MFSAScheduler
from repro.errors import VerificationError


class TestRunner:
    def test_mfs_report_lists_check_families(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=5)
        report = check_mfs_result(result, differential=True)
        assert report.ok, report.render()
        assert set(report.checks_run) == {
            "schedule-legality",
            "frame-containment",
            "grid-occupancy",
            "liapunov-descent",
            "differential",
        }

    def test_corrupted_result_fails_audit(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=5)
        name = next(iter(result.schedule.starts))
        result.schedule.starts[name] = result.schedule.cs + 5
        report = check_mfs_result(result)
        assert not report.ok

    def test_bare_schedule_audit(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=5)
        report = check_schedule(result.schedule)
        assert report.ok
        assert "grid-occupancy" not in report.checks_run

    def test_check_example_passes(self):
        report = check_example("ex1", differential=False)
        assert report.ok, report.render()


class TestVerifyPostCondition:
    def test_mfsa_verify_true_passes(self, timing, alu_family):
        result = MFSAScheduler(
            hal_diffeq(), timing, alu_family, cs=6, verify=True
        ).run()
        assert result.schedule.makespan() <= 6

    def test_verify_raises_on_injected_corruption(
        self, timing, monkeypatch
    ):
        # Corrupt the audit target right before the post-condition runs
        # by intercepting the checker's input through the result type.
        from repro.core import mfs as mfs_module

        original = mfs_module.MFSResult

        class Corrupting(original):
            def __init__(self, **kwargs):
                kwargs["schedule"].starts[
                    next(iter(kwargs["schedule"].starts))
                ] = 99
                super().__init__(**kwargs)

        monkeypatch.setattr(mfs_module, "MFSResult", Corrupting)
        with pytest.raises(VerificationError) as excinfo:
            MFSScheduler(
                hal_diffeq(), timing, cs=5, mode="time", verify=True
            ).run()
        assert not excinfo.value.report.ok


class TestCLI:
    def test_check_command_passes_on_one_example(self, capsys):
        assert main(["check", "--example", "ex1", "--no-differential"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "ex1" in out

    def test_check_command_with_random_workloads(self, capsys):
        assert (
            main(
                [
                    "check",
                    "--example",
                    "ex1",
                    "--random",
                    "1",
                    "--no-differential",
                ]
            )
            == 0
        )
        assert "random DFGs" in capsys.readouterr().out
