"""Differential cross-validation: baselines, exact gate, pipelining skip."""

from repro.bench.suites import chained_addsub, hal_diffeq
from repro.check.differential import cross_validate
from repro.core.mfs import mfs_schedule
from repro.dfg.generators import random_conditional_dfg


def codes(violations):
    return {violation.code for violation in violations}


class TestCrossValidate:
    def test_clean_mfs_run_validates(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=5)
        violations, outcome = cross_validate(
            hal_diffeq(), timing, 5, fu_counts=dict(result.fu_counts)
        )
        assert violations == []
        assert set(outcome.baselines) == {"list", "force-directed", "exact"}
        assert outcome.exact_is_optimal

    def test_impossible_fu_total_flagged_as_beats_exact(self, timing):
        violations, outcome = cross_validate(
            hal_diffeq(), timing, 5, fu_counts={"mul": 1}
        )
        assert outcome.exact_is_optimal
        assert "differential.beats-exact" in codes(violations)

    def test_truncated_exact_search_never_certifies(self, timing):
        # A one-node search budget cannot complete, so even an absurdly
        # low audited total must NOT be reported as beating the optimum.
        violations, outcome = cross_validate(
            hal_diffeq(),
            timing,
            5,
            fu_counts={"mul": 1},
            exact_node_limit=1,
        )
        assert not outcome.exact_is_optimal
        assert "differential.beats-exact" not in codes(violations)

    def test_pipelined_run_skips_exact(self, timing_mul2):
        # Structural pipelining: MFS counts pipelined units by start step
        # only, exact does not model that — totals are incomparable.
        violations, outcome = cross_validate(
            hal_diffeq(),
            timing_mul2,
            6,
            fu_counts={"mul": 1, "add": 1, "sub": 1, "lt": 1},
            pipelined_kinds=frozenset({"mul"}),
        )
        assert "exact" in outcome.skipped
        assert "pipelined" in outcome.skipped["exact"]
        assert "differential.beats-exact" not in codes(violations)

    def test_functional_pipelining_skips_exact(self, timing):
        _violations, outcome = cross_validate(
            hal_diffeq(), timing, 8, fu_counts={"mul": 1}, latency_l=4
        )
        assert "exact" in outcome.skipped

    def test_chained_timing_skips_exact(self, timing_chained):
        _violations, outcome = cross_validate(
            chained_addsub(), timing_chained, 4
        )
        assert "exact" in outcome.skipped

    def test_exclusive_branches_skip_exact_and_lower_bound(self, timing):
        dfg = random_conditional_dfg(seed=7, n_ops=14)
        violations, outcome = cross_validate(dfg, timing, 12)
        assert "exact" in outcome.skipped
        assert not any("lower-bound" in code for code in codes(violations))

    def test_oversize_graph_skips_exact(self, timing):
        _violations, outcome = cross_validate(
            hal_diffeq(), timing, 5, exact_op_limit=2
        )
        assert "exact" in outcome.skipped

    def test_baseline_totals_recorded(self, timing):
        _violations, outcome = cross_validate(hal_diffeq(), timing, 5)
        assert outcome.fu_totals["list"] >= 1
        assert outcome.fu_totals["exact"] >= 1
