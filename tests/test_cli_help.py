"""CLI help-text guards: golden top-level help, §-citation discipline.

``repro-hls`` is a reproduction tool, so every subcommand's one-line
help names the paper section it reproduces.  The top-level help is
pinned verbatim (``tests/golden/cli_help.txt``); refresh it after an
intentional wording change::

    COLUMNS=80 PYTHONPATH=src python -c "
    from repro.cli import build_parser
    open('tests/golden/cli_help.txt','w').write(build_parser().format_help())
    "
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser

GOLDEN = Path(__file__).resolve().parent / "golden" / "cli_help.txt"

#: A paper citation: '§6', '§2.2', '§3.2 step 4', ...
CITATION = re.compile(r"§\d+(\.\d+)?")


def subcommand_actions():
    (subparsers,) = [
        action
        for action in build_parser()._actions
        if action.dest == "command"
    ]
    return subparsers


class TestCliHelp:
    def test_top_level_help_is_pinned(self, monkeypatch):
        monkeypatch.setenv("COLUMNS", "80")
        assert build_parser().format_help() == GOLDEN.read_text()

    def test_every_subcommand_cites_a_paper_section(self):
        subparsers = subcommand_actions()
        helps = {
            action.dest: action.help
            for action in subparsers._get_subactions()
        }
        assert set(helps) == set(subparsers.choices)
        for name, text in helps.items():
            assert text, f"subcommand {name!r} has no help text"
            assert CITATION.search(text), (
                f"subcommand {name!r} help lacks a § paper citation: {text!r}"
            )

    def test_subcommand_helps_render_without_error(self):
        for name, sub in subcommand_actions().choices.items():
            text = sub.format_help()
            assert "usage: repro-hls " + name in text
