"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_cycle_is_dfg_error(self):
        assert issubclass(errors.CycleError, errors.DFGError)

    def test_parse_is_dfg_error(self):
        assert issubclass(errors.ParseError, errors.DFGError)

    def test_infeasible_is_schedule_error(self):
        assert issubclass(
            errors.InfeasibleScheduleError, errors.ScheduleError
        )

    def test_single_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("boom")

    def test_library_users_can_discriminate(self):
        try:
            raise errors.InfeasibleScheduleError("too tight")
        except errors.DFGError:  # pragma: no cover - must not trigger
            raise AssertionError("wrong branch")
        except errors.ScheduleError as caught:
            assert "tight" in str(caught)
