"""Tests for the MFSA mixed scheduling-allocation algorithm (§4)."""

import pytest

from repro.core.liapunov import LiapunovWeights
from repro.core.mfsa import MFSAScheduler, mfsa_synthesize
from repro.dfg.analysis import critical_path_length
from repro.dfg.builder import DFGBuilder
from repro.dfg.generators import random_dfg
from repro.dfg.graph import DFG
from repro.dfg.ops import OpKind
from repro.errors import ScheduleError
from repro.library.ncr import datapath_library, simple_fu_library
from repro.sim.executor import verify_equivalence
from repro.bench.suites import facet_like, hal_diffeq


class TestBasics:
    def test_schedule_valid_and_bound(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        result.schedule.validate()
        for name in result.schedule.dfg.node_names():
            assert name in result.datapath.binding

    def test_every_op_on_capable_alu(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        dfg = result.schedule.dfg
        for name, key in result.datapath.binding.items():
            cell = alu_family.cell(key[0])
            assert cell.can_execute(dfg.node(name).kind)

    def test_no_overlapping_ops_on_one_instance(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        schedule = result.schedule
        by_instance = {}
        for name, key in result.datapath.binding.items():
            by_instance.setdefault(key, []).append(name)
        for members in by_instance.values():
            steps = {}
            for name in members:
                for step in range(schedule.start(name), schedule.end(name) + 1):
                    assert step not in steps, (
                        f"{name} and {steps[step]} overlap on one ALU"
                    )
                    steps[step] = name

    def test_empty_dfg_rejected(self, timing, alu_family):
        with pytest.raises(ScheduleError):
            mfsa_synthesize(DFG("empty"), timing, alu_family, cs=4)

    def test_bad_style_rejected(self, timing, alu_family):
        with pytest.raises(ValueError):
            MFSAScheduler(hal_diffeq(), timing, alu_family, cs=6, style=3)

    def test_functional_equivalence(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        verify_equivalence(
            result.datapath, {"x": 2, "dx": 3, "u": 5, "y": 7, "a": 100}
        )


class TestAluMerging:
    def test_add_and_sub_share_an_addsub_alu(self, timing, alu_family):
        # one add and one sub at different steps: a single (+-) is cheapest
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        s = b.op(OpKind.SUB, x, y, name="s")
        a = b.op(OpKind.ADD, s, y, name="a")
        b.output("o", a)
        g = b.build()
        result = mfsa_synthesize(g, timing, alu_family, cs=2)
        assert result.alu_labels() == ["(+-)"]

    def test_parallel_ops_need_two_alus(self, timing, alu_family):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.op(OpKind.SUB, x, y, name="s")
        b.op(OpKind.ADD, x, y, name="a")
        g = b.build()
        result = mfsa_synthesize(g, timing, alu_family, cs=1)
        assert len(result.alu_labels()) == 2

    def test_reuse_beats_opening_even_at_later_step(self, timing, alu_family):
        # two independent adds, cs=2: reusing one (+) across both steps is
        # cheaper than opening a second adder at step 1
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.op(OpKind.ADD, x, y, name="a1")
        b.op(OpKind.ADD, y, x, name="a2")
        g = b.build()
        result = mfsa_synthesize(g, timing, alu_family, cs=2)
        assert len(result.alu_labels()) == 1

    def test_fu_counts_match_mfs_shape(self, timing, alu_family):
        from repro.core.mfs import mfs_schedule

        mfs = mfs_schedule(hal_diffeq(), timing, cs=6)
        mfsa = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        mul_instances = sum(
            1
            for key in mfsa.datapath.instances
            if "mul" in alu_family.cell(key[0]).kinds
        )
        assert mul_instances == mfs.fu_counts["mul"]


class TestDesignStyles:
    def test_style2_has_no_self_loops(self, timing, alu_family):
        for example in (hal_diffeq(), facet_like()):
            cs = critical_path_length(example, timing) + 2
            result = mfsa_synthesize(example, timing, alu_family, cs=cs, style=2)
            assert not result.datapath.has_self_loop()

    def test_style1_allows_self_loops(self, timing, alu_family):
        # a chain of adds on a single (+) ALU is a self-loop
        b = DFGBuilder()
        x = b.input("x")
        acc = x
        for index in range(3):
            acc = b.op(OpKind.ADD, acc, index, name=f"a{index}")
        b.output("o", acc)
        g = b.build()
        result = mfsa_synthesize(g, timing, alu_family, cs=3, style=1)
        assert result.datapath.has_self_loop()

    def test_style2_splits_dependent_chain(self, timing, alu_family):
        b = DFGBuilder()
        x = b.input("x")
        acc = x
        for index in range(3):
            acc = b.op(OpKind.ADD, acc, index, name=f"a{index}")
        b.output("o", acc)
        g = b.build()
        result = mfsa_synthesize(g, timing, alu_family, cs=3, style=2)
        assert not result.datapath.has_self_loop()
        assert len(result.alu_labels()) >= 2

    def test_style2_not_cheaper_on_chain(self, timing, alu_family):
        b = DFGBuilder()
        x = b.input("x")
        acc = x
        for index in range(4):
            acc = b.op(OpKind.ADD, acc, index, name=f"a{index}")
        b.output("o", acc)
        g = b.build()
        style1 = mfsa_synthesize(g, timing, alu_family, cs=4, style=1)
        style2 = mfsa_synthesize(g, timing, alu_family, cs=4, style=2)
        assert style2.cost.total >= style1.cost.total


class TestWeights:
    def test_reg_weight_prefers_shorter_lifetimes(self, timing, alu_family):
        g = hal_diffeq()
        plain = mfsa_synthesize(g, timing, alu_family, cs=8)
        reg_heavy = mfsa_synthesize(
            g, timing, alu_family, cs=8,
            weights=LiapunovWeights(reg=50.0),
        )
        assert (
            reg_heavy.datapath.register_count()
            <= plain.datapath.register_count()
        )

    def test_alu_weight_prefers_fewer_alus(self, timing, alu_family):
        g = hal_diffeq()
        alu_heavy = mfsa_synthesize(
            g, timing, alu_family, cs=8, weights=LiapunovWeights(alu=50.0)
        )
        plain = mfsa_synthesize(g, timing, alu_family, cs=8)
        assert len(alu_heavy.alu_labels()) <= len(plain.alu_labels())


class TestLibraryInteraction:
    def test_uncovered_kind_rejected(self, timing):
        narrow = simple_fu_library(["add"])
        with pytest.raises(Exception):
            mfsa_synthesize(hal_diffeq(), timing, narrow, cs=6)

    def test_single_function_library_mimics_mfs(self, timing):
        from repro.core.mfs import mfs_schedule

        lib = simple_fu_library(["add", "sub", "mul", "lt"])
        mfsa = mfsa_synthesize(hal_diffeq(), timing, lib, cs=6)
        mfs = mfs_schedule(hal_diffeq(), timing, cs=6)
        mfsa_counts = {}
        for key in mfsa.datapath.instances:
            kind = next(iter(lib.cell(key[0]).kinds))
            mfsa_counts[kind] = mfsa_counts.get(kind, 0) + 1
        assert mfsa_counts == mfs.fu_counts

    def test_restricted_library(self, timing, alu_family):
        names = [c.name for c in alu_family.cells() if "add" in c.kinds]
        restricted = alu_family.restricted(names)
        b = DFGBuilder()
        x = b.input("x")
        b.output("o", b.op(OpKind.ADD, x, 1, name="a"))
        g = b.build()
        result = mfsa_synthesize(g, timing, restricted, cs=1)
        assert result.schedule.makespan() == 1


class TestMulticycleAndChaining:
    def test_two_cycle_multiplier(self, timing_mul2, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing_mul2, alu_family, cs=8)
        result.schedule.validate()
        verify_equivalence(
            result.datapath, {"x": 1, "dx": 2, "u": 3, "y": 4, "a": 9}
        )

    def test_chained_synthesis(self, timing_chained, alu_family):
        from repro.bench.suites import chained_addsub

        result = mfsa_synthesize(
            chained_addsub(), timing_chained, alu_family, cs=4
        )
        result.schedule.validate()
        inputs = {f"i{k}": k for k in range(1, 10)}
        verify_equivalence(result.datapath, inputs)

    def test_random_graphs_equivalent(self, timing, alu_family):
        for seed in range(5):
            g = random_dfg(
                seed=seed,
                n_ops=18,
                kinds=(OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.AND),
            )
            cs = critical_path_length(g, timing) + 2
            result = mfsa_synthesize(g, timing, alu_family, cs=cs)
            inputs = {name: 3 + i for i, name in enumerate(g.inputs)}
            verify_equivalence(result.datapath, inputs)
