"""Tests for the placement grid."""

import pytest

from repro.core.grid import GridPosition, PlacementGrid
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind
from repro.errors import ScheduleError


def exclusive_pair_dfg():
    b = DFGBuilder()
    x = b.input("x")
    b.then_branch("c")
    b.op(OpKind.ADD, x, 1, name="t")
    b.else_branch("c")
    b.op(OpKind.ADD, x, 2, name="e")
    b.end_branch("c")
    b.op(OpKind.ADD, x, 3, name="u")
    return b.build()


@pytest.fixture
def grid():
    return PlacementGrid(exclusive_pair_dfg(), cs=4, columns={"add": 2})


class TestGeometry:
    def test_columns(self, grid):
        assert grid.columns("add") == 2
        assert grid.columns("mul") == 0

    def test_widen(self, grid):
        grid.widen("add", 5)
        assert grid.columns("add") == 5
        grid.widen("add", 3)  # never shrinks
        assert grid.columns("add") == 5

    def test_rejects_zero_steps(self):
        with pytest.raises(ScheduleError):
            PlacementGrid(exclusive_pair_dfg(), cs=0, columns={})

    def test_fold_without_latency(self, grid):
        assert grid.fold(3) == 3

    def test_fold_with_latency(self):
        grid = PlacementGrid(
            exclusive_pair_dfg(), cs=6, columns={"add": 1}, latency_l=2
        )
        assert grid.fold(1) == 1
        assert grid.fold(3) == 1
        assert grid.fold(4) == 2


class TestOccupancy:
    def test_place_and_query(self, grid):
        position = GridPosition("add", 1, 2)
        grid.place("u", position, latency=1)
        assert grid.position_of("u") == position
        assert grid.occupants("add", 1, 2) == ("u",)
        assert not grid.is_free("t", "add", 1, 2, 1)

    def test_out_of_range_not_free(self, grid):
        assert not grid.is_free("u", "add", 3, 1, 1)
        assert not grid.is_free("u", "add", 1, 5, 1)
        assert not grid.is_free("u", "add", 1, 4, 2)  # spills past cs

    def test_double_place_rejected(self, grid):
        grid.place("u", GridPosition("add", 1, 1), 1)
        with pytest.raises(ScheduleError):
            grid.place("u", GridPosition("add", 2, 1), 1)

    def test_occupied_cell_rejected(self, grid):
        grid.place("u", GridPosition("add", 1, 1), 1)
        with pytest.raises(ScheduleError):
            grid.place("t", GridPosition("add", 1, 1), 1)

    def test_remove(self, grid):
        grid.place("u", GridPosition("add", 1, 1), 1)
        grid.remove("u")
        assert grid.position_of("u") is None
        assert grid.is_free("t", "add", 1, 1, 1)

    def test_multicycle_occupancy(self, grid):
        grid.place("u", GridPosition("add", 1, 2), latency=2)
        assert not grid.is_free("t", "add", 1, 2, 1)
        assert not grid.is_free("t", "add", 1, 3, 1)
        assert grid.is_free("t", "add", 1, 4, 1)

    def test_mutually_exclusive_ops_share_cell(self, grid):
        grid.place("t", GridPosition("add", 1, 1), 1)
        assert grid.is_free("e", "add", 1, 1, 1)  # exclusive with t
        grid.place("e", GridPosition("add", 1, 1), 1)
        assert grid.occupants("add", 1, 1) == ("t", "e")
        assert not grid.is_free("u", "add", 1, 1, 1)  # u is unconditional

    def test_pipelined_table_start_only(self):
        grid = PlacementGrid(
            exclusive_pair_dfg(),
            cs=4,
            columns={"add": 1},
            pipelined_tables=("add",),
        )
        grid.place("u", GridPosition("add", 1, 1), latency=3)
        assert grid.is_free("t", "add", 1, 2, 3)  # next step is free

    def test_folded_occupancy(self):
        grid = PlacementGrid(
            exclusive_pair_dfg(), cs=6, columns={"add": 1}, latency_l=3
        )
        grid.place("u", GridPosition("add", 1, 1), 1)
        # steps 1 and 4 fold together under L=3
        assert not grid.is_free("t", "add", 1, 4, 1)
        assert grid.is_free("t", "add", 1, 2, 1)


class TestFoldedSpanRegressions:
    """Spans interacting with the functional-pipelining fold (§5.5.2).

    Regressions for the folded-occupancy bookkeeping: a span longer than
    ``L`` wraps onto itself — historically this recorded the same folded
    step twice (so ``remove`` left a ghost occupant behind) and
    ``is_free`` happily accepted the self-colliding placement.
    """

    def grid_l2(self):
        return PlacementGrid(
            exclusive_pair_dfg(), cs=8, columns={"add": 1}, latency_l=2
        )

    def test_occupied_steps_deduplicated(self):
        # A 4-step span under L=2 folds onto {1, 2}; each folded step
        # must appear exactly once, not (1, 2, 1, 2).
        grid = self.grid_l2()
        assert grid.occupied_steps("add", 1, 4) == (1, 2)

    def test_self_colliding_span_not_free(self):
        # span > L: the operation would collide with its own next
        # initiation, so the position is never free even on an empty grid.
        grid = self.grid_l2()
        assert not grid.is_free("u", "add", 1, 1, 4)
        with pytest.raises(ScheduleError):
            grid.place("u", GridPosition("add", 1, 1), latency=4)

    def test_span_equal_to_latency_l_still_allowed(self):
        grid = self.grid_l2()
        assert grid.is_free("u", "add", 1, 1, 2)

    def test_place_remove_symmetric_under_fold(self):
        grid = self.grid_l2()
        grid.place("u", GridPosition("add", 1, 1), latency=2)
        grid.remove("u")
        for step in (1, 2):
            assert grid.occupants("add", 1, step) == ()
        assert grid.is_free("t", "add", 1, 1, 2)

    def test_pipelined_table_span_exempt_from_fold_limit(self):
        # Structural pipelining occupies the start step only, so a long
        # latency does not self-collide even under a short L.
        grid = PlacementGrid(
            exclusive_pair_dfg(),
            cs=8,
            columns={"add": 1},
            latency_l=2,
            pipelined_tables=("add",),
        )
        assert grid.is_free("u", "add", 1, 1, 4)
        grid.place("u", GridPosition("add", 1, 1), latency=4)
        assert grid.occupied_steps("add", 1, 4) == (1,)


class TestStatistics:
    def test_used_columns(self, grid):
        assert grid.used_columns("add") == 0
        grid.place("u", GridPosition("add", 2, 1), 1)
        assert grid.used_columns("add") == 2
        assert grid.used_instances("add") == {2}

    def test_placements_snapshot(self, grid):
        grid.place("u", GridPosition("add", 1, 1), 1)
        snapshot = grid.placements()
        assert snapshot == {"u": GridPosition("add", 1, 1)}

    def test_occupancy_matrix_shape(self, grid):
        matrix = grid.occupancy_matrix("add")
        assert len(matrix) == 4
        assert len(matrix[0]) == 2
