"""MFSA with structurally pipelined functional units (§5.5.1)."""

import pytest

from repro.core.mfsa import MFSAScheduler
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind
from repro.sim.executor import verify_equivalence
from repro.sim.rtl_executor import verify_controller_equivalence
from repro.bench.suites import ewf, hal_diffeq


def back_to_back_products():
    b = DFGBuilder("stream")
    x, y = b.inputs("x", "y")
    products = [
        b.op(OpKind.MUL, x, index + 1, name=f"m{index}") for index in range(4)
    ]
    total = products[0]
    for index, product in enumerate(products[1:], start=1):
        total = b.op(OpKind.ADD, total, product, name=f"s{index}")
    b.output("o", total)
    return b.build()


class TestPipelinedMFSA:
    def test_single_pipelined_multiplier_suffices(self, timing_mul2, alu_family):
        result = MFSAScheduler(
            back_to_back_products(),
            timing_mul2,
            alu_family,
            cs=8,
            pipelined_kinds=("mul",),
        ).run()
        mul_instances = {
            key
            for name, key in result.datapath.binding.items()
            if name.startswith("m")
        }
        assert len(mul_instances) == 1

    def test_overlapping_products_simulate_correctly(
        self, timing_mul2, alu_family
    ):
        result = MFSAScheduler(
            back_to_back_products(),
            timing_mul2,
            alu_family,
            cs=8,
            pipelined_kinds=("mul",),
        ).run()
        schedule = result.schedule
        starts = sorted(
            schedule.start(f"m{i}") for i in range(4)
        )
        # at least one genuinely overlapping pair on the pipelined unit
        assert any(b - a == 1 for a, b in zip(starts, starts[1:]))
        verify_equivalence(result.datapath, {"x": 3, "y": 5})

    def test_controller_simulation_with_pipeline_overlap(
        self, timing_mul2, alu_family
    ):
        result = MFSAScheduler(
            back_to_back_products(),
            timing_mul2,
            alu_family,
            cs=8,
            pipelined_kinds=("mul",),
        ).run()
        verify_controller_equivalence(result.datapath, {"x": -2, "y": 7})

    def test_hal_with_pipelined_multiplier(self, timing_mul2, alu_family):
        result = MFSAScheduler(
            hal_diffeq(),
            timing_mul2,
            alu_family,
            cs=8,
            pipelined_kinds=("mul",),
        ).run()
        result.schedule.validate()
        verify_equivalence(
            result.datapath, {"x": 2, "dx": 3, "u": 5, "y": 7, "a": 100}
        )
        verify_controller_equivalence(
            result.datapath, {"x": 2, "dx": 3, "u": 5, "y": 7, "a": 100}
        )

    def test_pipelining_reduces_multiplier_instances(self, timing_mul2, alu_family):
        plain = MFSAScheduler(
            ewf(), timing_mul2, alu_family, cs=17
        ).run()
        pipelined = MFSAScheduler(
            ewf(), timing_mul2, alu_family, cs=17, pipelined_kinds=("mul",)
        ).run()

        def muls(result):
            return sum(
                1
                for key in result.datapath.instances
                if "mul" in alu_family.cell(key[0]).kinds
            )

        assert muls(pipelined) <= muls(plain)
