"""Tests for the priority ordering rules (§3.2, §5.3)."""

from repro.core.priorities import priority_order
from repro.dfg.analysis import TimingModel, alap_schedule, asap_schedule
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind, standard_operation_set
from repro.bench.suites import ewf, hal_diffeq


def order_of(dfg, timing, cs):
    asap = asap_schedule(dfg, timing)
    alap = alap_schedule(dfg, timing, cs)
    return priority_order(dfg, timing, asap, alap)


class TestBasicRules:
    def test_order_is_topological(self, timing):
        for g in (hal_diffeq(), ewf()):
            order = order_of(g, timing, cs=20)
            rank = {name: i for i, name in enumerate(order)}
            for node in g:
                for pred in node.predecessor_names():
                    assert rank[pred] < rank[node.name]

    def test_alap_step_is_primary_key(self, timing):
        g = hal_diffeq()
        asap = asap_schedule(g, timing)
        alap = alap_schedule(g, timing, 5)
        order = priority_order(g, timing, asap, alap)
        steps = [alap[name] for name in order]
        # ALAP steps may only deviate from sorted order where a dependence
        # forces it; for HAL at cs=5 they are exactly sorted.
        assert steps == sorted(steps)

    def test_lower_mobility_first_within_step(self, timing):
        b = DFGBuilder()
        x = b.input("x")
        # rigid: chain of 3 -> mobility 0 at cs=3
        r1 = b.op(OpKind.ADD, x, 1, name="r1")
        r2 = b.op(OpKind.ADD, r1, 1, name="r2")
        b.op(OpKind.ADD, r2, 1, name="r3")
        # loose: single op, mobility 2, ALAP step 3 like r3
        b.op(OpKind.ADD, x, 9, name="loose")
        g = b.build()
        order = order_of(g, timing, cs=3)
        assert order.index("r3") < order.index("loose")

    def test_insertion_order_breaks_full_ties(self, timing):
        b = DFGBuilder()
        x = b.input("x")
        b.op(OpKind.ADD, x, 1, name="first")
        b.op(OpKind.ADD, x, 2, name="second")
        g = b.build()
        order = order_of(g, timing, cs=1)
        assert order == ["first", "second"]

    def test_lower_mobility_beats_earlier_predecessor(self, timing):
        b = DFGBuilder()
        x = b.input("x")
        early = b.op(OpKind.ADD, x, 1, name="early")           # asap 1
        late_mid = b.op(OpKind.ADD, early, 1, name="mid")      # asap 2
        b.op(OpKind.MUL, early, x, name="child_of_early")      # asap 2, mob 2
        b.op(OpKind.MUL, late_mid, x, name="child_of_mid")     # asap 3, mob 1
        g = b.build()
        order = order_of(g, timing, cs=4)
        mults = [n for n in order if n.startswith("child")]
        # both have ALAP step 4; the lower-mobility operation goes first
        assert mults == ["child_of_mid", "child_of_early"]

    def test_latest_predecessor_end_helper(self, timing):
        from repro.core.priorities import _latest_predecessor_end
        from repro.dfg.analysis import asap_schedule

        b = DFGBuilder()
        x = b.input("x")
        p = b.op(OpKind.MUL, x, 1, name="p")
        b.op(OpKind.ADD, p, x, name="consumer")
        b.op(OpKind.ADD, x, x, name="orphan")
        g = b.build()
        asap = asap_schedule(g, timing)
        assert _latest_predecessor_end(g, timing, asap, "consumer") == 1
        assert _latest_predecessor_end(g, timing, asap, "orphan") == 0


class TestMulticycleInversion:
    def test_close_mobilities_invert(self, timing_mul2):
        b = DFGBuilder()
        x = b.input("x")
        # m_rigid: mobility 0 via a consumer chain; m_loose: mobility 1
        m_rigid = b.op(OpKind.MUL, x, 1, name="m_rigid")
        b.op(OpKind.ADD, m_rigid, 1, name="tail")
        b.op(OpKind.MUL, x, 2, name="m_loose")
        g = b.build()
        asap = asap_schedule(g, timing_mul2)
        alap = alap_schedule(g, timing_mul2, 3)
        # mobilities: m_rigid 0, m_loose 1 -> difference 1 < latency 2
        # but ALAP steps differ (1 vs 2) so the primary key decides; make
        # them share the ALAP step by widening cs and checking inversion
        alap4 = alap_schedule(g, timing_mul2, 4)
        mob = {n: alap4[n] - asap[n] for n in asap}
        if alap4["m_rigid"] == alap4["m_loose"]:
            order = priority_order(g, timing_mul2, asap, alap4)
            if abs(mob["m_rigid"] - mob["m_loose"]) < 2:
                # inverted: the MORE mobile multi-cycle op goes first
                assert order.index("m_loose") < order.index("m_rigid")

    def test_far_mobilities_follow_normal_rule(self, timing_mul2):
        b = DFGBuilder()
        x = b.input("x")
        rigid = b.op(OpKind.MUL, x, 1, name="rigid")
        chain = b.op(OpKind.ADD, rigid, 1, name="c1")
        chain = b.op(OpKind.ADD, chain, 1, name="c2")
        b.op(OpKind.MUL, x, 2, name="loose")
        g = b.build()
        asap = asap_schedule(g, timing_mul2)
        alap = alap_schedule(g, timing_mul2, 8)
        mob = {n: alap[n] - asap[n] for n in asap}
        assert abs(mob["rigid"] - mob["loose"]) >= 2
        # different ALAP steps here; just assert the order is topological
        order = priority_order(g, timing_mul2, asap, alap)
        assert order.index("rigid") < order.index("c1")


class TestChainedOrder:
    def test_same_alap_chained_pair_stays_topological(self, timing_chained):
        b = DFGBuilder()
        x = b.input("x")
        a = b.op(OpKind.ADD, x, 1, name="a")
        c = b.op(OpKind.ADD, a, 2, name="c")
        b.output("o", c)
        g = b.build()
        # with chaining both fit step 1; ALAP(a) == ALAP(c) == 1 at cs=1
        order = order_of(g, timing_chained, cs=1)
        assert order == ["a", "c"]
