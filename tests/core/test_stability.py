"""Tests for trajectory recording and Liapunov verification."""

import pytest

from repro.core.grid import GridPosition
from repro.core.stability import Trajectory
from repro.errors import StabilityError


def pos(x, y):
    return GridPosition("t", x, y)


class TestRecording:
    def test_events_accumulate(self):
        trajectory = Trajectory()
        trajectory.record("a", pos(1, 1), 3.0)
        trajectory.record("b", pos(1, 2), 5.0)
        assert len(trajectory) == 2
        assert [e.node for e in trajectory] == ["a", "b"]
        assert trajectory.events[0].iteration == 0
        assert trajectory.events[1].iteration == 1

    def test_events_for_node(self):
        trajectory = Trajectory()
        trajectory.record("a", pos(1, 1), 3.0)
        trajectory.record("b", pos(1, 2), 5.0)
        trajectory.record("a", pos(1, 1), 2.0)
        assert len(trajectory.events_for("a")) == 2

    def test_final_positions(self):
        trajectory = Trajectory()
        trajectory.record("a", pos(1, 3), 5.0)
        trajectory.record("a", pos(1, 1), 2.0)
        assert trajectory.final_positions() == {"a": pos(1, 1)}

    def test_total_energy_uses_final_values(self):
        trajectory = Trajectory()
        trajectory.record("a", pos(1, 3), 5.0)
        trajectory.record("b", pos(1, 1), 2.0)
        trajectory.record("a", pos(1, 2), 4.0)
        assert trajectory.total_energy() == 6.0


class TestVerification:
    def test_minimal_choice_passes(self):
        trajectory = Trajectory()
        trajectory.record(
            "a",
            pos(1, 1),
            3.0,
            alternatives=((pos(1, 1), 3.0), (pos(2, 1), 4.0)),
        )
        trajectory.verify()

    def test_suboptimal_choice_fails(self):
        trajectory = Trajectory()
        trajectory.record(
            "a",
            pos(2, 1),
            4.0,
            alternatives=((pos(1, 1), 3.0), (pos(2, 1), 4.0)),
        )
        with pytest.raises(StabilityError, match="available"):
            trajectory.verify()

    def test_monotone_decrease_per_node(self):
        trajectory = Trajectory()
        trajectory.record("a", pos(1, 3), 5.0)
        trajectory.record("a", pos(1, 1), 2.0)
        trajectory.verify()

    def test_energy_increase_fails(self):
        trajectory = Trajectory()
        trajectory.record("a", pos(1, 1), 2.0)
        trajectory.record("a", pos(1, 3), 5.0)
        with pytest.raises(StabilityError, match="increased"):
            trajectory.verify()

    def test_tolerance_absorbs_float_noise(self):
        trajectory = Trajectory()
        trajectory.record("a", pos(1, 1), 2.0)
        trajectory.record("a", pos(1, 1), 2.0 + 1e-12)
        trajectory.verify()


class TestSchedulerIntegration:
    def test_mfs_trajectories_always_verify(self, timing):
        from repro.core.mfs import MFSScheduler
        from repro.dfg.generators import random_dfg

        from repro.dfg.analysis import critical_path_length

        for seed in range(6):
            g = random_dfg(seed=seed, n_ops=25)
            cs = critical_path_length(g, timing) + 2
            result = MFSScheduler(g, timing, cs=cs, mode="time").run()
            result.trajectory.verify()
            assert len(result.trajectory) == len(g)

    def test_mfsa_trajectories_always_verify(self, timing, alu_family):
        from repro.core.mfsa import MFSAScheduler
        from repro.bench.suites import hal_diffeq

        result = MFSAScheduler(hal_diffeq(), timing, alu_family, cs=6).run()
        result.trajectory.verify()
