"""Tests for the static and dynamic Liapunov functions."""

import pytest

from repro.core.grid import GridPosition
from repro.core.liapunov import (
    LiapunovWeights,
    MFSALiapunov,
    ResourceConstrainedLiapunov,
    TimeConstrainedLiapunov,
)


def pos(x, y):
    return GridPosition("t", x, y)


class TestTimeConstrained:
    def test_last_fu_of_step_beats_first_fu_of_next(self):
        # The defining inequality of §3.1: V(max_j, t) < V(1, t+1).
        for n in (1, 2, 5, 17):
            v = TimeConstrainedLiapunov(n=n)
            assert v.value(pos(n, 3)) < v.value(pos(1, 4))

    def test_within_step_prefers_low_instance(self):
        v = TimeConstrainedLiapunov(n=4)
        assert v.value(pos(1, 2)) < v.value(pos(2, 2))

    def test_best_selects_minimum(self):
        v = TimeConstrainedLiapunov(n=4)
        positions = [pos(2, 3), pos(1, 2), pos(4, 1)]
        assert v.best(positions) == pos(4, 1)

    def test_best_of_empty_is_none(self):
        assert TimeConstrainedLiapunov(n=2).best([]) is None

    def test_tie_breaks_deterministic(self):
        # With n equal to column count, (n, t) vs (?, t): no exact ties by
        # construction, but equal-value positions order by (y, x).
        v = TimeConstrainedLiapunov(n=1)
        a, b = pos(2, 1), pos(1, 2)  # both value 2+1=3? a: 2+1*1=3, b: 1+2=3
        assert v.value(a) == v.value(b)
        assert v.best([b, a]) == a  # smaller y wins

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            TimeConstrainedLiapunov(n=0)


class TestDominanceEnforcement:
    """§3.1 bounds: an undersized n/cs silently breaks the argmin order,
    so ``require_dominance`` must catch it at the call site."""

    def test_time_constrained_accepts_sufficient_n(self):
        TimeConstrainedLiapunov(n=4).require_dominance(4)
        TimeConstrainedLiapunov(n=9).require_dominance(4)

    def test_time_constrained_rejects_undersized_n(self):
        with pytest.raises(ValueError, match="dominate"):
            TimeConstrainedLiapunov(n=3).require_dominance(4)
        # And the ordering really is broken with n < max_j: a new step
        # would beat the last FU column of the current step.
        v = TimeConstrainedLiapunov(n=2)
        assert v.value(pos(4, 1)) > v.value(pos(1, 2))

    def test_resource_constrained_accepts_sufficient_cs(self):
        ResourceConstrainedLiapunov(cs=6).require_dominance(6)
        ResourceConstrainedLiapunov(cs=8).require_dominance(6)

    def test_resource_constrained_rejects_undersized_cs(self):
        with pytest.raises(ValueError, match="dominate"):
            ResourceConstrainedLiapunov(cs=5).require_dominance(6)
        v = ResourceConstrainedLiapunov(cs=4)
        assert v.value(pos(1, 6)) > v.value(pos(2, 1))


class TestResourceConstrained:
    def test_existing_fu_later_beats_new_fu_now(self):
        # §3.1: position (x, t+1) on an existing FU beats (x+1, t).
        for cs in (2, 4, 10):
            v = ResourceConstrainedLiapunov(cs=cs)
            assert v.value(pos(1, cs)) < v.value(pos(2, 1))

    def test_within_column_prefers_early_step(self):
        v = ResourceConstrainedLiapunov(cs=8)
        assert v.value(pos(1, 2)) < v.value(pos(1, 5))

    def test_rejects_bad_cs(self):
        with pytest.raises(ValueError):
            ResourceConstrainedLiapunov(cs=0)


class TestWeights:
    def test_defaults_are_all_ones(self):
        w = LiapunovWeights()
        assert (w.time, w.alu, w.mux, w.reg) == (1.0, 1.0, 1.0, 1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            LiapunovWeights(mux=-1.0)


class TestMFSALiapunov:
    def test_c_dominates_hardware(self, library):
        v = MFSALiapunov(library)
        # worst hardware at step y beats best hardware at step y+1
        worst = v.value(
            3, library.f_alu_max(), library.f_mux_max(), library.f_reg_max()
        )
        best_next = v.value(4, 0.0, 0.0, 0.0)
        assert worst < best_next

    def test_c_satisfies_paper_inequality(self, library):
        v = MFSALiapunov(library)
        spread = (
            library.f_alu_max() + library.f_mux_max() + library.f_reg_max()
        )
        assert v.c_constant > spread

    def test_hardware_breaks_ties_within_step(self, library):
        v = MFSALiapunov(library)
        cheap = v.value(3, 0.0, 100.0, 0.0)
        pricey = v.value(3, 5000.0, 100.0, 0.0)
        assert cheap < pricey

    def test_weighted_emphasis(self, library):
        unweighted = MFSALiapunov(library)
        reg_heavy = MFSALiapunov(library, LiapunovWeights(reg=10.0))
        assert reg_heavy.value(1, 0, 0, 100.0) > unweighted.value(1, 0, 0, 100.0)

    def test_weights_cannot_break_time_dominance(self, library):
        v = MFSALiapunov(library, LiapunovWeights(alu=10.0, mux=10.0, reg=10.0))
        worst = v.value(
            3, library.f_alu_max(), library.f_mux_max(), library.f_reg_max()
        )
        assert worst < v.value(4, 0.0, 0.0, 0.0)

    def test_hardware_value_excludes_time(self, library):
        v = MFSALiapunov(library)
        assert v.hardware_value(10.0, 20.0, 30.0) == 60.0
