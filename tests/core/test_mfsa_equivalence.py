"""Cached MFSA must be byte-identical to the naive reference path.

The PR that introduced the caching layer (`_AllocationState` memo tables,
the process-wide mux-optimiser memo, the shared per-node frame, the f_REG
cache) guarantees exactness: every cache is keyed on the complete input of
a deterministic function.  These tests lock that down against the
``no_cache=True`` reference, which recomputes every Liapunov term from
scratch for every candidate position:

* all six paper examples, both design styles;
* hypothesis-generated random DFGs (seeded generator).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocation.mux import clear_mux_memo
from repro.bench.suites import EXAMPLES
from repro.bench.table2 import run_example
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.generators import random_dfg
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library

TIMING = TimingModel(ops=standard_operation_set())
LIBRARY = datapath_library()


def assert_equivalent(cached, naive):
    """Every observable artifact must match between the two paths."""
    assert cached.schedule.starts == naive.schedule.starts
    assert cached.placements == naive.placements
    assert cached.alu_labels() == naive.alu_labels()
    assert cached.cost == naive.cost
    assert (
        cached.datapath.register_count() == naive.datapath.register_count()
    )
    assert cached.datapath.mux_count() == naive.datapath.mux_count()
    assert cached.datapath.mux_inputs() == naive.datapath.mux_inputs()
    assert [e.node for e in cached.trajectory.events] == [
        e.node for e in naive.trajectory.events
    ]
    assert [e.energy for e in cached.trajectory.events] == [
        e.energy for e in naive.trajectory.events
    ]


@pytest.mark.parametrize("key", sorted(EXAMPLES))
@pytest.mark.parametrize("style", [1, 2])
def test_examples_cached_equals_naive(key, style):
    spec = EXAMPLES[key]
    clear_mux_memo()  # cold memo
    cached_cold = run_example(spec, style)
    naive = run_example(spec, style, no_cache=True)
    assert_equivalent(cached_cold, naive)
    # warm process-wide memo must not change anything either
    cached_warm = run_example(spec, style)
    assert_equivalent(cached_warm, naive)


dfg_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=1, max_value=30),      # n_ops
    st.integers(min_value=1, max_value=6),       # n_inputs
    st.integers(min_value=1, max_value=10),      # locality
)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(params=dfg_params, style=st.sampled_from([1, 2]), slack=st.integers(0, 3))
@RELAXED
def test_random_dfgs_cached_equals_naive(params, style, slack):
    seed, n_ops, n_inputs, locality = params
    g = random_dfg(seed, n_ops=n_ops, n_inputs=n_inputs, locality=locality)
    cs = critical_path_length(g, TIMING) + slack

    def run(no_cache):
        return MFSAScheduler(
            g, TIMING, LIBRARY, cs=cs, style=style, no_cache=no_cache
        ).run()

    assert_equivalent(run(False), run(True))
