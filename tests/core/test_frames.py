"""Tests for PF/RF/FF/MF frame computation."""

import pytest

from repro.core.frames import compute_frames
from repro.core.grid import GridPosition, PlacementGrid
from repro.dfg.analysis import TimingModel, alap_schedule, asap_schedule
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind, standard_operation_set


def chain3():
    b = DFGBuilder()
    x = b.input("x")
    a = b.op(OpKind.ADD, x, 1, name="a")
    c = b.op(OpKind.ADD, a, 2, name="c")
    d = b.op(OpKind.ADD, c, 3, name="d")
    b.output("o", d)
    return b.build()


def frames_for(dfg, timing, node, cs, current, placed, grid=None, **kw):
    asap = asap_schedule(dfg, timing)
    alap = alap_schedule(dfg, timing, cs)
    grid = grid or PlacementGrid(dfg, cs, {"add": 3})
    return compute_frames(
        dfg,
        timing,
        grid,
        node,
        table="add",
        asap=asap,
        alap=alap,
        current=current,
        placed_starts=placed,
        **kw,
    )


class TestPrimaryFrame:
    def test_pf_spans_asap_to_alap(self, timing):
        g = chain3()
        frame = frames_for(g, timing, "c", cs=5, current=3, placed={})
        assert frame.pf_rows == (2, 4)
        assert frame.pf_cols == (1, 3)

    def test_pf_positions_enumeration(self, timing):
        g = chain3()
        frame = frames_for(g, timing, "c", cs=5, current=3, placed={})
        assert len(frame.pf_positions()) == 3 * 3  # 3 rows x 3 cols


class TestRedundantFrame:
    def test_rf_excludes_unopened_columns(self, timing):
        g = chain3()
        frame = frames_for(g, timing, "c", cs=5, current=1, placed={})
        assert frame.rf_cols == (2, 3)
        assert all(p.x == 1 for p in frame.mf)

    def test_rf_none_when_all_open(self, timing):
        g = chain3()
        frame = frames_for(g, timing, "c", cs=5, current=3, placed={})
        assert frame.rf_cols is None

    def test_in_rf_query(self, timing):
        g = chain3()
        frame = frames_for(g, timing, "c", cs=5, current=1, placed={})
        assert frame.in_rf(GridPosition("add", 2, 3))
        assert not frame.in_rf(GridPosition("add", 1, 3))


class TestForbiddenFrame:
    def test_rows_at_or_before_placed_pred_forbidden(self, timing):
        g = chain3()
        frame = frames_for(g, timing, "c", cs=5, current=3, placed={"a": 2})
        assert frame.ff_rows_before == 2
        assert all(p.y >= 3 for p in frame.mf)

    def test_placed_successor_bounds_above(self, timing):
        g = chain3()
        frame = frames_for(g, timing, "c", cs=5, current=3, placed={"d": 4})
        assert frame.ff_rows_after == 4
        assert all(p.y <= 3 for p in frame.mf)

    def test_unplaced_neighbors_ignored(self, timing):
        g = chain3()
        frame = frames_for(g, timing, "c", cs=5, current=3, placed={})
        assert frame.ff_rows_before == 0
        rows = {p.y for p in frame.mf}
        assert rows == {2, 3, 4}

    def test_multicycle_pred_end_respected(self, timing_mul2):
        b = DFGBuilder()
        x = b.input("x")
        m = b.op(OpKind.MUL, x, x, name="m")
        a = b.op(OpKind.ADD, m, x, name="a")
        b.output("o", a)
        g = b.build()
        grid = PlacementGrid(g, 5, {"add": 1, "mul": 1})
        asap = asap_schedule(g, timing_mul2)
        alap = alap_schedule(g, timing_mul2, 5)
        frame = compute_frames(
            g, timing_mul2, grid, "a", "add", asap, alap,
            current=1, placed_starts={"m": 2},  # m occupies 2..3
        )
        assert frame.ff_rows_before == 3
        assert all(p.y >= 4 for p in frame.mf)


class TestChainRows:
    def test_chaining_readmits_pred_row(self, timing_chained):
        g = chain3()
        frame = frames_for(
            g,
            timing_chained,
            "c",
            cs=3,
            current=3,
            placed={"a": 1},
            chain_offsets={"a": 10.0},
        )
        assert 1 in frame.chain_rows
        assert any(p.y == 1 for p in frame.mf)

    def test_full_clock_blocks_chaining(self, ops):
        chained = TimingModel(ops=ops, clock_period_ns=10.0)  # one add max
        g = chain3()
        frame = frames_for(
            g,
            chained,
            "c",
            cs=3,
            current=3,
            placed={"a": 1},
            chain_offsets={"a": 10.0},
        )
        assert frame.chain_rows == ()

    def test_no_chaining_without_clock(self, timing):
        g = chain3()
        frame = frames_for(
            g, timing, "c", cs=5, current=3, placed={"a": 1},
            chain_offsets={"a": 10.0},
        )
        assert frame.chain_rows == ()


class TestMoveFrame:
    def test_mf_is_pf_minus_rf_ff_occupied(self, timing):
        g = chain3()
        grid = PlacementGrid(g, 5, {"add": 3})
        grid.place("a", GridPosition("add", 1, 2), 1)
        frame = frames_for(
            g, timing, "c", cs=5, current=2, placed={"a": 2}, grid=grid
        )
        # rows 3..4, columns 1..2, minus nothing occupied there
        assert {(p.x, p.y) for p in frame.mf} == {
            (1, 3), (2, 3), (1, 4), (2, 4)
        }

    def test_occupied_cells_excluded(self, timing):
        g = chain3()
        grid = PlacementGrid(g, 5, {"add": 1})
        grid.place("a", GridPosition("add", 1, 3), 1)
        frame = frames_for(
            g, timing, "c", cs=5, current=1, placed={"a": 3}, grid=grid
        )
        assert {(p.x, p.y) for p in frame.mf} == {(1, 4)}

    def test_excluded_instances(self, timing):
        g = chain3()
        frame = frames_for(
            g, timing, "c", cs=5, current=3, placed={},
            excluded_instances=(1, 2),
        )
        assert all(p.x == 3 for p in frame.mf)

    def test_empty_frame_flag(self, timing):
        g = chain3()
        grid = PlacementGrid(g, 3, {"add": 1})
        frame = frames_for(
            g, timing, "c", cs=3, current=1, placed={"a": 2}, grid=grid
        )
        # a placed at step 2 forbids rows <= 2, but ALAP(c) = 2 at cs=3,
        # so the primary frame is exactly the forbidden row: MF is empty
        # and the scheduler must locally reschedule.
        assert frame.empty
