"""Tests for the Move Frame Scheduling algorithm (§3)."""

import pytest

from repro.core.mfs import MFSScheduler, mfs_schedule
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.builder import DFGBuilder
from repro.dfg.generators import random_conditional_dfg, random_dfg
from repro.dfg.graph import DFG
from repro.dfg.ops import OpKind
from repro.errors import InfeasibleScheduleError, ScheduleError
from repro.bench.suites import chained_addsub, facet_like, hal_diffeq


class TestTimeConstrained:
    def test_schedule_is_valid(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=5)
        result.schedule.validate()
        assert result.schedule.makespan() <= 5

    def test_hal_at_4_needs_two_multipliers(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=4)
        assert result.fu_counts == {"mul": 2, "add": 1, "sub": 1, "lt": 1}

    def test_hal_at_8_needs_one_multiplier(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=8)
        assert result.fu_counts["mul"] == 1

    def test_facet_matches_paper_row(self, timing):
        at4 = mfs_schedule(facet_like(), timing, cs=4).fu_counts
        at5 = mfs_schedule(facet_like(), timing, cs=5).fu_counts
        assert at4 == {"mul": 1, "add": 2, "sub": 1, "eq": 1, "and": 1, "or": 1}
        assert at5 == {"mul": 1, "add": 1, "sub": 1, "eq": 1, "and": 1, "or": 1}

    def test_fu_counts_never_increase_with_budget(self, timing):
        g = hal_diffeq()
        totals = [
            sum(mfs_schedule(g, timing, cs=cs).fu_counts.values())
            for cs in (4, 5, 6, 8, 11)
        ]
        assert totals == sorted(totals, reverse=True)

    def test_cs_required_in_time_mode(self, timing):
        with pytest.raises(ScheduleError):
            MFSScheduler(hal_diffeq(), timing, mode="time")

    def test_infeasible_cs_raises(self, timing):
        with pytest.raises(InfeasibleScheduleError):
            mfs_schedule(hal_diffeq(), timing, cs=3)

    def test_empty_dfg(self, timing):
        result = mfs_schedule(DFG("empty"), timing, cs=1)
        assert result.schedule.starts == {}

    def test_placements_are_consistent_with_schedule(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=5)
        for name, position in result.placements.items():
            assert result.schedule.start(name) == position.y
            assert position.table == hal_diffeq().node(name).kind

    def test_bad_mode_rejected(self, timing):
        with pytest.raises(ValueError):
            MFSScheduler(hal_diffeq(), timing, cs=4, mode="banana")


class TestLiapunovInjection:
    """The ``liapunov=`` override and its §3.1 dominance validation."""

    def test_undersized_time_liapunov_rejected(self, timing):
        # hal at cs=4 offers >= 2 multiplier columns, so n=1 violates
        # n >= max_j and must be refused instead of silently misordering.
        from repro.core.liapunov import TimeConstrainedLiapunov

        with pytest.raises(ScheduleError, match="dominate"):
            MFSScheduler(
                hal_diffeq(),
                timing,
                cs=4,
                mode="time",
                liapunov=TimeConstrainedLiapunov(n=1),
            ).run()

    def test_adequate_time_liapunov_matches_default(self, timing):
        from repro.core.liapunov import TimeConstrainedLiapunov

        default = mfs_schedule(hal_diffeq(), timing, cs=5)
        injected = MFSScheduler(
            hal_diffeq(),
            timing,
            cs=5,
            mode="time",
            liapunov=TimeConstrainedLiapunov(n=50),
        ).run()
        # A dominant n changes no argmin decision, only the energy scale.
        assert injected.schedule.starts == default.schedule.starts

    def test_undersized_resource_liapunov_rejected(self, timing):
        from repro.core.liapunov import ResourceConstrainedLiapunov

        with pytest.raises(ScheduleError, match="dominate"):
            MFSScheduler(
                hal_diffeq(),
                timing,
                mode="resource",
                resource_bounds={"mul": 1, "add": 1, "sub": 1, "lt": 1},
                liapunov=ResourceConstrainedLiapunov(cs=2),
            ).run()


class TestVerifyPostCondition:
    def test_verify_true_passes_on_clean_run(self, timing):
        result = MFSScheduler(
            hal_diffeq(), timing, cs=5, mode="time", verify=True
        ).run()
        result.schedule.validate()


class TestUserBounds:
    def test_user_bounds_respected(self, timing):
        result = MFSScheduler(
            hal_diffeq(),
            timing,
            cs=8,
            mode="time",
            resource_bounds={"mul": 2, "add": 1, "sub": 1, "lt": 1},
        ).run()
        assert result.fu_counts["mul"] <= 2

    def test_unsatisfiable_user_bounds_raise(self, timing):
        with pytest.raises(InfeasibleScheduleError):
            MFSScheduler(
                hal_diffeq(),
                timing,
                cs=4,
                mode="time",
                resource_bounds={"mul": 1, "add": 1, "sub": 1, "lt": 1},
            ).run()

    def test_missing_kind_bound_rejected(self, timing):
        with pytest.raises(ScheduleError, match="bound"):
            MFSScheduler(
                hal_diffeq(), timing, cs=6, mode="time",
                resource_bounds={"mul": 2},
            ).run()


class TestResourceConstrained:
    def test_respects_bounds(self, timing):
        result = MFSScheduler(
            hal_diffeq(),
            timing,
            mode="resource",
            resource_bounds={"mul": 1, "add": 1, "sub": 1, "lt": 1},
        ).run()
        result.schedule.validate(
            resource_bounds={"mul": 1, "add": 1, "sub": 1, "lt": 1}
        )

    def test_one_multiplier_stretches_time(self, timing):
        tight = MFSScheduler(
            hal_diffeq(),
            timing,
            mode="resource",
            resource_bounds={"mul": 1, "add": 1, "sub": 1, "lt": 1},
        ).run()
        assert tight.schedule.makespan() >= 6  # six multiplies on one unit

    def test_loose_bounds_still_avoid_new_fus(self, timing):
        # §3.1: the resource-constrained Liapunov prefers "a position in
        # control step t+1 performed by an existing FU instead of adding a
        # new FU in control step t" — extra allowance stays unused.
        loose = MFSScheduler(
            hal_diffeq(),
            timing,
            mode="resource",
            resource_bounds={"mul": 3, "add": 2, "sub": 2, "lt": 1},
        ).run()
        assert loose.fu_counts["mul"] == 1

    def test_bounds_required(self, timing):
        with pytest.raises(ScheduleError):
            MFSScheduler(hal_diffeq(), timing, mode="resource")

    def test_random_graphs(self, timing):
        for seed in range(5):
            g = random_dfg(seed=seed, n_ops=20)
            bounds = {kind: 1 for kind in g.kinds_used()}
            result = MFSScheduler(
                g, timing, mode="resource", resource_bounds=bounds
            ).run()
            result.schedule.validate(resource_bounds=bounds)


class TestMulticycle:
    def test_two_cycle_multiplier_schedule_valid(self, timing_mul2):
        result = mfs_schedule(hal_diffeq(), timing_mul2, cs=8)
        result.schedule.validate()

    def test_multiplier_held_for_two_steps(self, timing_mul2):
        result = mfs_schedule(hal_diffeq(), timing_mul2, cs=6)
        schedule = result.schedule
        for name in ("m1", "m2", "m3", "m4", "m5", "m6"):
            assert schedule.end(name) == schedule.start(name) + 1

    def test_tighter_budget_needs_more_multipliers(self, timing_mul2):
        at6 = mfs_schedule(hal_diffeq(), timing_mul2, cs=6).fu_counts["mul"]
        at10 = mfs_schedule(hal_diffeq(), timing_mul2, cs=10).fu_counts["mul"]
        assert at6 > at10


class TestChaining:
    def test_chained_example_fits_half_the_steps(self, timing_chained, timing):
        g = chained_addsub()
        assert critical_path_length(g, timing) == 8
        result = mfs_schedule(g, timing_chained, cs=4)
        result.schedule.validate()
        assert result.fu_counts == {"add": 1, "sub": 1}

    def test_chained_schedule_has_same_step_dependences(self, timing_chained):
        result = mfs_schedule(chained_addsub(), timing_chained, cs=4)
        schedule = result.schedule
        dfg = result.schedule.dfg
        same_step_pairs = [
            (pred, node.name)
            for node in dfg
            for pred in node.predecessor_names()
            if schedule.start(pred) == schedule.start(node.name)
        ]
        assert same_step_pairs  # chaining actually happened

    def test_chaining_off_needs_full_length(self, timing):
        with pytest.raises(InfeasibleScheduleError):
            mfs_schedule(chained_addsub(), timing, cs=4)


class TestMutualExclusion:
    def test_exclusive_ops_share_units(self, timing):
        from repro.bench.suites import conditional_example

        g = conditional_example()
        result = mfs_schedule(g, timing, cs=4)
        result.schedule.validate()
        assert result.fu_counts["mul"] == 1  # both arms share one multiplier

    def test_random_conditionals_schedule_validly(self, timing):
        for seed in range(5):
            g = random_conditional_dfg(seed=seed, n_ops=20)
            cs = critical_path_length(g, timing) + 2
            mfs_schedule(g, timing, cs=cs).schedule.validate()


class TestLowerBounds:
    def test_fu_counts_meet_distribution_lower_bound(self, timing):
        for seed in range(8):
            g = random_dfg(seed=seed, n_ops=30)
            cs = critical_path_length(g, timing) + 3
            result = mfs_schedule(g, timing, cs=cs)
            for kind, count in g.count_by_kind().items():
                lower = -(-count // cs)
                assert result.fu_counts.get(kind, 0) >= lower

    def test_random_graphs_all_valid(self, timing):
        for seed in range(10):
            g = random_dfg(seed=seed, n_ops=40)
            cs = critical_path_length(g, timing) + 2
            result = mfs_schedule(g, timing, cs=cs)
            result.schedule.validate()
            assert len(result.trajectory) == len(g)
