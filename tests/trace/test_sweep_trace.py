"""Merged sweep traces: serial vs process backends must agree byte for byte."""

import pytest

from repro.explore import design_space
from repro.trace import (
    TraceRecorder,
    check_descent,
    parse_jsonl,
    split_runs,
    validate_events,
)

BUDGETS = [4, 5, 6]


def sweep_trace(diamond_dfg, timing, alu_family, backend):
    trace = TraceRecorder()
    design_space(
        diamond_dfg,
        timing,
        alu_family,
        budgets=BUDGETS,
        backend=backend,
        trace=trace,
    )
    return trace


class TestMergedSweepTraces:
    def test_one_tagged_run_per_budget(self, diamond_dfg, timing, alu_family):
        trace = sweep_trace(diamond_dfg, timing, alu_family, "serial")
        runs = split_runs(trace.events())
        assert len(runs) == len(BUDGETS)
        for budget, run in zip(BUDGETS, runs):
            start = run[0]
            assert start["t"] == "run.start"
            assert start["cs"] == budget
            # Every event of a merged worker run carries its src tag.
            assert all(e["src"] == f"cs={budget}" for e in run)

    def test_merged_stream_validates_and_descends(
        self, diamond_dfg, timing, alu_family
    ):
        trace = sweep_trace(diamond_dfg, timing, alu_family, "serial")
        events = trace.events()
        assert validate_events(events) == []
        assert check_descent(events) == []

    def test_merged_stream_roundtrips(self, diamond_dfg, timing, alu_family):
        trace = sweep_trace(diamond_dfg, timing, alu_family, "serial")
        assert parse_jsonl(trace.to_jsonl()) == trace.events()

    def test_serial_and_process_traces_identical(
        self, diamond_dfg, timing, alu_family
    ):
        serial = sweep_trace(diamond_dfg, timing, alu_family, "serial")
        process = sweep_trace(diamond_dfg, timing, alu_family, "process")
        assert serial.to_jsonl() == process.to_jsonl()

    def test_none_trace_is_a_no_op(self, diamond_dfg, timing, alu_family):
        points = design_space(
            diamond_dfg, timing, alu_family, budgets=BUDGETS, trace=None
        )
        assert [p.cs for p in points] == BUDGETS
