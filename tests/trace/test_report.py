"""Run-report rendering and the ``repro-hls trace`` CLI end to end."""

import json

import pytest

from repro.cli import main
from repro.trace import parse_jsonl, render_run_report, trace_run

GRADIENT = "examples/designs/gradient.beh"


@pytest.fixture(scope="module")
def gradient_run():
    from pathlib import Path

    from repro.dfg.analysis import TimingModel
    from repro.dfg.ops import standard_operation_set
    from repro.dfg.parser import parse_behavior

    dfg = parse_behavior(Path(GRADIENT).read_text(), name="gradient")
    timing = TimingModel(standard_operation_set())
    return trace_run(dfg, timing, scheduler="mfsa")


class TestReportRenderer:
    def test_report_has_every_section(self, gradient_run):
        report = gradient_run.report
        for heading in (
            "# Run report — gradient",
            "## Run 1: MFSA on `gradient`",
            "### Schedule (Gantt)",
            "### Liapunov descent",
            "### Move-frame occupancy",
            "### Counters",
        ):
            assert heading in report

    def test_report_embeds_svg_and_verdict(self, gradient_run):
        assert gradient_run.ok
        assert "<svg" in gradient_run.report
        assert "Replayed Liapunov descent: **OK**" in gradient_run.report

    def test_report_counter_table_has_hit_rates(self, gradient_run):
        assert "`mfsa.candidates_evaluated`" in gradient_run.report
        assert "_hit_rate`" in gradient_run.report

    def test_regeneration_is_byte_identical(self, gradient_run):
        events = parse_jsonl(gradient_run.jsonl)
        assert render_run_report(events) == gradient_run.report
        assert render_run_report(events) == render_run_report(events)

    def test_violating_stream_renders_not_raises(self, gradient_run):
        events = parse_jsonl(gradient_run.jsonl)
        commit = next(e for e in events if e["t"] == "op.commit")
        commit["e"] += 1000.0
        report = render_run_report(events)
        assert "violation(s)" in report
        assert "liapunov." in report

    def test_mfs_report_renders(self):
        from pathlib import Path

        from repro.dfg.analysis import TimingModel
        from repro.dfg.ops import standard_operation_set
        from repro.dfg.parser import parse_behavior

        dfg = parse_behavior(Path(GRADIENT).read_text(), name="gradient")
        run = trace_run(
            dfg, TimingModel(standard_operation_set()), scheduler="mfs"
        )
        assert run.ok
        assert "## Run 1: MFS on `gradient`" in run.report
        assert "FU usage" in run.report

    def test_unknown_scheduler_rejected(self, diamond_dfg, timing):
        with pytest.raises(ValueError):
            trace_run(diamond_dfg, timing, scheduler="list")


class TestTraceCLI:
    def test_trace_subcommand_end_to_end(self, tmp_path, capsys):
        jsonl = tmp_path / "g.trace.jsonl"
        report = tmp_path / "g.report.md"
        code = main(
            [
                "trace",
                GRADIENT,
                "--jsonl",
                str(jsonl),
                "--report",
                str(report),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed descent OK" in out
        events = [
            json.loads(line) for line in jsonl.read_text().splitlines()
        ]
        assert events[0] == {"t": "trace.header", "v": 1}
        assert parse_jsonl(jsonl.read_text()) == events
        text = report.read_text()
        assert "# Run report — gradient" in text
        assert "<svg" in text

    def test_trace_subcommand_mfs_with_cs(self, tmp_path, capsys):
        code = main(
            [
                "trace",
                GRADIENT,
                "--scheduler",
                "mfs",
                "--cs",
                "4",
                "--jsonl",
                str(tmp_path / "t.jsonl"),
                "--report",
                str(tmp_path / "t.md"),
            ]
        )
        assert code == 0
        events = parse_jsonl((tmp_path / "t.jsonl").read_text())
        start = events[1]
        assert start["scheduler"] == "mfs"
        assert start["cs"] == 4
