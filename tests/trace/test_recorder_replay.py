"""Recorder → JSONL → replay round-trip and schema validation."""

import pytest

from repro.core.grid import GridPosition
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.errors import TraceError
from repro.trace import (
    SCHEMA_VERSION,
    TraceRecorder,
    check_descent,
    descent_curve,
    node_energy_sequences,
    parse_jsonl,
    read_jsonl,
    split_runs,
    to_trajectory,
    validate_event,
    validate_events,
)


def traced_mfsa(dfg, timing, library, cs=None, **kwargs):
    from repro.dfg.analysis import critical_path_length

    trace = TraceRecorder()
    MFSAScheduler(
        dfg,
        timing,
        library,
        cs=cs or critical_path_length(dfg, timing),
        trace=trace,
        **kwargs,
    ).run()
    return trace


class TestRoundTrip:
    def test_events_survive_jsonl_identically(self, diamond_dfg, timing, alu_family):
        """emit → JSONL → load must reproduce the exact event stream."""
        trace = traced_mfsa(diamond_dfg, timing, alu_family)
        assert parse_jsonl(trace.to_jsonl()) == trace.events()

    def test_mfs_events_survive_jsonl_identically(self, diamond_dfg, timing):
        trace = TraceRecorder()
        MFSScheduler(diamond_dfg, timing, cs=4, trace=trace).run()
        assert parse_jsonl(trace.to_jsonl()) == trace.events()

    def test_write_and_read_file(self, tmp_path, diamond_dfg, timing, alu_family):
        trace = traced_mfsa(diamond_dfg, timing, alu_family)
        path = tmp_path / "run.trace.jsonl"
        trace.write_jsonl(path)
        assert read_jsonl(path) == trace.events()

    def test_header_carries_schema_version(self, diamond_dfg, timing, alu_family):
        trace = traced_mfsa(diamond_dfg, timing, alu_family)
        header = trace.events()[0]
        assert header["t"] == "trace.header"
        assert header["v"] == SCHEMA_VERSION

    def test_snapshot_is_headerless_and_picklable(
        self, diamond_dfg, timing, alu_family
    ):
        import pickle

        trace = traced_mfsa(diamond_dfg, timing, alu_family)
        snapshot = trace.snapshot()
        assert all(event["t"] != "trace.header" for event in snapshot)
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot


class TestEventStream:
    def test_every_event_validates(self, diamond_dfg, timing, alu_family):
        trace = traced_mfsa(diamond_dfg, timing, alu_family)
        assert validate_events(trace.events()) == []

    def test_one_commit_per_operation(self, diamond_dfg, timing, alu_family):
        trace = traced_mfsa(diamond_dfg, timing, alu_family)
        commits = [e for e in trace.events() if e["t"] == "op.commit"]
        assert sorted(e["node"] for e in commits) == sorted(
            node.name for node in diamond_dfg
        )

    def test_mfsa_candidates_carry_energy_breakdown(
        self, diamond_dfg, timing, alu_family
    ):
        trace = traced_mfsa(diamond_dfg, timing, alu_family)
        cands = [e for e in trace.events() if e["t"] == "cand.eval"]
        assert cands
        for event in cands:
            assert event["e"] == pytest.approx(
                event["ft"] + event["fa"] + event["fm"] + event["fr"]
            )

    def test_mfs_emits_frames_and_run_summary(self, diamond_dfg, timing):
        trace = TraceRecorder()
        result = MFSScheduler(diamond_dfg, timing, cs=4, trace=trace).run()
        events = trace.events()
        assert any(e["t"] == "frame.built" for e in events)
        end = events[-1]
        assert end["t"] == "run.end"
        assert end["commits"] == len(diamond_dfg)
        assert end["fu_counts"] == result.fu_counts

    def test_counters_event_only_with_perf(self, diamond_dfg, timing, alu_family):
        from repro.perf import PerfCounters

        bare = traced_mfsa(diamond_dfg, timing, alu_family)
        assert not any(e["t"] == "perf.counters" for e in bare.events())
        withperf = TraceRecorder()
        MFSAScheduler(
            diamond_dfg,
            timing,
            alu_family,
            cs=4,
            trace=withperf,
            perf=PerfCounters(),
        ).run()
        snapshots = [
            e for e in withperf.events() if e["t"] == "perf.counters"
        ]
        assert len(snapshots) == 1
        assert snapshots[0]["counters"]["mfsa.candidates_evaluated"] > 0

    def test_tracing_does_not_change_the_schedule(
        self, diamond_dfg, timing, alu_family
    ):
        plain = MFSAScheduler(diamond_dfg, timing, alu_family, cs=4).run()
        trace = TraceRecorder()
        traced = MFSAScheduler(
            diamond_dfg, timing, alu_family, cs=4, trace=trace
        ).run()
        assert traced.schedule.starts == plain.schedule.starts
        assert traced.alu_labels() == plain.alu_labels()


class TestReplay:
    def test_replayed_trajectory_matches_the_live_one(
        self, diamond_dfg, timing, alu_family
    ):
        trace = TraceRecorder()
        result = MFSAScheduler(
            diamond_dfg, timing, alu_family, cs=4, trace=trace
        ).run()
        (run,) = split_runs(trace.events())
        replayed = to_trajectory(run)
        live = result.trajectory
        assert [e.node for e in replayed.events] == [e.node for e in live.events]
        for rep, orig in zip(replayed.events, live.events):
            assert rep.position == orig.position
            assert rep.energy == pytest.approx(orig.energy)
            assert dict(rep.alternatives) == pytest.approx(
                dict(orig.alternatives)
            )

    def test_check_descent_passes_on_real_runs(
        self, diamond_dfg, timing, alu_family
    ):
        trace = traced_mfsa(diamond_dfg, timing, alu_family)
        assert check_descent(trace.events()) == []

    def test_check_descent_flags_a_forged_energy(
        self, diamond_dfg, timing, alu_family
    ):
        trace = traced_mfsa(diamond_dfg, timing, alu_family)
        events = trace.events()
        commit = next(e for e in events if e["t"] == "op.commit")
        commit["e"] += 1000.0  # no longer the argmin of its frame
        violations = check_descent(events)
        assert violations
        assert any(v.code.startswith("liapunov.") for v in violations)

    def test_descent_curve_and_sequences(self, diamond_dfg, timing, alu_family):
        trace = traced_mfsa(diamond_dfg, timing, alu_family)
        (run,) = split_runs(trace.events())
        curve = descent_curve(run)
        assert len(curve) == len(diamond_dfg)
        sequences = node_energy_sequences(run)
        assert set(sequences) == {node.name for node in diamond_dfg}
        for energies in sequences.values():
            assert all(a >= b for a, b in zip(energies, energies[1:]))

    def test_split_runs_separates_two_runs(self, diamond_dfg, timing, alu_family):
        trace = TraceRecorder()
        MFSAScheduler(diamond_dfg, timing, alu_family, cs=4, trace=trace).run()
        MFSAScheduler(diamond_dfg, timing, alu_family, cs=5, trace=trace).run()
        runs = split_runs(trace.events())
        assert len(runs) == 2
        assert runs[0][0]["cs"] == 4
        assert runs[1][0]["cs"] == 5
        assert check_descent(trace.events()) == []


class TestMalformedInput:
    def test_bad_json_raises_trace_error(self):
        with pytest.raises(TraceError):
            parse_jsonl('{"t": "run.start"\n')

    def test_missing_required_field_raises(self):
        header = '{"t":"trace.header","v":1}\n'
        bad = '{"t":"cand.eval","i":0,"node":"n0"}\n'
        with pytest.raises(TraceError):
            parse_jsonl(header + bad)

    def test_future_schema_version_raises(self):
        with pytest.raises(TraceError):
            parse_jsonl('{"t":"trace.header","v":999}\n')

    def test_validate_event_reports_unknown_type(self):
        assert validate_event({"t": "no.such.event", "i": 0}) is not None

    def test_manual_candidate_event_roundtrips(self):
        trace = TraceRecorder()
        trace.run_start("mfs", "manual", 3)
        trace.candidate("n0", "add", 1, 0, 2.5)
        trace.candidates(
            "n0", "add", [(GridPosition("add", 1, 1), 3.5)]
        )
        trace.commit("n0", "add", "add", 1, 0, 2.5, 1)
        trace.run_end(commits=1)
        events = parse_jsonl(trace.to_jsonl())
        assert events == trace.events()
        assert validate_events(events) == []
