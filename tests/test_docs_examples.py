"""Execute every fenced python block in the user-facing docs.

Each documented file gets one cumulative namespace — later snippets may
use names defined by earlier ones, exactly as a reader following the
document top to bottom would.  Snippets run with a temporary working
directory so the ones that write artifacts (trace files, reports, VCDs)
stay self-contained.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

DOCUMENTED = [
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/TUTORIAL.md",
    "docs/TRACING.md",
    "docs/SERVICE.md",
    "docs/ROBUSTNESS.md",
    "docs/PERFORMANCE.md",
    "docs/SCENARIOS.md",
]

_FENCE = re.compile(r"^```python\n(.*?)^```$", re.M | re.S)


def python_blocks(path: Path):
    return _FENCE.findall(path.read_text())


def test_every_documented_file_has_snippets():
    for name in DOCUMENTED:
        assert python_blocks(REPO / name), f"{name} has no python blocks"


@pytest.mark.parametrize("name", DOCUMENTED)
def test_doc_snippets_execute(name, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": f"docs_example_{Path(name).stem}"}
    for index, block in enumerate(python_blocks(REPO / name)):
        try:
            exec(compile(block, f"{name}[snippet {index}]", "exec"), namespace)
        except Exception as error:  # pragma: no cover - diagnostic path
            pytest.fail(
                f"{name} snippet {index} failed: {error!r}\n---\n{block}"
            )


def test_architecture_doc_links_every_doc():
    """docs/ARCHITECTURE.md is the map: it must reference every doc."""
    text = (REPO / "docs/ARCHITECTURE.md").read_text()
    for path in sorted((REPO / "docs").glob("*.md")):
        if path.name == "ARCHITECTURE.md":
            continue
        assert path.name in text, (
            f"docs/{path.name} is not linked from ARCHITECTURE.md"
        )


def test_robustness_doc_lists_every_fault_site():
    """docs/ROBUSTNESS.md documents the full fault-site registry."""
    from repro.resilience.faults import FAULT_SITES

    text = (REPO / "docs/ROBUSTNESS.md").read_text()
    for site in FAULT_SITES:
        assert site in text, f"fault site {site!r} missing from ROBUSTNESS.md"
