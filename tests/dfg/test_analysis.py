"""Tests for ASAP/ALAP/mobility/concurrency analyses."""

import pytest

from repro.dfg.analysis import (
    TimingModel,
    alap_schedule,
    asap_schedule,
    critical_path_length,
    mobilities,
    schedule_makespan,
    type_concurrency,
)
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind, standard_operation_set
from repro.errors import InfeasibleScheduleError, ScheduleError
from repro.bench.suites import hal_diffeq


class TestAsapAlap:
    def test_chain_asap(self, chain_dfg, timing):
        asap = asap_schedule(chain_dfg, timing)
        assert [asap[f"a{i}"] for i in range(4)] == [1, 2, 3, 4]

    def test_chain_alap_at_critical_path(self, chain_dfg, timing):
        alap = alap_schedule(chain_dfg, timing, cs=4)
        assert alap == asap_schedule(chain_dfg, timing)

    def test_chain_alap_with_slack(self, chain_dfg, timing):
        alap = alap_schedule(chain_dfg, timing, cs=6)
        assert [alap[f"a{i}"] for i in range(4)] == [3, 4, 5, 6]

    def test_alap_infeasible_raises(self, chain_dfg, timing):
        with pytest.raises(InfeasibleScheduleError):
            alap_schedule(chain_dfg, timing, cs=3)

    def test_diamond(self, diamond_dfg, timing):
        asap = asap_schedule(diamond_dfg, timing)
        assert asap == {"m1": 1, "m2": 1, "s": 2, "t": 3}
        alap = alap_schedule(diamond_dfg, timing, cs=5)
        assert alap == {"m1": 3, "m2": 3, "s": 4, "t": 5}

    def test_multicycle_shifts_successors(self, diamond_dfg, timing_mul2):
        asap = asap_schedule(diamond_dfg, timing_mul2)
        assert asap == {"m1": 1, "m2": 1, "s": 3, "t": 4}

    def test_multicycle_alap_start_accounts_latency(
        self, diamond_dfg, timing_mul2
    ):
        alap = alap_schedule(diamond_dfg, timing_mul2, cs=4)
        # multiplies occupy 2 steps, so they must start by step 1
        assert alap["m1"] == 1 and alap["m2"] == 1

    def test_hal_critical_path(self, timing):
        assert critical_path_length(hal_diffeq(), timing) == 4

    def test_hal_critical_path_mul2(self, timing_mul2):
        # m1 (2 cycles) -> m4 (2 cycles) -> s1 -> s2
        assert critical_path_length(hal_diffeq(), timing_mul2) == 6

    def test_empty_graph_cp_zero(self, timing):
        from repro.dfg.graph import DFG

        assert critical_path_length(DFG("empty"), timing) == 0


class TestChainingTiming:
    def test_two_ops_chain_in_one_step(self, chain_dfg, timing_chained):
        # 10 ns adds, 20 ns clock: two chained adds per step.
        asap = asap_schedule(chain_dfg, timing_chained)
        assert [asap[f"a{i}"] for i in range(4)] == [1, 1, 2, 2]

    def test_chaining_critical_path_halves(self, chain_dfg, ops, timing_chained):
        plain = TimingModel(ops=ops)
        assert critical_path_length(chain_dfg, plain) == 4
        assert critical_path_length(chain_dfg, timing_chained) == 2

    def test_alap_symmetry_under_chaining(self, chain_dfg, timing_chained):
        alap = alap_schedule(chain_dfg, timing_chained, cs=2)
        assert [alap[f"a{i}"] for i in range(4)] == [1, 1, 2, 2]

    def test_op_longer_than_clock_rejected(self, chain_dfg, ops):
        tight = TimingModel(ops=ops, clock_period_ns=5.0)  # adds take 10 ns
        with pytest.raises(ScheduleError):
            asap_schedule(chain_dfg, tight)

    def test_multicycle_breaks_chain(self, ops_mul2):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        m = b.op(OpKind.MUL, x, y, name="m")
        a = b.op(OpKind.ADD, m, x, name="a")
        b.output("o", a)
        g = b.build()
        chained = TimingModel(ops=ops_mul2, clock_period_ns=100.0)
        asap = asap_schedule(g, chained)
        # the 2-cycle multiply cannot be chained into: add starts at 3
        assert asap == {"m": 1, "a": 3}


class TestMobilityConcurrency:
    def test_mobilities(self, diamond_dfg, timing):
        asap = asap_schedule(diamond_dfg, timing)
        alap = alap_schedule(diamond_dfg, timing, cs=5)
        mob = mobilities(asap, alap)
        assert mob == {"m1": 2, "m2": 2, "s": 2, "t": 2}

    def test_type_concurrency_simple(self, diamond_dfg, timing):
        schedule = asap_schedule(diamond_dfg, timing)
        usage = type_concurrency(diamond_dfg, schedule, timing)
        assert usage == {"mul": 2, "add": 1, "sub": 1}

    def test_type_concurrency_multicycle_overlap(self, timing_mul2):
        b = DFGBuilder()
        x = b.input("x")
        b.op(OpKind.MUL, x, x, name="m1")
        b.op(OpKind.MUL, x, x, name="m2")
        g = b.build()
        # m1 at 1..2, m2 at 2..3: overlap at step 2
        usage = type_concurrency(g, {"m1": 1, "m2": 2}, timing_mul2)
        assert usage["mul"] == 2

    def test_pipelined_kind_counts_start_only(self, timing_mul2):
        b = DFGBuilder()
        x = b.input("x")
        b.op(OpKind.MUL, x, x, name="m1")
        b.op(OpKind.MUL, x, x, name="m2")
        g = b.build()
        usage = type_concurrency(
            g, {"m1": 1, "m2": 2}, timing_mul2, pipelined_kinds=frozenset({"mul"})
        )
        assert usage["mul"] == 1

    def test_mutual_exclusion_shares_units(self, timing):
        b = DFGBuilder()
        x = b.input("x")
        b.then_branch("c")
        b.op(OpKind.MUL, x, x, name="t")
        b.else_branch("c")
        b.op(OpKind.MUL, x, x, name="e")
        b.end_branch("c")
        g = b.build()
        usage = type_concurrency(g, {"t": 1, "e": 1}, timing)
        assert usage["mul"] == 1

    def test_functional_pipelining_folds_steps(self, timing):
        b = DFGBuilder()
        x = b.input("x")
        b.op(OpKind.ADD, x, 1, name="a1")
        b.op(OpKind.ADD, x, 2, name="a2")
        g = b.build()
        # steps 1 and 3 fold together under L=2
        usage = type_concurrency(g, {"a1": 1, "a2": 3}, timing, latency_l=2)
        assert usage["add"] == 2

    def test_makespan(self, diamond_dfg, timing_mul2):
        starts = asap_schedule(diamond_dfg, timing_mul2)
        assert schedule_makespan(diamond_dfg, starts, timing_mul2) == 4
        assert schedule_makespan(diamond_dfg, {}, timing_mul2) == 0
