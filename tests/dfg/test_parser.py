"""Tests for the behavioral-language parser."""

import pytest

from repro.dfg.parser import parse_behavior
from repro.errors import ParseError
from repro.sim.evaluator import evaluate_dfg


class TestBasics:
    def test_single_assignment(self):
        g = parse_behavior("input a b\ny = a + b\noutput y")
        assert g.count_by_kind() == {"add": 1}
        assert set(g.outputs) == {"y"}

    def test_comments_and_blank_lines(self):
        text = """
        # leading comment
        input a b

        y = a * b  # trailing comment
        output y
        """
        assert parse_behavior(text).count_by_kind() == {"mul": 1}

    def test_precedence(self, ops):
        g = parse_behavior("input a b c\ny = a + b * c\noutput y")
        values = evaluate_dfg(g, ops, {"a": 2, "b": 3, "c": 4})
        assert values["y"] == 14

    def test_parentheses(self, ops):
        g = parse_behavior("input a b c\ny = (a + b) * c\noutput y")
        values = evaluate_dfg(g, ops, {"a": 2, "b": 3, "c": 4})
        assert values["y"] == 20

    def test_unary_minus_and_not(self, ops):
        g = parse_behavior("input a\ny = -a\nz = ~a\noutput y z")
        values = evaluate_dfg(g, ops, {"a": 5})
        assert values["y"] == -5
        assert values["z"] == ~5

    def test_all_binary_operators(self, ops):
        text = (
            "input a b\n"
            "s = a + b\nd = a - b\np = a * b\nq = a / b\n"
            "an = a & b\norr = a | b\nx = a ^ b\n"
            "sl = a << 1\nsr = a >> 1\n"
            "lt = a < b\ngt = a > b\neq = a == b\n"
            "output s d p q an orr x sl sr lt gt eq"
        )
        values = evaluate_dfg(parse_behavior(text), ops, {"a": 12, "b": 5})
        assert values["s"] == 17
        assert values["d"] == 7
        assert values["p"] == 60
        assert values["q"] == 2
        assert values["an"] == 12 & 5
        assert values["orr"] == 12 | 5
        assert values["x"] == 12 ^ 5
        assert values["sl"] == 24
        assert values["sr"] == 6
        assert values["lt"] == 0
        assert values["gt"] == 1
        assert values["eq"] == 0

    def test_integer_literals(self, ops):
        g = parse_behavior("input a\ny = 3 * a + 10\noutput y")
        assert evaluate_dfg(g, ops, {"a": 4})["y"] == 22

    def test_chained_definitions(self):
        g = parse_behavior(
            "input a\nt1 = a + 1\nt2 = t1 + 1\nt3 = t2 + 1\noutput t3"
        )
        assert len(g) == 3

    def test_output_of_input(self):
        g = parse_behavior("input a\nd = a + 0\noutput a d")
        assert g.outputs["a"].is_input


class TestBranchStatements:
    def test_branch_then_else(self):
        text = (
            "input a\n"
            "branch c0 then\n"
            "t = a + 1\n"
            "branch c0 else\n"
            "e = a + 2\n"
            "end c0\n"
            "u = a + 3\n"
            "output u"
        )
        g = parse_behavior(text)
        then_node = next(n for n in g if n.operands[1].value == 1)
        else_node = next(n for n in g if n.operands[1].value == 2)
        plain_node = next(n for n in g if n.operands[1].value == 3)
        assert g.mutually_exclusive(then_node.name, else_node.name)
        assert plain_node.branch == ()


class TestErrors:
    def test_unknown_name(self):
        with pytest.raises(ParseError, match="unknown name"):
            parse_behavior("input a\ny = a + ghost\noutput y")

    def test_redefinition_rejected(self):
        with pytest.raises(ParseError, match="already defined"):
            parse_behavior("input a\ny = a + 1\ny = a + 2")

    def test_input_redefinition_rejected(self):
        with pytest.raises(ParseError, match="already defined"):
            parse_behavior("input a a")

    def test_undefined_output(self):
        with pytest.raises(ParseError, match="never defined"):
            parse_behavior("input a\noutput ghost")

    def test_garbage_statement(self):
        with pytest.raises(ParseError):
            parse_behavior("this is not a statement")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_behavior("input a\ny = (a + 1\noutput y")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_behavior("input a\ny = a + 1 a\noutput y")

    def test_bad_branch_statement(self):
        with pytest.raises(ParseError):
            parse_behavior("branch c0 maybe")

    def test_bad_tokens(self):
        with pytest.raises(ParseError):
            parse_behavior("input a\ny = a @ 3\noutput y")

    def test_line_numbers_in_errors(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_behavior("input a\nb = a + 1\nc = ghost + 1")


class TestRoundTrip:
    def test_hal_diffeq_equivalent(self, ops):
        text = (
            "input x dx u y a\n"
            "x1 = x + dx\n"
            "u1 = u - (3 * x) * (u * dx) - (3 * y) * dx\n"
            "y1 = y + u * dx\n"
            "c = x1 < a\n"
            "output x1 u1 y1 c"
        )
        g = parse_behavior(text, name="hal")
        inputs = {"x": 1, "dx": 2, "u": 3, "y": 4, "a": 10}
        values = evaluate_dfg(g, ops, inputs)
        assert values["x1"] == 3
        assert values["u1"] == 3 - (3 * 1) * (3 * 2) - (3 * 4) * 2
        assert values["y1"] == 4 + 3 * 2
        assert values["c"] == 1
