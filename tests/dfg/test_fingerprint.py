"""Property tests for the canonical DFG fingerprint.

The contract (``repro/dfg/fingerprint.py``): isomorphic renamings and
re-insertions of the same graph *collide*; any semantic change — an
operation kind, an edge, a constant, a branch arm, the output map —
*separates*.  Both directions are exercised over the seeded random
generator, plus directed unit cases for each mutation class.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg.fingerprint import (
    canonical_encoding,
    dfg_fingerprint,
    job_fingerprint,
    library_fingerprint,
    params_fingerprint,
)
from repro.dfg.generators import random_conditional_dfg, random_dfg
from repro.dfg.graph import DFG, Port
from repro.library.cells import ALUCell, CellLibrary
from repro.library.ncr import datapath_library
from repro.scenarios.generator import GeneratorSpec
from repro.scenarios.generator import generate_dfg as scenario_generate_dfg


def shuffled_isomorph(dfg: DFG, seed: int, prefix: str = "ren_") -> DFG:
    """Rebuild ``dfg`` with renamed nodes in a random valid insertion order.

    Nodes are inserted whenever all their predecessors already exist,
    picked at random among the ready ones — a uniformly shuffled
    linear extension of the dependency partial order.
    """
    rng = random.Random(seed)
    clone = DFG(dfg.name)
    for input_name in dfg.inputs:
        clone.add_input(input_name)
    renamed = {}
    remaining = list(dfg.node_names())
    while remaining:
        ready = [
            name
            for name in remaining
            if all(p in renamed for p in dfg.predecessors(name))
        ]
        name = rng.choice(ready)
        remaining.remove(name)
        node = dfg.node(name)
        new_name = f"{prefix}{len(renamed)}"
        renamed[name] = new_name
        operands = [
            Port.node(renamed[p.name]) if p.is_node else p
            for p in node.operands
        ]
        clone.add_op(node.kind, operands, name=new_name, branch=node.branch)
    for out_name, port in dfg.outputs.items():
        clone.set_output(
            out_name, Port.node(renamed[port.name]) if port.is_node else port
        )
    return clone


dfg_strategy = st.builds(
    random_dfg,
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=1, max_value=24),
    n_inputs=st.integers(min_value=1, max_value=5),
    locality=st.integers(min_value=1, max_value=10),
)

conditional_dfg_strategy = st.builds(
    random_conditional_dfg,
    seed=st.integers(min_value=0, max_value=10_000),
)


def _scenario_spec(ops, cond, mul_latency, clock, mix_weight):
    """A scenario GeneratorSpec spanning the §5 feature axes."""
    return GeneratorSpec(
        n_ops=ops,
        mix=(("mul", mix_weight), ("add", 1), ("sub", 1)),
        conditions=cond,
        mul_latency=mul_latency,
        clock_ns=clock,
    )


# Specs with conditionals, multi-cycle multipliers and chaining clocks —
# the scenario engine's whole knob surface in one strategy.
scenario_spec_strategy = st.builds(
    _scenario_spec,
    ops=st.integers(min_value=1, max_value=20),
    cond=st.integers(min_value=0, max_value=2),
    mul_latency=st.integers(min_value=1, max_value=3),
    clock=st.one_of(st.none(), st.sampled_from([20.0, 40.0])),
    mix_weight=st.integers(min_value=1, max_value=3),
)

scenario_dfg_strategy = st.builds(
    scenario_generate_dfg,
    spec=scenario_spec_strategy,
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestInvariance:
    @settings(max_examples=60, deadline=None)
    @given(dfg=dfg_strategy, seed=st.integers(min_value=0, max_value=999))
    def test_isomorphic_renaming_collides(self, dfg, seed):
        twin = shuffled_isomorph(dfg, seed)
        assert twin.node_names() != dfg.node_names()
        assert dfg_fingerprint(twin) == dfg_fingerprint(dfg)

    @settings(max_examples=25, deadline=None)
    @given(dfg=conditional_dfg_strategy, seed=st.integers(0, 999))
    def test_branchy_isomorphic_renaming_collides(self, dfg, seed):
        assert dfg_fingerprint(shuffled_isomorph(dfg, seed)) == dfg_fingerprint(dfg)

    def test_builtin_rename_helper_collides(self):
        dfg = random_dfg(seed=7, n_ops=12)
        assert dfg_fingerprint(dfg.renamed("x_")) == dfg_fingerprint(dfg)

    def test_copy_collides(self):
        dfg = random_dfg(seed=9)
        assert dfg_fingerprint(dfg.copy()) == dfg_fingerprint(dfg)

    def test_graph_name_is_not_semantic(self):
        dfg = random_dfg(seed=3)
        assert dfg_fingerprint(dfg.copy(name="other")) == dfg_fingerprint(dfg)

    @settings(max_examples=40, deadline=None)
    @given(dfg=scenario_dfg_strategy, seed=st.integers(0, 999))
    def test_scenario_graphs_isomorphic_renaming_collides(self, dfg, seed):
        """Generator-produced DFGs — conditionals, multi-cycle muls and
        chaining clocks included — obey the same invariance contract."""
        twin = shuffled_isomorph(dfg, seed)
        assert dfg_fingerprint(twin) == dfg_fingerprint(dfg)

    @settings(max_examples=25, deadline=None)
    @given(
        spec=scenario_spec_strategy,
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_scenario_generation_is_reproducible(self, spec, seed):
        assert dfg_fingerprint(
            scenario_generate_dfg(spec, seed)
        ) == dfg_fingerprint(scenario_generate_dfg(spec, seed))


def _diamond() -> DFG:
    """a+b and (a+b)*(a-b) — small, every mutation site reachable."""
    dfg = DFG("diamond")
    a = dfg.add_input("a")
    b = dfg.add_input("b")
    s = dfg.add_op("add", [a, b], name="s")
    d = dfg.add_op("sub", [a, b], name="d")
    p = dfg.add_op("mul", [s, d], name="p")
    dfg.set_output("out", p)
    return dfg


class TestSeparation:
    def test_kind_change_separates(self):
        base, mutated = _diamond(), DFG("diamond")
        a = mutated.add_input("a")
        b = mutated.add_input("b")
        s = mutated.add_op("add", [a, b], name="s")
        d = mutated.add_op("add", [a, b], name="d")  # sub -> add
        mutated.set_output("out", mutated.add_op("mul", [s, d], name="p"))
        assert dfg_fingerprint(base) != dfg_fingerprint(mutated)

    def test_edge_rewire_separates(self):
        base, mutated = _diamond(), DFG("diamond")
        a = mutated.add_input("a")
        b = mutated.add_input("b")
        s = mutated.add_op("add", [a, b], name="s")
        d = mutated.add_op("sub", [a, b], name="d")
        mutated.set_output("out", mutated.add_op("mul", [s, s], name="p"))
        assert dfg_fingerprint(base) != dfg_fingerprint(mutated)

    def test_operand_order_is_semantic(self):
        left, right = DFG("l"), DFG("r")
        for dfg, order in ((left, ("a", "b")), (right, ("b", "a"))):
            a = dfg.add_input("a")
            b = dfg.add_input("b")
            ports = {"a": a, "b": b}
            dfg.set_output(
                "out", dfg.add_op("sub", [ports[order[0]], ports[order[1]]])
            )
        assert dfg_fingerprint(left) != dfg_fingerprint(right)

    def test_constant_change_separates(self):
        def build(value):
            dfg = DFG("c")
            a = dfg.add_input("a")
            dfg.set_output(
                "out", dfg.add_op("add", [a, Port.const(value)])
            )
            return dfg

        assert dfg_fingerprint(build(3)) != dfg_fingerprint(build(4))

    def test_extra_node_separates(self):
        base = _diamond()
        grown = _diamond()
        grown.add_op("add", [Port.node("p"), Port.node("s")], name="extra")
        assert dfg_fingerprint(base) != dfg_fingerprint(grown)

    def test_output_map_separates(self):
        base = _diamond()
        remapped = _diamond()
        remapped.set_output("out", Port.node("s"))
        assert dfg_fingerprint(base) != dfg_fingerprint(remapped)

    def test_branch_arm_separates(self):
        def build(arm):
            dfg = DFG("b")
            a = dfg.add_input("a")
            dfg.set_output(
                "out",
                dfg.add_op("add", [a, a], branch=(("c0", arm),)),
            )
            return dfg

        assert dfg_fingerprint(build(True)) != dfg_fingerprint(build(False))

    def test_input_rename_is_interface_change(self):
        def build(name):
            dfg = DFG("i")
            a = dfg.add_input(name)
            dfg.set_output("out", dfg.add_op("add", [a, a]))
            return dfg

        assert dfg_fingerprint(build("a")) != dfg_fingerprint(build("b"))

    @settings(max_examples=40, deadline=None)
    @given(
        seed_a=st.integers(0, 2_000),
        seed_b=st.integers(0, 2_000),
    )
    def test_distinct_random_graphs_rarely_collide(self, seed_a, seed_b):
        a = random_dfg(seed=seed_a, n_ops=10)
        b = random_dfg(seed=seed_b, n_ops=10)
        if canonical_encoding(a) != canonical_encoding(b):
            assert dfg_fingerprint(a) != dfg_fingerprint(b)
        else:
            assert dfg_fingerprint(a) == dfg_fingerprint(b)


class TestAuxiliaryFingerprints:
    def test_library_fingerprint_stable_and_sensitive(self):
        assert library_fingerprint(datapath_library()) == library_fingerprint(
            datapath_library()
        )
        tweaked = CellLibrary(
            "tweaked",
            [ALUCell("alu_add", frozenset({"add"}), 1234.0)],
            register_area=500.0,
        )
        assert library_fingerprint(tweaked) != library_fingerprint(
            datapath_library()
        )

    def test_params_fingerprint_key_order_free(self):
        assert params_fingerprint({"cs": 6, "style": 1}) == params_fingerprint(
            {"style": 1, "cs": 6}
        )
        assert params_fingerprint({"cs": 6}) != params_fingerprint({"cs": 7})

    def test_job_fingerprint_combines_all_inputs(self):
        dfg = _diamond()
        library = datapath_library()
        base = job_fingerprint(dfg, {"cs": 4}, library)
        assert job_fingerprint(shuffled_isomorph(dfg, 1), {"cs": 4}, library) == base
        assert job_fingerprint(dfg, {"cs": 5}, library) != base
        assert job_fingerprint(dfg, {"cs": 4}, None) != base
