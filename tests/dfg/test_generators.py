"""Tests for the random-DFG generators."""

import os
import subprocess
import sys

import pytest

from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.fingerprint import dfg_fingerprint
from repro.dfg.generators import (
    layered_workload,
    random_conditional_dfg,
    random_dfg,
)

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


class TestRandomDFG:
    def test_deterministic_for_same_seed(self):
        a = random_dfg(seed=42, n_ops=25)
        b = random_dfg(seed=42, n_ops=25)
        assert a.node_names() == b.node_names()
        assert [n.operands for n in a] == [n.operands for n in b]

    def test_different_seeds_differ(self):
        a = random_dfg(seed=1, n_ops=25)
        b = random_dfg(seed=2, n_ops=25)
        assert [n.operands for n in a] != [n.operands for n in b]

    def test_size_parameters(self):
        g = random_dfg(seed=7, n_ops=33, n_inputs=5)
        assert len(g) == 33
        assert len(g.inputs) == 5

    def test_acyclic_and_valid(self, ops):
        for seed in range(10):
            g = random_dfg(seed=seed, n_ops=30)
            g.validate(ops)

    def test_has_outputs(self):
        for seed in range(5):
            assert random_dfg(seed=seed).outputs

    def test_locality_controls_depth(self, timing):
        deep = random_dfg(seed=3, n_ops=40, locality=1)
        wide = random_dfg(seed=3, n_ops=40, locality=40)
        assert critical_path_length(deep, timing) > critical_path_length(
            wide, timing
        )


class TestConditionalGenerator:
    def test_contains_exclusive_pairs(self):
        g = random_conditional_dfg(seed=5, n_ops=16)
        then_ops = [n.name for n in g if n.branch == (("c0", True),)]
        else_ops = [n.name for n in g if n.branch == (("c0", False),)]
        assert then_ops and else_ops
        assert g.mutually_exclusive(then_ops[0], else_ops[0])

    def test_arm_values_never_cross_arms(self):
        for seed in range(10):
            g = random_conditional_dfg(seed=seed, n_ops=24)
            for node in g:
                for pred in node.predecessor_names():
                    pred_branch = g.node(pred).branch
                    assert pred_branch in ((), node.branch)

    def test_valid(self, ops):
        for seed in range(5):
            random_conditional_dfg(seed=seed).validate(ops)


class TestLayeredWorkload:
    def test_shape(self, timing):
        g = layered_workload(seed=1, layers=6, width=4)
        assert len(g) == 24
        assert critical_path_length(g, timing) == 6

    def test_outputs_are_last_layer(self):
        g = layered_workload(seed=1, layers=3, width=2)
        assert len(g.outputs) == 2

    def test_deterministic(self):
        a = layered_workload(seed=9, layers=4, width=3)
        b = layered_workload(seed=9, layers=4, width=3)
        assert [n.operands for n in a] == [n.operands for n in b]


_SNIPPET = """\
import sys
from repro.dfg.fingerprint import dfg_fingerprint
from repro.dfg.generators import (
    layered_workload,
    random_conditional_dfg,
    random_dfg,
)
builders = {
    "random": lambda: random_dfg(seed=42, n_ops=25, kinds={"mul", "add", "sub"}),
    "conditional": lambda: random_conditional_dfg(seed=42, n_ops=24),
    "layered": lambda: layered_workload(seed=42, layers=4, width=3),
}
print(dfg_fingerprint(builders[sys.argv[1]]()))
"""


class TestCrossProcessDeterminism:
    """Same seed → same fingerprint in any interpreter.

    ``kinds`` is passed as a *set* on purpose: the generators must
    normalise unordered collections before drawing from them, or the
    result would depend on ``PYTHONHASHSEED``.
    """

    @pytest.mark.parametrize("family", ["random", "conditional", "layered"])
    def test_fingerprint_stable_across_hash_seeds(self, family):
        fingerprints = set()
        for hash_seed in ("0", "271828"):
            env = dict(
                os.environ,
                PYTHONHASHSEED=hash_seed,
                PYTHONPATH=os.path.join(REPO, "src"),
            )
            out = subprocess.run(
                [sys.executable, "-c", _SNIPPET, family],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            fingerprints.add(out.stdout.strip())
        assert len(fingerprints) == 1

    def test_unordered_kinds_match_sorted_spelling(self):
        a = random_dfg(seed=7, n_ops=20, kinds={"mul", "add", "sub"})
        b = random_dfg(seed=7, n_ops=20, kinds=["add", "mul", "sub", "mul"])
        assert dfg_fingerprint(a) == dfg_fingerprint(b)
