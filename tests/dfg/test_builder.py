"""Tests for the fluent DFG builder."""

import pytest

from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind


class TestOperators:
    def test_arithmetic_operators_create_nodes(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        result = (x + y) * (x - y)
        b.output("r", result)
        g = b.build()
        assert g.count_by_kind() == {"add": 1, "sub": 1, "mul": 1}

    def test_int_operands_become_constants(self):
        b = DFGBuilder()
        x = b.input("x")
        b.output("r", x + 3)
        g = b.build()
        node = g.node(g.node_names()[0])
        assert node.operands[1].is_const
        assert node.operands[1].value == 3

    def test_reverse_operators(self):
        b = DFGBuilder()
        x = b.input("x")
        b.output("r", 3 * x)
        g = b.build()
        node = g.node(g.node_names()[0])
        assert node.kind == "mul"
        assert node.operands[0].is_const

    def test_logic_and_shift_operators(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("r", ((x & y) | (x ^ y)) << 2)
        kinds = b.build().count_by_kind()
        assert kinds == {"and": 1, "or": 1, "xor": 1, "shl": 1}

    def test_comparison_methods(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("lt", x.lt(y))
        b.output("gt", x.gt(y))
        b.output("eq", x.eq(y))
        kinds = b.build().count_by_kind()
        assert kinds == {"lt": 1, "gt": 1, "eq": 1}

    def test_unary_operators(self):
        b = DFGBuilder()
        x = b.input("x")
        b.output("n", -x)
        b.output("i", ~x)
        kinds = b.build().count_by_kind()
        assert kinds == {"neg": 1, "not": 1}

    def test_division(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("q", x / y)
        assert b.build().count_by_kind() == {"div": 1}

    def test_bad_operand_type_rejected(self):
        b = DFGBuilder()
        x = b.input("x")
        with pytest.raises(TypeError):
            b.op(OpKind.ADD, x, "nope")


class TestBranches:
    def test_then_else_tagging(self):
        b = DFGBuilder()
        x = b.input("x")
        b.then_branch("c")
        t = b.op(OpKind.ADD, x, 1, name="t")
        b.else_branch("c")
        e = b.op(OpKind.ADD, x, 2, name="e")
        b.end_branch("c")
        u = b.op(OpKind.ADD, x, 3, name="u")
        b.output("o", u)
        g = b.build()
        assert g.node("t").branch == (("c", True),)
        assert g.node("e").branch == (("c", False),)
        assert g.node("u").branch == ()
        assert g.mutually_exclusive("t", "e")

    def test_nested_branches(self):
        b = DFGBuilder()
        x = b.input("x")
        b.then_branch("c1")
        b.then_branch("c2")
        deep = b.op(OpKind.ADD, x, 1, name="deep")
        b.end_branch("c2")
        b.end_branch("c1")
        b.output("o", deep)
        g = b.build()
        assert g.node("deep").branch == (("c1", True), ("c2", True))


class TestOutputs:
    def test_outputs_keyword_helper(self):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.outputs(s=x + y, d=x - y)
        g = b.build()
        assert set(g.outputs) == {"s", "d"}

    def test_output_of_input(self):
        b = DFGBuilder()
        x = b.input("x")
        dummy = b.op(OpKind.ADD, x, 0, name="d")
        b.output("passthrough", x)
        b.output("d", dummy)
        g = b.build()
        assert g.outputs["passthrough"].is_input

    def test_build_validates(self):
        b = DFGBuilder("empty")
        assert len(b.build()) == 0
