"""Tests for the minimum-initiation-interval search (§5.5.2)."""

import pytest

from repro.dfg.pipeline import minimum_initiation_interval, overlap_report
from repro.errors import ScheduleError
from repro.bench.suites import hal_diffeq


class TestMinimumInitiationInterval:
    def test_unbounded_reaches_l1(self, timing):
        latency, schedule = minimum_initiation_interval(
            hal_diffeq(), timing, cs=6
        )
        assert latency == 1
        schedule.validate()

    def test_resource_bounds_raise_the_floor(self, timing):
        bounds = {"mul": 2, "add": 1, "sub": 1, "lt": 1}
        latency, schedule = minimum_initiation_interval(
            hal_diffeq(), timing, cs=6, resource_bounds=bounds
        )
        # 6 multiplies on 2 units need >= 3 steps per iteration
        assert latency >= 3
        schedule.validate(resource_bounds=bounds)

    def test_schedule_is_actually_folded(self, timing):
        latency, schedule = minimum_initiation_interval(
            hal_diffeq(), timing, cs=6, resource_bounds={
                "mul": 3, "add": 1, "sub": 1, "lt": 1
            }
        )
        report = overlap_report(schedule)
        assert report.latency == latency

    def test_multicycle_kinds_bound_latency(self, timing_mul2):
        latency, _schedule = minimum_initiation_interval(
            hal_diffeq(), timing_mul2, cs=8
        )
        assert latency >= 2  # the 2-cycle multiplier cannot fold tighter

    def test_pipelined_kind_lifts_the_multicycle_floor(self, timing_mul2):
        latency, _schedule = minimum_initiation_interval(
            hal_diffeq(), timing_mul2, cs=8, pipelined_kinds=("mul",)
        )
        assert latency == 1

    def test_impossible_bounds_raise(self, timing):
        with pytest.raises(ScheduleError):
            minimum_initiation_interval(
                hal_diffeq(), timing, cs=4,
                resource_bounds={"mul": 1, "add": 1, "sub": 1, "lt": 1},
            )
