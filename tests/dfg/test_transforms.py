"""Tests for conditional merging, CSE and loop folding."""

import pytest

from repro.dfg.analysis import TimingModel
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind
from repro.dfg.transforms import (
    LoopFolder,
    add_loop_control,
    common_subexpression_elimination,
    merge_conditional_shared_ops,
)
from repro.errors import DFGError
from repro.sim.evaluator import evaluate_dfg


def conditional_with_shared_op():
    b = DFGBuilder("cond")
    x, y = b.inputs("x", "y")
    b.then_branch("c")
    tm = b.op(OpKind.MUL, x, y, name="then_mul")
    ta = b.op(OpKind.ADD, tm, 1, name="then_add")
    b.else_branch("c")
    em = b.op(OpKind.MUL, x, y, name="else_mul")  # identical to then_mul
    ea = b.op(OpKind.ADD, em, 2, name="else_add")
    b.end_branch("c")
    merged = b.op(OpKind.ADD, ta, ea, name="merge")
    b.output("o", merged)
    return b.build()


class TestConditionalMerge:
    def test_shared_op_is_merged(self, ops):
        g = conditional_with_shared_op()
        merged = merge_conditional_shared_ops(g, ops)
        assert len(merged) == len(g) - 1
        assert merged.count_by_kind()["mul"] == 1

    def test_survivor_hoisted_to_common_prefix(self, ops):
        merged = merge_conditional_shared_ops(conditional_with_shared_op(), ops)
        survivor = next(n for n in merged if n.kind == "mul")
        assert survivor.branch == ()

    def test_consumers_rewired(self, ops):
        merged = merge_conditional_shared_ops(conditional_with_shared_op(), ops)
        survivor = next(n for n in merged if n.kind == "mul")
        for name in ("then_add", "else_add"):
            assert merged.predecessors(name) == (survivor.name,)

    def test_semantics_preserved(self, ops):
        g = conditional_with_shared_op()
        merged = merge_conditional_shared_ops(g, ops)
        inputs = {"x": 7, "y": 9}
        assert (
            evaluate_dfg(g, ops, inputs)["o"]
            == evaluate_dfg(merged, ops, inputs)["o"]
        )

    def test_non_exclusive_duplicates_not_merged(self, ops):
        b = DFGBuilder()
        x = b.input("x")
        b.op(OpKind.MUL, x, x, name="m1")
        b.op(OpKind.MUL, x, x, name="m2")
        g = b.build()
        assert len(merge_conditional_shared_ops(g, ops)) == 2

    def test_commutative_match_across_arms(self, ops):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.then_branch("c")
        b.op(OpKind.ADD, x, y, name="t")
        b.else_branch("c")
        b.op(OpKind.ADD, y, x, name="e")  # operands swapped
        b.end_branch("c")
        g = b.build()
        assert len(merge_conditional_shared_ops(g, ops)) == 1

    def test_noncommutative_swap_not_merged(self, ops):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.then_branch("c")
        b.op(OpKind.SUB, x, y, name="t")
        b.else_branch("c")
        b.op(OpKind.SUB, y, x, name="e")
        b.end_branch("c")
        g = b.build()
        assert len(merge_conditional_shared_ops(g, ops)) == 2

    def test_fixpoint_cascades(self, ops):
        # Two levels of identical chains across arms merge completely.
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.then_branch("c")
        tm = b.op(OpKind.MUL, x, y, name="tm")
        b.op(OpKind.ADD, tm, x, name="ta")
        b.else_branch("c")
        em = b.op(OpKind.MUL, x, y, name="em")
        b.op(OpKind.ADD, em, x, name="ea")
        b.end_branch("c")
        g = b.build()
        merged = merge_conditional_shared_ops(g, ops)
        assert len(merged) == 2


class TestCSE:
    def test_duplicate_merged(self, ops):
        b = DFGBuilder()
        u, dx = b.inputs("u", "dx")
        m1 = b.op(OpKind.MUL, u, dx, name="m1")
        m2 = b.op(OpKind.MUL, u, dx, name="m2")
        b.output("a", b.op(OpKind.ADD, m1, m2, name="sum"))
        g = b.build()
        reduced = common_subexpression_elimination(g, ops)
        assert reduced.count_by_kind()["mul"] == 1

    def test_hal_diffeq_loses_one_multiply(self, ops):
        from repro.bench.suites import hal_diffeq

        g = hal_diffeq()
        reduced = common_subexpression_elimination(g, ops)
        assert g.count_by_kind()["mul"] == 6
        assert reduced.count_by_kind()["mul"] == 5  # the two u*dx merge

    def test_semantics_preserved(self, ops):
        from repro.bench.suites import hal_diffeq

        g = hal_diffeq()
        reduced = common_subexpression_elimination(g, ops)
        inputs = {"x": 2, "dx": 3, "u": 5, "y": 7, "a": 11}
        before = evaluate_dfg(g, ops, inputs)
        after = evaluate_dfg(reduced, ops, inputs)
        for out in g.outputs:
            assert before[out] == after[out]

    def test_different_branch_paths_not_merged(self, ops):
        b = DFGBuilder()
        x = b.input("x")
        b.then_branch("c")
        b.op(OpKind.ADD, x, x, name="t")
        b.end_branch("c")
        b.op(OpKind.ADD, x, x, name="u")
        g = b.build()
        assert len(common_subexpression_elimination(g, ops)) == 2

    def test_outputs_follow_survivor(self, ops):
        b = DFGBuilder()
        x = b.input("x")
        m1 = b.op(OpKind.MUL, x, x, name="m1")
        m2 = b.op(OpKind.MUL, x, x, name="m2")
        b.output("a", m1)
        b.output("b", m2)
        g = b.build()
        reduced = common_subexpression_elimination(g, ops)
        assert reduced.outputs["a"] == reduced.outputs["b"]


class TestLoopControl:
    def test_adds_increment_and_compare(self, ops, chain_dfg):
        g = add_loop_control(chain_dfg, counter="i", bound="n")
        counts = g.count_by_kind()
        assert counts["lt"] == 1
        assert counts["add"] == chain_dfg.count_by_kind()["add"] + 1
        assert "i_next" in g.outputs
        assert "i_continue" in g.outputs

    def test_loop_control_semantics(self, ops, chain_dfg):
        g = add_loop_control(chain_dfg)
        values = evaluate_dfg(g, ops, {"x": 0, "loop_i": 3, "loop_n": 10})
        assert values["loop_i_next"] == 4
        assert values["loop_i_continue"] == 1

    def test_does_not_mutate_original(self, chain_dfg):
        before = len(chain_dfg)
        add_loop_control(chain_dfg)
        assert len(chain_dfg) == before


class TestLoopFolder:
    def test_fold_registers_multicycle_spec(self, timing, chain_dfg):
        folder = LoopFolder(timing)
        folded = folder.fold("inner", chain_dfg, local_cs=4)
        assert folded.spec.latency == 4
        assert folded.spec.kind == "loop_inner"
        assert "loop_inner" in folder.extended_ops()

    def test_outer_level_schedules_folded_loop(self, timing, chain_dfg):
        from repro.core.mfs import MFSScheduler

        folder = LoopFolder(timing)
        folder.fold("inner", chain_dfg, local_cs=4)
        outer_ops = folder.extended_ops()

        b = DFGBuilder("outer")
        x, y = b.inputs("x", "y")
        pre = b.op(OpKind.ADD, x, y, name="pre")
        loop = b.op("loop_inner", pre, y, name="the_loop")
        post = b.op(OpKind.ADD, loop, x, name="post")
        b.output("o", post)
        outer = b.build()

        outer_timing = TimingModel(ops=outer_ops)
        result = MFSScheduler(outer, outer_timing, cs=6, mode="time").run()
        schedule = result.schedule
        # the loop occupies 4 consecutive steps between pre and post
        assert schedule.start("the_loop") == schedule.start("pre") + 1
        assert schedule.start("post") == schedule.start("the_loop") + 4

    def test_nested_folding(self, timing, chain_dfg):
        folder = LoopFolder(timing)
        folder.fold("inner", chain_dfg, local_cs=4)
        # middle loop body uses the folded inner loop
        b = DFGBuilder("middle")
        x = b.input("x")
        inner = b.op("loop_inner", x, x, name="inner_call")
        b.output("o", b.op(OpKind.ADD, inner, 1, name="wrap"))
        middle = b.build()
        folded_middle = folder.fold("middle", middle, local_cs=6)
        assert folded_middle.spec.latency == 6

    def test_duplicate_fold_rejected(self, timing, chain_dfg):
        folder = LoopFolder(timing)
        folder.fold("inner", chain_dfg, local_cs=4)
        with pytest.raises(DFGError):
            folder.fold("inner", chain_dfg, local_cs=4)

    def test_unknown_folded_lookup(self, timing):
        with pytest.raises(DFGError):
            LoopFolder(timing).folded("ghost")
