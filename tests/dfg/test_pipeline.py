"""Tests for structural/functional pipelining transforms (§5.5)."""

import pytest

from repro.dfg.analysis import TimingModel, asap_schedule
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind, standard_operation_set
from repro.dfg.pipeline import (
    check_stage_contiguity,
    expand_structural_pipeline,
    overlap_report,
    partition_double,
    stage_kind,
    unfold_two_instances,
)
from repro.errors import ScheduleError
from repro.core.mfs import MFSScheduler
from repro.sim.evaluator import evaluate_dfg
from repro.bench.suites import hal_diffeq


class TestStructuralExpansion:
    def test_stages_replace_multicycle_ops(self, ops_mul2, diamond_dfg):
        expanded, extended = expand_structural_pipeline(
            diamond_dfg, ops_mul2, ("mul",)
        )
        counts = expanded.count_by_kind()
        assert counts[stage_kind("mul", 1)] == 2
        assert counts[stage_kind("mul", 2)] == 2
        assert "mul" not in counts
        assert extended.latency(stage_kind("mul", 1)) == 1

    def test_consumers_read_last_stage(self, ops_mul2, diamond_dfg):
        expanded, _ = expand_structural_pipeline(diamond_dfg, ops_mul2, ("mul",))
        assert set(expanded.predecessors("s")) == {"m1.s2", "m2.s2"}

    def test_outputs_rewired(self, ops_mul2):
        b = DFGBuilder()
        x = b.input("x")
        m = b.op(OpKind.MUL, x, x, name="m")
        b.output("y", m)
        g = b.build()
        expanded, _ = expand_structural_pipeline(g, ops_mul2, ("mul",))
        assert expanded.outputs["y"].name == "m.s2"

    def test_semantics_preserved(self, ops_mul2, diamond_dfg):
        expanded, extended = expand_structural_pipeline(
            diamond_dfg, ops_mul2, ("mul",)
        )
        inputs = {"a": 3, "c": 4, "d": 5, "e": 6}
        before = evaluate_dfg(diamond_dfg, ops_mul2, inputs)
        after = evaluate_dfg(expanded, extended, inputs)
        assert before["y"] == after["y"]

    def test_single_cycle_kind_rejected(self, ops, diamond_dfg):
        with pytest.raises(ScheduleError):
            expand_structural_pipeline(diamond_dfg, ops, ("add",))

    def test_contiguity_checker(self, ops_mul2, diamond_dfg):
        expanded, extended = expand_structural_pipeline(
            diamond_dfg, ops_mul2, ("mul",)
        )
        timing = TimingModel(ops=extended)
        result = MFSScheduler(expanded, timing, cs=4, mode="time").run()
        check_stage_contiguity(result.schedule)

    def test_contiguity_checker_rejects_gap(self, ops_mul2, diamond_dfg):
        expanded, extended = expand_structural_pipeline(
            diamond_dfg, ops_mul2, ("mul",)
        )
        timing = TimingModel(ops=extended)
        result = MFSScheduler(expanded, timing, cs=6, mode="time").run()
        schedule = result.schedule
        # artificially open a gap between the two stages of m1
        schedule.starts["m1.s2"] = schedule.starts["m1.s1"] + 2
        with pytest.raises(ScheduleError):
            check_stage_contiguity(schedule)


class TestNativeStructuralPipelining:
    def test_pipelined_unit_accepts_back_to_back_ops(self, timing_mul2):
        b = DFGBuilder()
        x = b.input("x")
        for index in range(4):
            b.op(OpKind.MUL, x, index, name=f"m{index}")
        g = b.build()
        result = MFSScheduler(
            g, timing_mul2, cs=5, mode="time", pipelined_kinds=("mul",)
        ).run()
        assert result.fu_counts["mul"] == 1

    def test_nonpipelined_needs_more_units(self, timing_mul2):
        b = DFGBuilder()
        x = b.input("x")
        for index in range(4):
            b.op(OpKind.MUL, x, index, name=f"m{index}")
        g = b.build()
        result = MFSScheduler(g, timing_mul2, cs=5, mode="time").run()
        assert result.fu_counts["mul"] >= 2


class TestFunctionalPipelining:
    def test_unfold_two_instances(self, diamond_dfg):
        double = unfold_two_instances(diamond_dfg)
        assert len(double) == 2 * len(diamond_dfg)
        assert "i1_m1" in double and "i2_m1" in double
        assert set(double.outputs) == {
            "i1_y", "i2_y"
        }

    def test_partition_boundary(self, diamond_dfg, timing):
        double = unfold_two_instances(diamond_dfg)
        partition = partition_double(double, timing, cs=4, latency=2)
        assert partition.boundary == 3
        assert set(partition.first) | set(partition.second) == set(
            double.node_names()
        )
        # instance-1 sources are early; instance-2 tail ops are late
        assert "i1_m1" in partition.first
        assert "i2_t" in partition.second

    def test_folded_schedule_resource_sharing(self, timing):
        result = MFSScheduler(
            hal_diffeq(), timing, cs=6, mode="time", latency_l=3
        ).run()
        schedule = result.schedule
        schedule.validate()
        # folded usage must cover steps t and t+L together
        report = overlap_report(schedule)
        assert report.latency == 3
        assert report.max_overlap() >= 2  # two iterations genuinely overlap

    def test_folding_needs_more_fus_than_unfolded(self, timing):
        plain = MFSScheduler(hal_diffeq(), timing, cs=6, mode="time").run()
        folded = MFSScheduler(
            hal_diffeq(), timing, cs=6, mode="time", latency_l=2
        ).run()
        assert sum(folded.fu_counts.values()) >= sum(plain.fu_counts.values())

    def test_overlap_report_requires_folding(self, timing):
        plain = MFSScheduler(hal_diffeq(), timing, cs=6, mode="time").run()
        with pytest.raises(ScheduleError):
            overlap_report(plain.schedule)

    def test_latency_must_cover_multicycle_ops(self, timing_mul2):
        with pytest.raises(ScheduleError):
            MFSScheduler(
                hal_diffeq(), timing_mul2, cs=8, mode="time", latency_l=1
            )

    def test_pipelined_kind_allowed_under_short_latency(self, timing_mul2):
        result = MFSScheduler(
            hal_diffeq(),
            timing_mul2,
            cs=8,
            mode="time",
            latency_l=2,
            pipelined_kinds=("mul",),
        ).run()
        result.schedule.validate()
