"""Tests for operation kinds and operation sets."""

import pytest

from repro.dfg.ops import (
    OP_SYMBOLS,
    OpKind,
    OpSpec,
    OperationSet,
    standard_operation_set,
)
from repro.errors import UnknownOperationError


class TestOpKind:
    def test_kind_compares_to_string(self):
        assert OpKind.ADD == "add"
        assert OpKind.MUL == "mul"

    def test_every_kind_has_a_symbol(self):
        for kind in OpKind:
            assert kind in OP_SYMBOLS

    def test_str_is_value(self):
        assert str(OpKind.SUB) == "sub"


class TestOpSpec:
    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            OpSpec(kind="add", latency=0)

    def test_rejects_bad_arity(self):
        with pytest.raises(ValueError):
            OpSpec(kind="add", arity=3)

    def test_rejects_nonpositive_delay(self):
        with pytest.raises(ValueError):
            OpSpec(kind="add", delay_ns=0.0)

    def test_with_latency_copies_everything_else(self):
        spec = standard_operation_set().spec(OpKind.MUL)
        derived = spec.with_latency(2)
        assert derived.latency == 2
        assert derived.kind == spec.kind
        assert derived.commutative == spec.commutative
        assert derived.evaluate is spec.evaluate

    def test_with_delay(self):
        spec = standard_operation_set().spec(OpKind.ADD)
        assert spec.with_delay(3.5).delay_ns == 3.5


class TestOperationSet:
    def test_contains(self, ops):
        assert "add" in ops
        assert "quux" not in ops

    def test_unknown_kind_raises(self, ops):
        with pytest.raises(UnknownOperationError):
            ops.spec("quux")

    def test_len_and_iter(self, ops):
        assert len(ops) == len(list(ops)) == len(OpKind)

    def test_kinds_order_is_registration_order(self):
        registry = OperationSet()
        registry.register(OpSpec(kind="zz", evaluate=lambda a, b: 0))
        registry.register(OpSpec(kind="aa", evaluate=lambda a, b: 0))
        assert registry.kinds() == ("zz", "aa")

    def test_with_latencies_does_not_mutate_original(self, ops):
        derived = ops.with_latencies({"mul": 2})
        assert derived.latency("mul") == 2
        assert ops.latency("mul") == 1

    def test_with_delays(self, ops):
        derived = ops.with_delays({"add": 99.0})
        assert derived.delay_ns("add") == 99.0
        assert ops.delay_ns("add") != 99.0

    def test_copy_is_independent(self, ops):
        clone = ops.copy()
        clone.register(OpSpec(kind="custom", evaluate=lambda a, b: 7))
        assert "custom" in clone
        assert "custom" not in ops


class TestStandardSet:
    def test_mul_latency_parameter(self):
        assert standard_operation_set(mul_latency=2).latency("mul") == 2
        assert standard_operation_set(mul_latency=2).latency("div") == 2
        assert standard_operation_set(mul_latency=2).latency("add") == 1

    def test_commutativity_flags(self, ops):
        assert ops.spec("add").commutative
        assert ops.spec("mul").commutative
        assert not ops.spec("sub").commutative
        assert not ops.spec("lt").commutative

    def test_unary_arity(self, ops):
        assert ops.spec("not").arity == 1
        assert ops.spec("neg").arity == 1
        assert ops.spec("add").arity == 2

    def test_evaluators(self, ops):
        assert ops.spec("add").evaluate(3, 4) == 7
        assert ops.spec("sub").evaluate(3, 4) == -1
        assert ops.spec("mul").evaluate(3, 4) == 12
        assert ops.spec("lt").evaluate(3, 4) == 1
        assert ops.spec("gt").evaluate(3, 4) == 0
        assert ops.spec("eq").evaluate(4, 4) == 1
        assert ops.spec("and").evaluate(0b1100, 0b1010) == 0b1000
        assert ops.spec("or").evaluate(0b1100, 0b1010) == 0b1110
        assert ops.spec("xor").evaluate(0b1100, 0b1010) == 0b0110
        assert ops.spec("neg").evaluate(5) == -5
        assert ops.spec("min").evaluate(2, 9) == 2
        assert ops.spec("max").evaluate(2, 9) == 9

    def test_division_truncates_toward_zero(self, ops):
        divide = ops.spec("div").evaluate
        assert divide(7, 2) == 3
        assert divide(-7, 2) == -3
        assert divide(7, -2) == -3
        assert divide(0, 5) == 0

    def test_division_by_zero_yields_zero(self, ops):
        assert ops.spec("div").evaluate(5, 0) == 0

    def test_shift_masks_amount(self, ops):
        assert ops.spec("shl").evaluate(1, 33) == 2  # 33 & 31 == 1

    def test_delay_overrides(self):
        custom = standard_operation_set(delays_ns={"add": 1.25})
        assert custom.delay_ns("add") == 1.25
