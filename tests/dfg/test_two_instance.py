"""Tests for the §5.5.2 two-instance functional-pipelining procedure."""

import pytest

from repro.dfg.pipeline import two_instance_schedule
from repro.bench.suites import hal_diffeq, iir_bandpass


class TestTwoInstance:
    def test_double_schedule_is_valid(self, timing):
        result = two_instance_schedule(hal_diffeq(), timing, cs=6, latency=3)
        result.iteration.validate()
        result.double.validate()

    def test_instances_are_identical_modulo_shift(self, timing):
        result = two_instance_schedule(hal_diffeq(), timing, cs=6, latency=3)
        for name, start in result.iteration.starts.items():
            assert result.double.start(f"i1_{name}") == start
            assert result.double.start(f"i2_{name}") == start + 3

    def test_double_budget_is_cs_plus_latency(self, timing):
        result = two_instance_schedule(hal_diffeq(), timing, cs=6, latency=2)
        assert result.double.cs == 8

    def test_overlap_never_exceeds_folded_promise(self, timing):
        from repro.dfg.analysis import type_concurrency

        for latency in (2, 3, 4):
            result = two_instance_schedule(
                hal_diffeq(), timing, cs=6, latency=latency
            )
            folded = result.iteration.fu_usage()
            double_usage = type_concurrency(
                result.double.dfg,
                result.double.starts,
                timing,
            )
            for kind, used in double_usage.items():
                assert used <= folded[kind]

    def test_partition_covers_double(self, timing):
        result = two_instance_schedule(hal_diffeq(), timing, cs=6, latency=3)
        covered = set(result.partition.first) | set(result.partition.second)
        assert covered == set(result.double.dfg.node_names())

    def test_larger_example(self, timing):
        result = two_instance_schedule(iir_bandpass(), timing, cs=9, latency=4)
        result.double.validate()
        assert result.latency == 4
