"""Tests for constant folding, dead-code elimination and tree balancing."""

import pytest

from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind
from repro.dfg.optimize import (
    balance_tree,
    constant_fold,
    eliminate_dead_code,
)
from repro.sim.evaluator import evaluate_dfg


class TestConstantFold:
    def test_constant_chain_collapses(self, ops):
        b = DFGBuilder()
        x = b.input("x")
        c = b.op(OpKind.ADD, 2, 3, name="c1")          # 5
        c2 = b.op(OpKind.MUL, c, 4, name="c2")         # 20
        y = b.op(OpKind.ADD, x, c2, name="y")
        b.output("o", y)
        g = b.build()
        folded = constant_fold(g, ops)
        assert len(folded) == 1
        node = folded.node("y")
        assert node.operands[1].is_const
        assert node.operands[1].value == 20

    def test_semantics_preserved(self, ops):
        b = DFGBuilder()
        x = b.input("x")
        b.output("o", (x + (2 * 3)) - (b.const(10) / 2))
        g = b.build()
        folded = constant_fold(g, ops)
        for value in (0, 7, -3):
            assert (
                evaluate_dfg(g, ops, {"x": value})["o"]
                == evaluate_dfg(folded, ops, {"x": value})["o"]
            )

    def test_constant_outputs_fold(self, ops):
        b = DFGBuilder()
        b.input("x")
        c = b.op(OpKind.MUL, 6, 7, name="answer")
        b.output("o", c)
        g = b.build()
        folded = constant_fold(g, ops)
        assert len(folded) == 0
        assert folded.outputs["o"].is_const
        assert folded.outputs["o"].value == 42

    def test_nothing_to_fold(self, ops, diamond_dfg):
        folded = constant_fold(diamond_dfg, ops)
        assert len(folded) == len(diamond_dfg)


class TestDeadCodeElimination:
    def test_unreachable_ops_removed(self):
        b = DFGBuilder()
        x = b.input("x")
        live = b.op(OpKind.ADD, x, 1, name="live")
        b.op(OpKind.MUL, x, x, name="dead")
        b.op(OpKind.MUL, x, 2, name="dead_parent")
        b.output("o", live)
        g = b.build()
        cleaned = eliminate_dead_code(g)
        assert cleaned.node_names() == ("live",)

    def test_transitively_live_kept(self):
        b = DFGBuilder()
        x = b.input("x")
        a = b.op(OpKind.ADD, x, 1, name="a")
        bb = b.op(OpKind.ADD, a, 1, name="b")
        b.output("o", bb)
        g = b.build()
        cleaned = eliminate_dead_code(g)
        assert set(cleaned.node_names()) == {"a", "b"}

    def test_dead_chain_fully_removed(self):
        b = DFGBuilder()
        x = b.input("x")
        keep = b.op(OpKind.ADD, x, 1, name="keep")
        t = b.op(OpKind.MUL, x, 2, name="d1")
        b.op(OpKind.MUL, t, 3, name="d2")
        b.output("o", keep)
        cleaned = eliminate_dead_code(b.build())
        assert len(cleaned) == 1


class TestBalanceTree:
    def linear_sum(self, n):
        b = DFGBuilder()
        inputs = b.inputs(*(f"x{i}" for i in range(n)))
        acc = inputs[0]
        for index in range(1, n):
            acc = b.op(OpKind.ADD, acc, inputs[index], name=f"s{index}")
        b.output("o", acc)
        return b.build()

    def test_chain_depth_becomes_logarithmic(self, ops, timing):
        g = self.linear_sum(8)
        assert critical_path_length(g, timing) == 7
        balanced = balance_tree(g, ops)
        assert critical_path_length(balanced, timing) == 3

    def test_op_count_unchanged(self, ops):
        g = self.linear_sum(8)
        balanced = balance_tree(g, ops)
        assert len(balanced) == len(g)

    def test_semantics_preserved(self, ops):
        g = self.linear_sum(6)
        balanced = balance_tree(g, ops)
        inputs = {f"x{i}": (i + 1) * 3 for i in range(6)}
        assert (
            evaluate_dfg(g, ops, inputs)["o"]
            == evaluate_dfg(balanced, ops, inputs)["o"]
        )

    def test_noncommutative_chains_untouched(self, ops, timing):
        b = DFGBuilder()
        x = b.input("x")
        acc = x
        for index in range(5):
            acc = b.op(OpKind.SUB, acc, index + 1, name=f"d{index}")
        b.output("o", acc)
        g = b.build()
        balanced = balance_tree(g, ops)
        assert critical_path_length(balanced, timing) == 5

    def test_shared_interior_values_not_reassociated(self, ops):
        b = DFGBuilder()
        x, y, z = b.inputs("x", "y", "z")
        partial = b.op(OpKind.ADD, x, y, name="partial")
        total = b.op(OpKind.ADD, partial, z, name="total")
        b.output("partial", partial)  # second consumer pins it
        b.output("total", total)
        g = b.build()
        balanced = balance_tree(g, ops)
        assert "partial" in balanced
        inputs = {"x": 1, "y": 2, "z": 3}
        assert evaluate_dfg(balanced, ops, inputs)["partial"] == 3

    def test_mixed_kind_boundaries_respected(self, ops):
        b = DFGBuilder()
        w, x, y, z = b.inputs("w", "x", "y", "z")
        s1 = b.op(OpKind.ADD, w, x, name="s1")
        product = b.op(OpKind.MUL, s1, y, name="p")
        s2 = b.op(OpKind.ADD, product, z, name="s2")
        b.output("o", s2)
        g = b.build()
        balanced = balance_tree(g, ops)
        inputs = {"w": 2, "x": 3, "y": 4, "z": 5}
        assert evaluate_dfg(balanced, ops, inputs)["o"] == (2 + 3) * 4 + 5

    def test_branch_context_preserved(self, ops):
        b = DFGBuilder()
        x = b.input("x")
        b.then_branch("c")
        acc = x
        for index in range(4):
            acc = b.op(OpKind.ADD, acc, index, name=f"t{index}")
        b.end_branch("c")
        b.output("o", acc)
        g = b.build()
        balanced = balance_tree(g, ops)
        for node in balanced:
            assert node.branch == (("c", True),)

    def test_enables_tighter_schedules(self, ops, timing):
        from repro.core.mfs import mfs_schedule
        from repro.errors import InfeasibleScheduleError

        g = self.linear_sum(8)
        with pytest.raises(InfeasibleScheduleError):
            mfs_schedule(g, timing, cs=3)
        balanced = balance_tree(g, ops)
        result = mfs_schedule(balanced, timing, cs=3)
        result.schedule.validate()
