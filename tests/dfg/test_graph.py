"""Tests for the DFG container."""

import pytest

from repro.dfg.graph import DFG, Port, branches_mutually_exclusive
from repro.errors import DFGError


def build_small():
    g = DFG("small")
    a = g.add_input("a")
    b = g.add_input("b")
    m = g.add_op("mul", [a, b], name="m")
    s = g.add_op("add", [m, Port.const(1)], name="s")
    g.set_output("y", s)
    return g


class TestPort:
    def test_constructors(self):
        assert Port.node("n").is_node
        assert Port.input("x").is_input
        assert Port.const(3).is_const

    def test_signal_names(self):
        assert Port.node("n").signal_name() == "op:n"
        assert Port.input("x").signal_name() == "in:x"
        assert Port.const(3).signal_name() == "#3"

    def test_ports_are_hashable_values(self):
        assert Port.node("n") == Port.node("n")
        assert len({Port.node("n"), Port.node("n"), Port.input("n")}) == 2


class TestConstruction:
    def test_duplicate_input_rejected(self):
        g = DFG()
        g.add_input("a")
        with pytest.raises(DFGError):
            g.add_input("a")

    def test_duplicate_node_name_rejected(self):
        g = DFG()
        a = g.add_input("a")
        g.add_op("add", [a, a], name="n")
        with pytest.raises(DFGError):
            g.add_op("add", [a, a], name="n")

    def test_unknown_operand_node_rejected(self):
        g = DFG()
        with pytest.raises(DFGError):
            g.add_op("add", [Port.node("ghost"), Port.const(1)])

    def test_undeclared_input_rejected(self):
        g = DFG()
        with pytest.raises(DFGError):
            g.add_op("add", [Port.input("ghost"), Port.const(1)])

    def test_auto_names_are_unique(self):
        g = DFG()
        a = g.add_input("a")
        p1 = g.add_op("add", [a, a])
        p2 = g.add_op("add", [a, a])
        assert p1.name != p2.name

    def test_output_must_reference_known_node(self):
        g = DFG()
        with pytest.raises(DFGError):
            g.set_output("y", Port.node("ghost"))


class TestAccessors:
    def test_len_and_contains(self):
        g = build_small()
        assert len(g) == 2
        assert "m" in g
        assert "zzz" not in g

    def test_unknown_node_raises(self):
        with pytest.raises(DFGError):
            build_small().node("zzz")

    def test_predecessors_successors(self):
        g = build_small()
        assert g.predecessors("s") == ("m",)
        assert g.successors("m") == ("s",)
        assert g.predecessors("m") == ()
        assert g.successors("s") == ()

    def test_predecessors_deduplicated(self):
        g = DFG()
        a = g.add_input("a")
        m = g.add_op("add", [a, a], name="m")
        sq = g.add_op("mul", [m, m], name="sq")
        assert g.predecessors("sq") == ("m",)
        assert g.successors("m") == ("sq",)

    def test_source_and_sink_nodes(self):
        g = build_small()
        assert g.source_nodes() == ("m",)
        assert g.sink_nodes() == ("s",)

    def test_kinds_used_and_counts(self):
        g = build_small()
        assert set(g.kinds_used()) == {"mul", "add"}
        assert g.count_by_kind() == {"mul": 1, "add": 1}

    def test_transitive_closures(self):
        g = build_small()
        assert g.transitive_predecessors("s") == {"m"}
        assert g.transitive_successors("m") == {"s"}
        assert g.transitive_predecessors("m") == set()


class TestTopology:
    def test_topological_order_respects_edges(self):
        g = build_small()
        order = g.topological_order()
        assert order.index("m") < order.index("s")

    def test_validate_checks_arity(self, ops):
        g = DFG()
        a = g.add_input("a")
        g.add_op("not", [a, a], name="bad")  # NOT is unary
        with pytest.raises(DFGError):
            g.validate(ops)

    def test_validate_passes_clean_graph(self, ops):
        build_small().validate(ops)


class TestMutualExclusion:
    def test_complementary_arms_exclusive(self):
        assert branches_mutually_exclusive(
            (("c", True),), (("c", False),)
        )

    def test_same_arm_not_exclusive(self):
        assert not branches_mutually_exclusive(
            (("c", True),), (("c", True),)
        )

    def test_unrelated_conditions_not_exclusive(self):
        assert not branches_mutually_exclusive(
            (("c1", True),), (("c2", False),)
        )

    def test_nested_paths(self):
        inner_then = (("c1", True), ("c2", True))
        inner_else = (("c1", True), ("c2", False))
        other_top = (("c1", False),)
        assert branches_mutually_exclusive(inner_then, inner_else)
        assert branches_mutually_exclusive(inner_then, other_top)

    def test_dfg_level_query(self):
        g = DFG()
        a = g.add_input("a")
        g.add_op("add", [a, a], name="t", branch=(("c", True),))
        g.add_op("add", [a, a], name="e", branch=(("c", False),))
        g.add_op("add", [a, a], name="u")
        assert g.mutually_exclusive("t", "e")
        assert not g.mutually_exclusive("t", "u")
        assert not g.mutually_exclusive("t", "t")


class TestCopyRename:
    def test_copy_is_deep_enough(self):
        g = build_small()
        clone = g.copy()
        clone.add_op("add", [Port.node("m"), Port.const(2)], name="extra")
        assert "extra" in clone
        assert "extra" not in g

    def test_copy_preserves_successors(self):
        clone = build_small().copy()
        assert clone.successors("m") == ("s",)

    def test_renamed_prefixes_everything(self):
        renamed = build_small().renamed("i1_")
        assert "i1_m" in renamed
        assert renamed.predecessors("i1_s") == ("i1_m",)
        assert renamed.outputs["y"] == Port.node("i1_s")

    def test_renamed_keeps_inputs(self):
        renamed = build_small().renamed("i1_")
        assert renamed.inputs == ("a", "b")
