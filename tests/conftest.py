"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dfg.analysis import TimingModel
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind, standard_operation_set
from repro.library.ncr import datapath_library, ncr_like_library


@pytest.fixture
def audit():
    """Audit an MFS/MFSA result with :mod:`repro.check`.

    Returns a callable; call it on any ``MFSResult`` or ``MFSAResult``
    and it raises :class:`~repro.errors.VerificationError` on the first
    invariant breach (returning the passing report otherwise).  Keyword
    arguments are forwarded to the underlying checker
    (``resource_bounds=``, ``differential=``).
    """
    from repro.check import check_mfs_result, check_mfsa_result

    def _audit(result, **kwargs):
        checker = (
            check_mfsa_result if hasattr(result, "datapath") else check_mfs_result
        )
        report = checker(result, **kwargs)
        report.raise_if_failed()
        return report

    return _audit


@pytest.fixture
def ops():
    """Standard 1-cycle operation set."""
    return standard_operation_set()


@pytest.fixture
def ops_mul2():
    """Operation set with a 2-cycle multiplier."""
    return standard_operation_set(mul_latency=2)


@pytest.fixture
def timing(ops):
    """Plain timing model (no chaining)."""
    return TimingModel(ops=ops)


@pytest.fixture
def timing_mul2(ops_mul2):
    """2-cycle-multiplier timing model."""
    return TimingModel(ops=ops_mul2)


@pytest.fixture
def timing_chained(ops):
    """Chaining-enabled timing model with a 20 ns clock."""
    return TimingModel(ops=ops, clock_period_ns=20.0)


@pytest.fixture
def library():
    """The full NCR-like cell library."""
    return ncr_like_library()


@pytest.fixture
def alu_family():
    """The curated multifunction datapath family (Table-2 library)."""
    return datapath_library()


@pytest.fixture
def diamond_dfg():
    """Small diamond: two parallel multiplies feeding an add, then a sub."""
    b = DFGBuilder("diamond")
    a, c, d, e = b.inputs("a", "c", "d", "e")
    m1 = b.op(OpKind.MUL, a, c, name="m1")
    m2 = b.op(OpKind.MUL, d, e, name="m2")
    s = b.op(OpKind.ADD, m1, m2, name="s")
    t = b.op(OpKind.SUB, s, a, name="t")
    b.output("y", t)
    return b.build()


@pytest.fixture
def chain_dfg():
    """Four-operation dependent chain (adds)."""
    b = DFGBuilder("chain")
    x = b.input("x")
    acc = x
    for index in range(4):
        acc = b.op(OpKind.ADD, acc, index + 1, name=f"a{index}")
    b.output("y", acc)
    return b.build()
