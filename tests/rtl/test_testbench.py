"""Tests for the self-checking testbench generator."""

import pytest

from repro.core.mfsa import mfsa_synthesize
from repro.rtl.structural import emit_structural_verilog
from repro.rtl.testbench import _signed_literal, emit_testbench
from repro.bench.suites import hal_diffeq


@pytest.fixture
def datapath(timing, alu_family):
    return mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6).datapath


VECTORS = [
    {"x": 1, "dx": 2, "u": 3, "y": 4, "a": 10},
    {"x": -2, "dx": 1, "u": 0, "y": 5, "a": 3},
]


class TestSignedLiteral:
    def test_positive(self):
        assert _signed_literal(42, 16) == "16'sd42"

    def test_negative(self):
        assert _signed_literal(-7, 16) == "-16'sd7"

    def test_wraps_overflow(self):
        assert _signed_literal(70000, 16) == _signed_literal(70000 - 65536, 16)

    def test_zero(self):
        assert _signed_literal(0, 16) == "16'sd0"


class TestTestbench:
    def test_structure(self, datapath):
        text = emit_testbench(datapath, VECTORS)
        assert text.startswith("`timescale")
        assert "module tb;" in text
        assert text.rstrip().endswith("endmodule")
        assert "datapath_rtl dut (" in text
        assert "$finish;" in text

    def test_one_check_per_output_per_vector(self, datapath):
        text = emit_testbench(datapath, VECTORS)
        outputs = len(datapath.schedule.dfg.outputs)
        assert text.count("check(out_") == outputs * len(VECTORS)

    def test_drives_every_input(self, datapath):
        text = emit_testbench(datapath, VECTORS)
        for name in datapath.schedule.dfg.inputs:
            assert f"{name} = " in text

    def test_expectations_match_executor(self, datapath):
        from repro.sim.executor import execute_datapath

        text = emit_testbench(datapath, VECTORS[:1])
        trace = execute_datapath(datapath, VECTORS[0])
        for out_name, value in trace.outputs.items():
            assert _signed_literal(value, 16) in text

    def test_pairs_with_structural_module(self, datapath):
        module = emit_structural_verilog(datapath, module_name="dp")
        bench = emit_testbench(datapath, VECTORS, module_name="dp")
        assert "module dp (" in module
        assert "dp dut (" in bench
        # every DUT port the testbench drives exists in the module
        for line in bench.splitlines():
            line = line.strip()
            if line.startswith(".") and "(" in line:
                port = line.split("(")[0].lstrip(".")
                assert port in module

    def test_repeat_matches_cs(self, datapath):
        text = emit_testbench(datapath, VECTORS)
        assert f"repeat ({datapath.schedule.cs})" in text
