"""Tests for the structural Verilog emitter and the controller-driven
RTL executor (the control-path correctness oracle)."""

import pytest

from repro.core.mfsa import mfsa_synthesize
from repro.dfg.analysis import critical_path_length
from repro.dfg.generators import random_dfg
from repro.dfg.ops import OpKind
from repro.rtl.controller import build_controller
from repro.rtl.structural import emit_structural_verilog
from repro.sim.rtl_executor import (
    execute_controller,
    verify_controller_equivalence,
)
from repro.bench.suites import chained_addsub, hal_diffeq

HAL_INPUTS = {"x": 2, "dx": 3, "u": 5, "y": 7, "a": 100}


class TestControllerHold:
    def test_multicycle_function_held_over_duration(self, timing_mul2, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing_mul2, alu_family, cs=8)
        controller = build_controller(result.datapath)
        schedule = result.schedule
        for name in ("m1", "m2", "m3", "m4", "m5", "m6"):
            key = result.datapath.binding[name]
            for step in range(schedule.start(name), schedule.end(name) + 1):
                assert controller.state(step).alu_functions[key] == "mul"

    def test_multicycle_selects_held(self, timing_mul2, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing_mul2, alu_family, cs=8)
        controller = build_controller(result.datapath)
        schedule = result.schedule
        for name in ("m1", "m4"):
            key = result.datapath.binding[name]
            instance = result.datapath.instances[key]
            for port, inputs in ((1, instance.mux.l1), (2, instance.mux.l2)):
                if len(inputs) < 2:
                    continue
                selects = {
                    controller.state(step).mux_selects.get(
                        (key[0], key[1], port)
                    )
                    for step in range(
                        schedule.start(name), schedule.end(name) + 1
                    )
                }
                assert len(selects) == 1  # held stable

    def test_register_load_at_real_end(self, timing_mul2, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing_mul2, alu_family, cs=8)
        controller = build_controller(result.datapath)
        schedule = result.schedule
        datapath = result.datapath
        signal = "op:m1"
        if datapath.lifetimes[signal].needs_register:
            register = datapath.registers.assignment[signal]
            end_state = controller.state(schedule.end("m1"))
            assert register in end_state.register_loads


class TestRTLExecutor:
    def test_matches_reference_single_cycle(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        verify_controller_equivalence(result.datapath, HAL_INPUTS)

    def test_matches_reference_multicycle(self, timing_mul2, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing_mul2, alu_family, cs=8)
        verify_controller_equivalence(result.datapath, HAL_INPUTS)

    def test_matches_reference_chained(self, timing_chained, alu_family):
        result = mfsa_synthesize(
            chained_addsub(), timing_chained, alu_family, cs=4
        )
        inputs = {f"i{k}": 2 * k - 5 for k in range(1, 10)}
        verify_controller_equivalence(result.datapath, inputs)

    def test_random_designs(self, timing, alu_family):
        for seed in range(6):
            g = random_dfg(
                seed=seed,
                n_ops=15,
                kinds=(OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.AND),
            )
            cs = critical_path_length(g, timing) + 2
            result = mfsa_synthesize(g, timing, alu_family, cs=cs)
            inputs = {name: (i * 3) % 11 - 4 for i, name in enumerate(g.inputs)}
            verify_controller_equivalence(result.datapath, inputs)

    def test_agrees_with_dataflow_executor(self, timing, alu_family):
        from repro.sim.executor import execute_datapath

        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        rtl = execute_controller(result.datapath, HAL_INPUTS)
        dataflow = execute_datapath(result.datapath, HAL_INPUTS)
        assert rtl.outputs == dataflow.outputs


class TestStructuralEmission:
    def test_module_shape(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        text = emit_structural_verilog(result.datapath, module_name="hal_rtl")
        assert text.startswith("module hal_rtl (")
        assert text.rstrip().endswith("endmodule")

    def test_one_output_wire_per_alu_instance(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        text = emit_structural_verilog(result.datapath)
        declarations = [
            line
            for line in text.splitlines()
            if line.strip().startswith("wire") and line.rstrip().endswith("_out;")
        ]
        assert len(declarations) == len(result.datapath.instances)

    def test_shared_alu_has_function_case(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        text = emit_structural_verilog(result.datapath)
        # the (+-) ALU must select between + and - by state
        mixed = [
            instance
            for instance in result.datapath.instances.values()
            if len({result.schedule.dfg.node(op).kind for op in instance.ops})
            > 1
        ]
        if mixed:
            assert "? " in text  # state-conditional function expressions

    def test_mux_selects_appear(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        text = emit_structural_verilog(result.datapath)
        assert "state ==" in text

    def test_input_register_bypass_at_state_zero(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        text = emit_structural_verilog(result.datapath)
        if any(
            signal.startswith("in:")
            for signal in result.datapath.registers.assignment
        ):
            assert "(state == 0) ?" in text

    def test_emits_for_all_six_examples(self, alu_family):
        from repro.bench.table2 import run_example
        from repro.bench.suites import EXAMPLES

        for spec in EXAMPLES.values():
            result = run_example(spec, style=1, library=alu_family)
            text = emit_structural_verilog(result.datapath)
            assert "endmodule" in text
            assert text.count("always @(posedge clk)") == (
                1 + result.datapath.register_count()
            )
