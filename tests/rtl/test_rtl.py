"""Tests for netlist construction, the FSM controller and Verilog emission."""

import re

import pytest

from repro.core.mfsa import mfsa_synthesize
from repro.rtl.controller import build_controller
from repro.rtl.cost import controller_area, total_area
from repro.rtl.netlist import build_netlist
from repro.rtl.verilog import emit_verilog
from repro.bench.suites import facet_like, hal_diffeq


@pytest.fixture
def hal_datapath(timing, alu_family):
    return mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6).datapath


class TestNetlist:
    def test_component_counts(self, hal_datapath):
        netlist = build_netlist(hal_datapath)
        assert netlist.count("alu") == len(hal_datapath.instances)
        assert netlist.count("reg") == hal_datapath.register_count()
        assert netlist.count("input") == len(hal_datapath.schedule.dfg.inputs)
        assert netlist.count("output") == len(hal_datapath.schedule.dfg.outputs)

    def test_mux_components_match_mux_count(self, hal_datapath):
        netlist = build_netlist(hal_datapath)
        assert netlist.count("mux") == hal_datapath.mux_count()

    def test_constants_materialised(self, hal_datapath):
        netlist = build_netlist(hal_datapath)
        assert netlist.count("const") >= 1  # HAL's literal 3

    def test_validates(self, hal_datapath):
        build_netlist(hal_datapath).validate()

    def test_registers_have_data_drivers(self, hal_datapath):
        netlist = build_netlist(hal_datapath)
        driven = set()
        for net in netlist.nets.values():
            for pin in net.sinks:
                if pin.port == "d":
                    driven.add(pin.component)
        registers = {
            name
            for name, component in netlist.components.items()
            if component.kind == "reg"
        }
        assert registers <= driven

    def test_outputs_connected(self, hal_datapath):
        netlist = build_netlist(hal_datapath)
        sinks = {
            pin.component
            for net in netlist.nets.values()
            for pin in net.sinks
        }
        for name, component in netlist.components.items():
            if component.kind == "output":
                assert name in sinks


class TestController:
    def test_one_state_per_step(self, hal_datapath):
        controller = build_controller(hal_datapath)
        assert controller.n_states == hal_datapath.schedule.cs

    def test_every_op_active_exactly_once(self, hal_datapath):
        controller = build_controller(hal_datapath)
        active = [
            name for state in controller.states for name in state.active_ops
        ]
        assert sorted(active) == sorted(
            hal_datapath.schedule.dfg.node_names()
        )

    def test_register_loads_cover_all_registered_values(self, hal_datapath):
        controller = build_controller(hal_datapath)
        loads = {
            register
            for state in controller.states
            for register in state.register_loads
        }
        expected = {
            hal_datapath.registers.assignment[signal]
            for signal, life in hal_datapath.lifetimes.items()
            if life.needs_register and signal.startswith("op:")
        }
        assert loads == expected

    def test_mux_selects_only_for_real_muxes(self, hal_datapath):
        controller = build_controller(hal_datapath)
        for state in controller.states:
            for (cell, index, port), select in state.mux_selects.items():
                instance = hal_datapath.instances[(cell, index)]
                inputs = instance.mux.l1 if port == 1 else instance.mux.l2
                assert len(inputs) >= 2
                assert 0 <= select < len(inputs)

    def test_alu_function_per_state(self, hal_datapath):
        controller = build_controller(hal_datapath)
        schedule = hal_datapath.schedule
        for state in controller.states:
            for key, kind in state.alu_functions.items():
                ops_here = [
                    name
                    for name in state.active_ops
                    if hal_datapath.binding[name] == key
                ]
                assert any(
                    schedule.dfg.node(name).kind == kind for name in ops_here
                )

    def test_control_bits_positive(self, hal_datapath):
        assert build_controller(hal_datapath).control_bits() > 0

    def test_state_accessor(self, hal_datapath):
        controller = build_controller(hal_datapath)
        assert controller.state(1) is controller.states[0]


class TestVerilog:
    def test_module_structure(self, hal_datapath):
        text = emit_verilog(hal_datapath, module_name="hal")
        assert text.startswith("module hal (")
        assert text.rstrip().endswith("endmodule")
        assert "input  wire clk" in text

    def test_ports_cover_dfg_io(self, hal_datapath):
        text = emit_verilog(hal_datapath)
        for name in hal_datapath.schedule.dfg.inputs:
            assert re.search(rf"input\s+wire.*\b{name}\b", text)
        for name in hal_datapath.schedule.dfg.outputs:
            assert f"out_{name}" in text

    def test_one_wire_per_operation(self, hal_datapath):
        text = emit_verilog(hal_datapath)
        for name in hal_datapath.schedule.dfg.node_names():
            assert f"w_{name}" in text

    def test_register_declarations(self, hal_datapath):
        text = emit_verilog(hal_datapath)
        for register in range(hal_datapath.register_count()):
            assert f"r{register};" in text or f"r{register} " in text

    def test_balanced_begin_end(self, hal_datapath):
        text = emit_verilog(hal_datapath)
        assert text.count("begin") == text.count("end") - text.count("endmodule")

    def test_facet_emits_logic_operators(self, timing, alu_family):
        result = mfsa_synthesize(facet_like(), timing, alu_family, cs=4)
        text = emit_verilog(result.datapath)
        assert "&" in text and "|" in text


class TestAreaReport:
    def test_datapath_only_by_default(self, hal_datapath):
        report = total_area(hal_datapath)
        assert report.controller == 0.0
        assert report.total == pytest.approx(report.datapath)
        assert report.total == pytest.approx(
            hal_datapath.cost_breakdown().total
        )

    def test_controller_estimate_positive(self, hal_datapath):
        report = total_area(hal_datapath, include_controller=True)
        assert report.controller > 0
        assert report.total > report.datapath
        assert report.controller == pytest.approx(controller_area(hal_datapath))
