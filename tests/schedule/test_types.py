"""Tests for the Schedule value object and its validator."""

import pytest

from repro.dfg.analysis import TimingModel
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind
from repro.errors import ScheduleError
from repro.schedule.types import Schedule


def make(dfg, timing, cs, starts, **kw):
    return Schedule(dfg=dfg, timing=timing, cs=cs, starts=starts, **kw)


class TestAccessors:
    def test_start_end_makespan(self, diamond_dfg, timing_mul2):
        s = make(
            diamond_dfg,
            timing_mul2,
            5,
            {"m1": 1, "m2": 2, "s": 4, "t": 5},
        )
        assert s.start("m1") == 1
        assert s.end("m1") == 2  # 2-cycle multiply
        assert s.end("s") == 4
        assert s.makespan() == 5

    def test_steps_of(self, diamond_dfg, timing_mul2):
        s = make(diamond_dfg, timing_mul2, 5, {"m1": 1, "m2": 2, "s": 4, "t": 5})
        assert set(s.steps_of(2)) == {"m1", "m2"}

    def test_copy_independent(self, diamond_dfg, timing):
        s = make(diamond_dfg, timing, 4, {"m1": 1, "m2": 1, "s": 2, "t": 3})
        clone = s.copy()
        clone.starts["m1"] = 2
        assert s.start("m1") == 1

    def test_fu_usage(self, diamond_dfg, timing):
        s = make(diamond_dfg, timing, 3, {"m1": 1, "m2": 1, "s": 2, "t": 3})
        assert s.fu_usage() == {"mul": 2, "add": 1, "sub": 1}


class TestValidation:
    def test_valid_schedule_passes(self, diamond_dfg, timing):
        make(diamond_dfg, timing, 3, {"m1": 1, "m2": 1, "s": 2, "t": 3}).validate()

    def test_missing_node_rejected(self, diamond_dfg, timing):
        with pytest.raises(ScheduleError, match="unscheduled"):
            make(diamond_dfg, timing, 3, {"m1": 1, "m2": 1, "s": 2}).validate()

    def test_unknown_node_rejected(self, diamond_dfg, timing):
        starts = {"m1": 1, "m2": 1, "s": 2, "t": 3, "ghost": 1}
        with pytest.raises(ScheduleError, match="unknown"):
            make(diamond_dfg, timing, 3, starts).validate()

    def test_before_step_one_rejected(self, diamond_dfg, timing):
        with pytest.raises(ScheduleError, match="before step 1"):
            make(diamond_dfg, timing, 3, {"m1": 0, "m2": 1, "s": 2, "t": 3}).validate()

    def test_budget_overflow_rejected(self, diamond_dfg, timing):
        with pytest.raises(ScheduleError, match="budget"):
            make(diamond_dfg, timing, 3, {"m1": 1, "m2": 1, "s": 2, "t": 4}).validate()

    def test_multicycle_budget_overflow(self, diamond_dfg, timing_mul2):
        # m2 (2-cycle) starting at 3 spills past cs=3
        with pytest.raises(ScheduleError, match="budget"):
            make(
                diamond_dfg, timing_mul2, 3, {"m1": 1, "m2": 3, "s": 3, "t": 3}
            ).validate()

    def test_precedence_violation_rejected(self, diamond_dfg, timing):
        with pytest.raises(ScheduleError, match="does not follow"):
            make(diamond_dfg, timing, 3, {"m1": 2, "m2": 1, "s": 2, "t": 3}).validate()

    def test_multicycle_precedence(self, diamond_dfg, timing_mul2):
        # s at step 2 overlaps m1 finishing at step 2
        with pytest.raises(ScheduleError):
            make(
                diamond_dfg, timing_mul2, 5, {"m1": 1, "m2": 1, "s": 2, "t": 5}
            ).validate()

    def test_resource_bounds_checked(self, diamond_dfg, timing):
        s = make(diamond_dfg, timing, 3, {"m1": 1, "m2": 1, "s": 2, "t": 3})
        s.validate(resource_bounds={"mul": 2})
        with pytest.raises(ScheduleError, match="bound"):
            s.validate(resource_bounds={"mul": 1})


class TestChainingValidation:
    def test_chained_pair_in_one_step_accepted(self, chain_dfg, timing_chained):
        s = make(
            chain_dfg, timing_chained, 2, {"a0": 1, "a1": 1, "a2": 2, "a3": 2}
        )
        s.validate()

    def test_same_step_without_chaining_rejected(self, chain_dfg, timing):
        s = make(chain_dfg, timing, 2, {"a0": 1, "a1": 1, "a2": 2, "a3": 2})
        with pytest.raises(ScheduleError):
            s.validate()

    def test_chain_too_long_for_clock_rejected(self, chain_dfg, timing_chained):
        # three 10 ns adds in one 20 ns step
        s = make(
            chain_dfg, timing_chained, 2, {"a0": 1, "a1": 1, "a2": 1, "a3": 2}
        )
        with pytest.raises(ScheduleError, match="clock"):
            s.validate()

    def test_multicycle_cannot_chain(self, timing_mul2, ops_mul2):
        b = DFGBuilder()
        x = b.input("x")
        m = b.op(OpKind.MUL, x, x, name="m")
        a = b.op(OpKind.ADD, m, x, name="a")
        b.output("o", a)
        g = b.build()
        chained = TimingModel(ops=ops_mul2, clock_period_ns=100.0)
        s = make(g, chained, 3, {"m": 1, "a": 2})
        with pytest.raises(ScheduleError):
            s.validate()
