"""Tests for the ASAP/ALAP, list, force-directed and exact schedulers."""

import pytest

from repro.dfg.analysis import critical_path_length
from repro.dfg.generators import random_dfg
from repro.errors import InfeasibleScheduleError
from repro.schedule.asap_alap import schedule_alap, schedule_asap
from repro.schedule.exact import exact_schedule
from repro.schedule.force_directed import force_directed_schedule
from repro.schedule.list_scheduler import (
    list_schedule_resource_constrained,
    list_schedule_time_constrained,
)
from repro.bench.suites import facet_like, hal_diffeq


class TestAsapAlapSchedulers:
    def test_asap_valid(self, diamond_dfg, timing):
        schedule = schedule_asap(diamond_dfg, timing)
        schedule.validate()
        assert schedule.makespan() == 3

    def test_alap_valid(self, diamond_dfg, timing):
        schedule = schedule_alap(diamond_dfg, timing, cs=5)
        schedule.validate()
        assert schedule.start("t") == 5

    def test_alap_defaults_to_critical_path(self, diamond_dfg, timing):
        schedule = schedule_alap(diamond_dfg, timing)
        assert schedule.cs == 3


class TestListScheduler:
    def test_resource_constrained_respects_bounds(self, timing):
        g = hal_diffeq()
        schedule = list_schedule_resource_constrained(g, timing, {"mul": 1})
        schedule.validate(resource_bounds={"mul": 1})

    def test_one_multiplier_serializes(self, timing):
        g = hal_diffeq()
        schedule = list_schedule_resource_constrained(g, timing, {"mul": 1})
        # six multiplies on one unit need at least six steps
        assert schedule.makespan() >= 6

    def test_unbounded_kind_unconstrained(self, timing):
        g = hal_diffeq()
        schedule = list_schedule_resource_constrained(g, timing, {})
        assert schedule.makespan() == critical_path_length(g, timing)

    def test_time_constrained_meets_budget(self, timing):
        g = hal_diffeq()
        for cs in (4, 5, 6, 8):
            schedule = list_schedule_time_constrained(g, timing, cs)
            schedule.validate()
            assert schedule.makespan() <= cs

    def test_time_constrained_infeasible_raises(self, timing):
        with pytest.raises(InfeasibleScheduleError):
            list_schedule_time_constrained(hal_diffeq(), timing, cs=3)

    def test_multicycle_occupancy(self, timing_mul2):
        g = hal_diffeq()
        schedule = list_schedule_resource_constrained(g, timing_mul2, {"mul": 2})
        schedule.validate(resource_bounds={"mul": 2})

    def test_random_graphs_valid(self, timing):
        for seed in range(8):
            g = random_dfg(seed=seed, n_ops=30)
            schedule = list_schedule_resource_constrained(
                g, timing, {kind: 2 for kind in g.kinds_used()}
            )
            schedule.validate(
                resource_bounds={kind: 2 for kind in g.kinds_used()}
            )


class TestForceDirected:
    def test_valid_at_critical_path(self, timing):
        g = hal_diffeq()
        schedule = force_directed_schedule(g, timing, cs=4)
        schedule.validate()

    def test_balances_hal_at_4(self, timing):
        schedule = force_directed_schedule(hal_diffeq(), timing, cs=4)
        assert schedule.fu_usage()["mul"] == 2  # the known optimum

    def test_relaxing_budget_reduces_fus(self, timing):
        tight = force_directed_schedule(hal_diffeq(), timing, cs=4)
        loose = force_directed_schedule(hal_diffeq(), timing, cs=8)
        assert loose.fu_usage()["mul"] <= tight.fu_usage()["mul"]

    def test_infeasible_budget_raises(self, timing):
        with pytest.raises(InfeasibleScheduleError):
            force_directed_schedule(hal_diffeq(), timing, cs=3)

    def test_multicycle(self, timing_mul2):
        schedule = force_directed_schedule(hal_diffeq(), timing_mul2, cs=8)
        schedule.validate()

    def test_random_graphs_valid(self, timing):
        for seed in range(5):
            g = random_dfg(seed=seed, n_ops=20)
            cs = critical_path_length(g, timing) + 2
            force_directed_schedule(g, timing, cs).validate()


class TestExactScheduler:
    def test_optimal_on_facet(self, timing):
        schedule = exact_schedule(facet_like(), timing, cs=4)
        schedule.validate()
        assert schedule.fu_usage()["add"] == 2

    def test_relaxed_facet_needs_one_adder(self, timing):
        schedule = exact_schedule(facet_like(), timing, cs=5)
        assert schedule.fu_usage()["add"] == 1

    def test_weights_steer_objective(self, timing):
        # make multipliers expensive: the optimum must minimise them first
        schedule = exact_schedule(
            hal_diffeq(), timing, cs=6, weights={"mul": 100.0}
        )
        assert schedule.fu_usage()["mul"] == 2

    def test_never_worse_than_asap(self, timing):
        g = hal_diffeq()
        exact = exact_schedule(g, timing, cs=4)
        asap = schedule_asap(g, timing, cs=4)
        assert sum(exact.fu_usage().values()) <= sum(asap.fu_usage().values())

    def test_infeasible_raises(self, timing):
        with pytest.raises(InfeasibleScheduleError):
            exact_schedule(hal_diffeq(), timing, cs=3)

    def test_multicycle(self, timing_mul2):
        schedule = exact_schedule(hal_diffeq(), timing_mul2, cs=7)
        schedule.validate()
