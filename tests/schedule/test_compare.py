"""Tests for schedule diffing."""

import pytest

from repro.core.mfs import mfs_schedule
from repro.errors import ScheduleError
from repro.schedule.asap_alap import schedule_alap, schedule_asap
from repro.schedule.compare import diff_schedules, render_diff
from repro.bench.suites import hal_diffeq


class TestDiff:
    def test_identical_schedules(self, timing):
        a = schedule_asap(hal_diffeq(), timing, cs=6)
        b = schedule_asap(hal_diffeq(), timing, cs=6)
        diff = diff_schedules(a, b)
        assert diff.identical
        assert diff.total_displacement() == 0
        assert render_diff(diff) == "schedules are identical"

    def test_asap_vs_alap(self, timing):
        asap = schedule_asap(hal_diffeq(), timing, cs=6)
        alap = schedule_alap(hal_diffeq(), timing, cs=6)
        diff = diff_schedules(asap, alap)
        assert not diff.identical
        # ALAP never starts anything earlier than ASAP
        assert all(move.delta > 0 for move in diff.moves)

    def test_fu_delta(self, timing):
        tight = mfs_schedule(hal_diffeq(), timing, cs=4).schedule
        loose = mfs_schedule(hal_diffeq(), timing, cs=8).schedule
        diff = diff_schedules(tight, loose)
        assert diff.fu_delta().get("mul") == -1  # 2 multipliers -> 1
        assert diff.makespan_after >= diff.makespan_before

    def test_mismatched_graphs_rejected(self, timing, diamond_dfg):
        a = schedule_asap(hal_diffeq(), timing, cs=6)
        b = schedule_asap(diamond_dfg, timing, cs=6)
        with pytest.raises(ScheduleError):
            diff_schedules(a, b)

    def test_render_lists_moves(self, timing):
        asap = schedule_asap(hal_diffeq(), timing, cs=6)
        alap = schedule_alap(hal_diffeq(), timing, cs=6)
        text = render_diff(diff_schedules(asap, alap))
        assert "operations moved" in text
        assert "->" in text

    def test_deterministic_ordering(self, timing):
        asap = schedule_asap(hal_diffeq(), timing, cs=6)
        alap = schedule_alap(hal_diffeq(), timing, cs=6)
        first = diff_schedules(asap, alap)
        second = diff_schedules(asap, alap)
        assert [m.op for m in first.moves] == [m.op for m in second.moves]

    def test_ablation_usage(self, timing):
        """The intended workflow: quantify what a knob changed."""
        from repro.core.mfsa import mfsa_synthesize
        from repro.library.ncr import datapath_library

        library = datapath_library()
        plain = mfsa_synthesize(hal_diffeq(), timing, library, cs=8)
        eager = mfsa_synthesize(
            hal_diffeq(), timing, library, cs=8, open_policy="eager"
        )
        diff = diff_schedules(plain.schedule, eager.schedule)
        # eager opening pulls operations earlier (or keeps them put)
        assert all(move.delta <= 0 for move in diff.moves)
