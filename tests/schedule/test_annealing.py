"""Tests for the simulated-annealing baseline scheduler."""

import pytest

from repro.errors import InfeasibleScheduleError
from repro.schedule.annealing import annealing_schedule
from repro.bench.suites import facet_like, hal_diffeq


class TestAnnealing:
    def test_produces_valid_schedule(self, timing):
        schedule = annealing_schedule(hal_diffeq(), timing, cs=6, seed=1)
        schedule.validate()
        assert schedule.makespan() <= 6

    def test_deterministic_for_fixed_seed(self, timing):
        a = annealing_schedule(hal_diffeq(), timing, cs=6, seed=7)
        b = annealing_schedule(hal_diffeq(), timing, cs=6, seed=7)
        assert a.starts == b.starts

    def test_seeds_explore_differently(self, timing):
        results = {
            tuple(sorted(annealing_schedule(
                hal_diffeq(), timing, cs=8, seed=seed
            ).starts.items()))
            for seed in range(4)
        }
        assert len(results) > 1

    def test_close_to_mfs_quality(self, timing):
        from repro.core.mfs import mfs_schedule

        mfs = mfs_schedule(hal_diffeq(), timing, cs=6)
        annealed = annealing_schedule(hal_diffeq(), timing, cs=6, seed=3)
        assert (
            sum(annealed.fu_usage().values())
            <= sum(mfs.fu_counts.values()) + 2
        )

    def test_weights_steer_energy(self, timing):
        heavy_mul = annealing_schedule(
            hal_diffeq(), timing, cs=8, seed=2, weights={"mul": 100.0}
        )
        assert heavy_mul.fu_usage()["mul"] <= 2

    def test_infeasible_budget_raises(self, timing):
        with pytest.raises(InfeasibleScheduleError):
            annealing_schedule(hal_diffeq(), timing, cs=3, seed=1)

    def test_multicycle(self, timing_mul2):
        schedule = annealing_schedule(facet_like(), timing_mul2, cs=6, seed=1)
        schedule.validate()

    def test_mfs_is_much_faster_than_annealing(self, timing):
        """The paper's motivation for avoiding annealing."""
        import time

        from repro.core.mfs import MFSScheduler
        from repro.bench.suites import ewf

        g = ewf()

        start = time.perf_counter()
        MFSScheduler(g, timing, cs=16, mode="time").run()
        mfs_time = time.perf_counter() - start

        start = time.perf_counter()
        annealing_schedule(g, timing, cs=16, seed=1)
        sa_time = time.perf_counter() - start

        assert mfs_time * 3 < sa_time
