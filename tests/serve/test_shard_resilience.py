"""Fleet resilience: kill -9 a shard mid-load, failover, drain.

The sharded extension of the PR-5 crash harness
(``tests/serve/test_resilience.py``): the same byte-identity oracle
(``response_text(execute_spec(...))`` — the exact one-shot CLI path) and
the same crash-window trick (a long micro-batch coalescing window keeps
admitted jobs journaled-but-unexecuted), applied to a fleet where the
router must keep answering while one shard dies and replays.
"""

import os
import re
import signal
import subprocess
import sys
import time
from contextlib import contextmanager

import pytest

from repro.serve import Client, RouterConfig, ShardRouter
from repro.serve.jobs import execute_spec, normalize_spec, response_text

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _source(constant: int) -> str:
    return f"input a b\ns = a - b\nx = s * {constant}\noutput x\n"


def _expected_text(algorithm, body):
    payload, _perf = execute_spec(normalize_spec(algorithm, body))
    return response_text(payload)


@contextmanager
def fleet(**overrides):
    overrides.setdefault("shards", 2)
    overrides.setdefault("shard_args", ("--serial",))
    router = ShardRouter(RouterConfig(port=0, **overrides))
    with router.start_in_thread() as handle:
        yield router, Client(handle.url, timeout=120.0)


class TestShardCrashReplay:
    def test_kill9_one_shard_mid_load_replays_byte_identically(self, tmp_path):
        """The acceptance scenario: SIGKILL one shard with admitted jobs
        in its crash window; the supervisor respawns it on the same
        state dir and every admitted job finishes under its original id
        with byte-identical bytes, while the other shard keeps serving.
        """
        with fleet(
            state_dir=str(tmp_path),
            # Hold admitted jobs in the batcher so the SIGKILL lands
            # inside the crash window (journaled, not yet executed).
            shard_args=("--serial", "--batch-wait-ms", "2000",
                        "--max-batch", "64"),
        ) as (router, client):
            pending = []
            for constant in range(20, 30):
                source = _source(constant)
                out = client.schedule(source=source, wait=False,
                                      name=f"crash{constant}")
                assert out["job"]["status"] in ("queued", "running")
                pending.append((out["job"]["id"], out["job"]["shard"], source,
                                f"crash{constant}"))

            by_shard = {s: [p for p in pending if p[1] == s]
                        for s in router.shards}
            victim = max(by_shard, key=lambda s: len(by_shard[s]))
            assert by_shard[victim], "no job landed on the victim shard"

            killed_pid = router.shards[victim].process.pid
            os.kill(killed_pid, signal.SIGKILL)

            # The health loop notices the death and respawns on the
            # same state dir; journal replay runs before its listener.
            deadline = time.monotonic() + 60
            shard = router.shards[victim]
            while time.monotonic() < deadline:
                if shard.restarts >= 1 and shard.healthy:
                    break
                time.sleep(0.05)
            assert shard.restarts >= 1 and shard.healthy
            assert shard.process.pid != killed_pid

            for job_id, _shard, source, name in pending:
                info = client.wait_for(job_id, timeout=120)
                assert info["job"]["status"] == "done"
                raw = client.result_text(job_id)
                assert raw == _expected_text(
                    "mfs", {"source": source, "name": name}
                )

            metrics = client.metrics_text()
            assert re.search(
                r'repro_serve_recovered_jobs_total\{shard="%s",kind="pending"\} \d+'
                % victim,
                metrics,
            ), metrics

    def test_router_forward_fault_site_drives_failover(self):
        """An injected ``router.forward`` fault (repro.resilience) makes
        the first forwarding attempt fail; the request is re-routed and
        still answered correctly."""
        with fleet(faults="router.forward:n=1") as (router, client):
            source = _source(404)
            out = client.schedule(source=source, name="chaos")
            assert out["job"]["status"] == "done"
            assert client.result_text(out["job"]["id"]) == _expected_text(
                "mfs", {"source": source, "name": "chaos"}
            )
            assert router.fault_plan.fired("router.forward") == 1
            errors = sum(
                router.metrics.counter_value(
                    "router_forward_errors", target=name
                )
                for name in router.shards
            )
            assert errors >= 1


class TestFleetDrain:
    def test_sigterm_drains_the_whole_fleet_and_exits_zero(self, tmp_path):
        """End-to-end CLI: ``serve --shards 2`` + SIGTERM = graceful
        fleet drain (every shard compacts its journal) and exit 0."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--shards", "2", "--serial", "--state-dir", str(tmp_path),
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
            cwd=REPO,
        )
        url = None
        try:
            for _ in range(10):
                line = process.stderr.readline()
                match = re.search(r"serving on (http://\S+)", line)
                if match:
                    url = match.group(1)
                    break
            assert url, "router never announced its URL"
            client = Client(url, timeout=120.0)
            source = _source(55)
            out = client.schedule(source=source, name="drain")
            assert out["job"]["status"] == "done"

            process.send_signal(signal.SIGTERM)
            rc = process.wait(timeout=120)
            tail = process.stderr.read()
            assert rc == 0
            assert "drained and stopped" in tail
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait(timeout=30)

        # The drain compacted each shard's journal in place.
        for index in range(2):
            journal = tmp_path / f"shard-{index}" / "jobs.journal.jsonl"
            assert journal.exists()
