"""Elastic-fleet acceptance: online reshard, replicated L2, supervision.

The three robustness claims this PR makes about the shard router:

* **zero-downtime reshard** — ``POST /admin/shards`` grows or drains
  the fleet at runtime, and the warm cache handoff runs *before* the
  ring flips, so repeat submissions stay cache hits across the resize;
* **replicated results** — every fresh result lands on its owner *and*
  a ring successor, so ``kill -9`` on a shard no longer costs the fleet
  its hottest entries (forward-to-replica and read-path probe both
  covered);
* **crash-loop-safe supervision** — respawns back off with monotone
  (equal-jitter) gaps, and a shard that keeps dying is demoted while
  the rest of the fleet keeps serving.

The CI chaos-smoke job runs this file as the reshard-under-load drill.
"""

import os
import signal
import time
from contextlib import contextmanager

import pytest

from repro.scenarios.replay import parse_arrival_spec, run_replay
from repro.serve import Client, RouterConfig, ShardRouter
from repro.serve.client import ServiceError
from repro.serve.jobs import execute_spec, normalize_spec, response_text


def _source(constant: int) -> str:
    return f"input a b\ns = a + b\nx = s * {constant}\noutput x\n"


def _expected_text(source: str, name: str) -> str:
    payload, _perf = execute_spec(
        normalize_spec("mfs", {"source": source, "name": name})
    )
    return response_text(payload)


@contextmanager
def fleet(**overrides):
    overrides.setdefault("shards", 2)
    overrides.setdefault("shard_args", ("--serial",))
    router = ShardRouter(RouterConfig(port=0, **overrides))
    with router.start_in_thread() as handle:
        yield router, Client(handle.url, timeout=120.0)


def _wait_until(predicate, timeout=60.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            return False
        time.sleep(poll)
    return True


def _warm(client, count, prefix="warm"):
    """Submit ``count`` distinct designs; return their (source, name)s."""
    designs = []
    for constant in range(count):
        source = _source(constant + 3)
        name = f"{prefix}{constant}"
        out = client.schedule(source=source, name=name)
        assert out["job"]["status"] == "done"
        designs.append((source, name))
    return designs


class TestOnlineReshard:
    def test_add_shard_keeps_repeat_submissions_hits(self):
        """Scale-out acceptance: grow 2 → 3 under a tiny router L2, and
        every previously computed design is still answered as a cache
        hit — the relocated entries must have been warm-handed to the
        new shard's L1 *before* the ring flipped (``replication=1``
        keeps replica writes from masking a broken handoff)."""
        with fleet(cache_entries=1, replication=1) as (router, client):
            designs = _warm(client, 12)

            out = client.admin_add_shard()
            assert out["action"] == "add"
            assert out["shard"] == "shard-2"
            assert sorted(out["ring"]) == ["shard-0", "shard-1", "shard-2"]
            # Placement is deterministic (sha256), so with 12 designs a
            # 2→3 resize always relocates some keys.
            assert out["handoff_entries"] >= 1

            assert sorted(router.ring.nodes) == [
                "shard-0", "shard-1", "shard-2",
            ]
            assert _wait_until(lambda: router.shards["shard-2"].healthy)

            for source, name in designs:
                again = client.schedule(source=source, name=name)
                assert again["job"]["status"] == "done"
                assert again["job"]["cache"] == "hit", (source, again["job"])
                raw = client.result_text(again["job"]["id"])
                assert raw == _expected_text(source, name)

            status = client.admin_status()
            assert status["shards"]["shard-2"]["status"] == "ok"
            assert router.metrics.counter_value("reshards", action="add") == 1

    def test_remove_shard_drains_hands_off_and_exits(self, tmp_path):
        """Scale-in acceptance: the drained shard's entries survive the
        removal (handoff + L2 absorb) and its process exits cleanly
        after compacting its journal."""
        with fleet(
            cache_entries=64, replication=1, state_dir=str(tmp_path)
        ) as (router, client):
            designs = _warm(client, 8)
            victim_process = router.shards["shard-0"].process

            out = client.admin_remove_shard("shard-0")
            assert out["action"] == "remove"
            assert out["ring"] == ["shard-1"]
            assert "shard-0" not in router.shards
            assert router.ring.nodes == ("shard-1",)
            assert _wait_until(lambda: victim_process.poll() is not None)
            assert victim_process.returncode == 0  # graceful drain, not kill

            for source, name in designs:
                again = client.schedule(source=source, name=name)
                assert again["job"]["status"] == "done"
                assert again["job"]["cache"] == "hit", (source, again["job"])
                assert client.result_text(
                    again["job"]["id"]
                ) == _expected_text(source, name)

            # The drain compacted the removed shard's journal in place.
            assert (tmp_path / "shard-0" / "jobs.journal.jsonl").exists()
            # Its backoff gauge left the exposition with it.
            assert 'shard_respawn_backoff_seconds{target="shard-0"}' not in (
                router.metrics.render()
            )

    def test_remove_validation_and_status(self):
        with fleet(shards=1) as (router, client):
            with pytest.raises(ServiceError) as err:
                client.admin_remove_shard("shard-9")
            assert err.value.status == 400
            with pytest.raises(ServiceError) as err:
                client.admin_remove_shard("shard-0")  # last ring member
            assert err.value.status == 400
            status = client.admin_status()
            assert status["ring"] == ["shard-0"]
            assert status["replication"] == 2
            assert status["shards"]["shard-0"]["status"] == "ok"


class TestReplicatedCache:
    def test_replica_serves_after_owner_sigkill(self):
        """Kill -9 the shard that computed a result (no respawn): the
        repeat submission is still a cache *hit*, served from the ring
        successor's L1 — which only holds the entry because the router
        replicated the write."""
        with fleet(cache_entries=1, replication=2, respawn=False) as (
            router,
            client,
        ):
            source, name = _source(77), "replica"
            first = client.schedule(source=source, name=name)
            assert first["job"]["status"] == "done"
            owner = first["job"]["shard"]
            assert owner in router.shards
            survivor = next(n for n in router.shards if n != owner)
            # Replica writes flush off-path in batches; wait to land.
            assert _wait_until(
                lambda: router.metrics.counter_value(
                    "replica_puts", target=survivor
                )
                == 1,
                timeout=10,
            )

            # Push the entry out of the router's 1-slot L2, then kill
            # the owner: the only warm copy left is the replica.
            client.schedule(source=_source(78), name="evict")
            os.kill(router.shards[owner].process.pid, signal.SIGKILL)
            assert _wait_until(
                lambda: not router.shards[owner].alive, timeout=10
            )

            again = client.schedule(source=source, name=name)
            assert again["job"]["status"] == "done"
            assert again["job"]["cache"] == "hit", again["job"]
            assert again["job"]["shard"] == survivor
            assert client.result_text(again["job"]["id"]) == _expected_text(
                source, name
            )

    def test_replica_probe_read_repairs_a_cold_respawned_owner(self):
        """The read-path probe: the owner comes back from SIGKILL with a
        cold L1 (no state dir), so on the L2 miss the router asks the
        *other* replica holder, answers from its copy, and read-repairs
        both tiers."""
        with fleet(
            cache_entries=1,
            replication=2,
            respawn_base_s=0.05,
            respawn_cap_s=0.2,
            crash_loop_threshold=10,
        ) as (router, client):
            source, name = _source(91), "probe"
            first = client.schedule(source=source, name=name)
            owner = first["job"]["shard"]
            client.schedule(source=_source(92), name="evict")  # flush L2
            # Both results' async replica writes must land before the kill.
            assert _wait_until(
                lambda: sum(
                    router.metrics.counter_value("replica_puts", target=n)
                    for n in router.shards
                )
                == 2,
                timeout=10,
            )

            shard = router.shards[owner]
            os.kill(shard.process.pid, signal.SIGKILL)
            assert _wait_until(
                lambda: shard.restarts >= 1 and shard.healthy
            ), "owner never respawned"

            again = client.schedule(source=source, name=name)
            assert again["job"]["status"] == "done"
            assert again["job"]["cache"] == "hit", again["job"]
            # Served by the router itself, off the replica's answer.
            assert again["job"]["shard"] == "router"
            assert client.result_text(again["job"]["id"]) == _expected_text(
                source, name
            )
            probe_hits = sum(
                router.metrics.counter_value("replica_probe_hits", target=n)
                for n in router.shards
            )
            assert probe_hits == 1


class TestSupervision:
    def test_respawn_gaps_grow_monotonically(self):
        """The crash-loop regression: kill one shard three times and the
        scheduled respawn delays must strictly increase — the equal-
        jitter backoff guarantee that replaced respawn-immediately."""
        with fleet(
            shards=1,
            respawn_base_s=0.05,
            respawn_cap_s=5.0,
            crash_loop_window_s=3600.0,  # every death counts as rapid
            crash_loop_threshold=10,
        ) as (router, client):
            shard = router.shards["shard-0"]
            for round_number in range(1, 4):
                os.kill(shard.process.pid, signal.SIGKILL)
                assert _wait_until(
                    lambda: shard.restarts >= round_number and shard.healthy
                ), f"no respawn after kill #{round_number}"

            gaps = list(shard.respawn_gaps)
            assert len(gaps) == 3
            assert all(a < b for a, b in zip(gaps, gaps[1:])), gaps
            # Equal jitter keeps each delay in [ceiling/2, ceiling].
            for attempt, gap in enumerate(gaps):
                ceiling = min(5.0, 0.05 * 2.0**attempt)
                assert ceiling / 2.0 <= gap <= ceiling
            exposition = router.metrics.render()
            assert 'shard_respawn_backoff_seconds{target="shard-0"}' in (
                exposition
            )
            # The fleet still serves after the respawn storm.
            out = client.schedule(source=_source(12), name="after")
            assert out["job"]["status"] == "done"

    def test_crash_loop_demotes_the_shard_and_fleet_keeps_serving(self):
        with fleet(
            shards=2,
            respawn_base_s=0.01,
            respawn_cap_s=0.05,
            crash_loop_window_s=3600.0,
            crash_loop_threshold=3,
        ) as (router, client):
            shard = router.shards["shard-0"]
            deadline = time.monotonic() + 60
            while not shard.demoted and time.monotonic() < deadline:
                if shard.alive:
                    os.kill(shard.process.pid, signal.SIGKILL)
                time.sleep(0.02)
            assert shard.demoted
            assert shard.rapid_deaths >= 3
            assert router.ring.nodes == ("shard-1",)
            assert (
                router.metrics.counter_value("shard_demoted", target="shard-0")
                == 1
            )
            status = client.admin_status()
            assert status["shards"]["shard-0"]["status"] == "demoted"
            assert status["ring"] == ["shard-1"]
            # The ring routes around the demoted shard.
            out = client.schedule(source=_source(31), name="around")
            assert out["job"]["status"] == "done"
            assert out["job"]["shard"] in ("shard-1", "router")


class TestReshardUnderLoad:
    def test_drill_open_loop_add_and_kill_mid_replay(self):
        """The CI drill: replay seeded traffic open-loop against a
        2-shard fleet, add a third shard a third of the way in, SIGKILL
        a shard at two thirds — zero failed jobs, and every fingerprint
        byte-identical to an unsharded closed-loop run of the same
        traffic."""
        pattern = parse_arrival_spec("poisson:n=18:rate=500")
        kwargs = dict(seed=7, generator="random:ops=8", distinct_designs=6)
        reference = run_replay(pattern, **kwargs)
        assert reference.errors == 0

        def add_shard(service):
            out = Client(service.url, timeout=120.0).admin_add_shard()
            assert out["action"] == "add"

        def kill_one(service):
            victim = sorted(service.shards)[0]
            os.kill(service.shards[victim].process.pid, signal.SIGKILL)

        report = run_replay(
            pattern,
            shards=2,
            open_loop=True,
            max_in_flight=4,
            actions={6: add_shard, 12: kill_one},
            **kwargs,
        )
        assert report.mode == "open"
        assert report.jobs == 18
        assert report.errors == 0, [
            o for o in report.outcomes if o["status"] == "error"
        ]
        drill = [o.get("fingerprint") for o in report.outcomes]
        serial = [o.get("fingerprint") for o in reference.outcomes]
        assert drill == serial
