"""Shard-router tests: routing, shared cache, failover, fleet metrics.

Each test drives a real fleet — a :class:`~repro.serve.router.
ShardRouter` on its own event-loop thread supervising worker-shard
*subprocesses* — through the unchanged public API via
:class:`~repro.serve.client.Client`, the same embedded harness the
single-process service tests use.

The byte-identity oracle is the one the whole serve tier is built on:
``execute_spec`` runs the exact scheduler path of the one-shot CLI, so
``response_text(execute_spec(spec)[0])`` is the reference bytes every
served result — cold, cached, failed-over — must equal.
"""

import os
import signal
import time
from contextlib import contextmanager

import pytest

from repro.serve import Client, RouterConfig, ShardRouter
from repro.serve.client import ServiceError
from repro.serve.hashring import HashRing
from repro.serve.jobs import execute_spec, normalize_spec, response_text
from repro.dfg.fingerprint import dfg_fingerprint
from repro.io.jsonio import dfg_from_json

SRC = """input a b c d
t1 = a + b
t2 = t1 * c
x = t2 - d
output x
"""


def _source(constant: int) -> str:
    """A family of distinct designs (distinct DFG fingerprints)."""
    return f"input a b\ns = a - b\nx = s * {constant}\noutput x\n"


def _expected_text(algorithm: str, body: dict) -> str:
    payload, _perf = execute_spec(normalize_spec(algorithm, body))
    return response_text(payload)


def _owner(algorithm: str, body: dict, shards: int = 2) -> str:
    spec = normalize_spec(algorithm, body)
    ring = HashRing(f"shard-{i}" for i in range(shards))
    return ring.node_for(dfg_fingerprint(dfg_from_json(spec["dfg_json"])))


def _source_owned_by(shard: str, start: int = 1) -> str:
    for constant in range(start, start + 200):
        source = _source(constant)
        if _owner("mfs", {"source": source}) == shard:
            return source
    raise AssertionError(f"no design found owned by {shard}")  # pragma: no cover


@contextmanager
def fleet(**overrides):
    overrides.setdefault("shards", 2)
    overrides.setdefault("shard_args", ("--serial",))
    router = ShardRouter(RouterConfig(port=0, **overrides))
    with router.start_in_thread() as handle:
        yield router, Client(handle.url, timeout=120.0)


@pytest.fixture(scope="module")
def shared_fleet():
    with fleet() as pair:
        yield pair


class TestRouting:
    def test_two_shard_smoke(self, shared_fleet):
        router, client = shared_fleet
        out = client.schedule(source=SRC, name="smoke")
        job = out["job"]
        assert job["status"] == "done"
        assert job["shard"] in router.shards
        assert client.result_text(job["id"]) == _expected_text(
            "mfs", {"source": SRC, "name": "smoke"}
        )

    def test_jobs_land_on_their_ring_owner(self, shared_fleet):
        _router, client = shared_fleet
        for constant in range(10, 16):
            source = _source(constant)
            out = client.schedule(source=source, name=f"own{constant}")
            assert out["job"]["shard"] == _owner(
                "mfs", {"source": source, "name": f"own{constant}"}
            )

    def test_repeat_submission_hits_the_shared_cache(self, shared_fleet):
        _router, client = shared_fleet
        body = {"source": _source(997), "name": "repeat"}
        first = client.schedule(**{"source": body["source"], "name": "repeat"})
        again = client.schedule(**{"source": body["source"], "name": "repeat"})
        assert again["job"]["cache"] == "hit"
        assert again["job"]["shard"] == "router"
        assert again["result"] == first["result"]
        # The fabricated router job answers the poll API like any other.
        polled = client.job(again["job"]["id"])
        assert polled["job"]["status"] == "done"
        assert client.result_text(again["job"]["id"]) == _expected_text(
            "mfs", body
        )

    def test_router_validates_at_the_edge(self, shared_fleet):
        _router, client = shared_fleet
        with pytest.raises(ServiceError) as excinfo:
            client.schedule(source="output x\n", name="bad")
        assert excinfo.value.status == 400

    def test_unknown_job_is_404_fleetwide(self, shared_fleet):
        _router, client = shared_fleet
        with pytest.raises(ServiceError) as excinfo:
            client.job("j99999-deadbeef")
        assert excinfo.value.status == 404


class TestFleetHealthAndMetrics:
    def test_healthz_aggregates_every_shard(self, shared_fleet):
        router, client = shared_fleet
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "router"
        assert health["healthy_shards"] == 2
        assert set(health["shards"]) == set(router.shards)
        for info in health["shards"].values():
            assert info["status"] == "ok"
            assert info["health"]["status"] in ("ok", "draining")

    def test_metrics_carry_shard_labels(self, shared_fleet):
        _router, client = shared_fleet
        client.schedule(source=_source(51), name="metrics")
        text = client.metrics_text()
        samples = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert any('shard="router"' in line for line in samples)
        assert any('shard="shard-0"' in line for line in samples)
        assert any('shard="shard-1"' in line for line in samples)
        # Every sample is attributed; labels are never duplicated.
        for line in samples:
            if line:
                assert line.count('shard="') == 1, line
        # HELP/TYPE headers are deduplicated across the merged scrapes.
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE ")
        ]
        assert len(type_lines) == len(set(type_lines))


class TestCrossShardCache:
    def test_hit_survives_owner_shard_death_byte_identically(self):
        """A result cached by one shard serves requests for another.

        The acceptance scenario: compute on the owner shard, kill -9
        the owner, resubmit.  Consistent hashing would re-route the
        request to the surviving shard — which never computed it — but
        the router's shared L2 answers as a cache hit, byte-identical
        to the one-shot CLI.
        """
        with fleet(respawn=False) as (router, client):
            source = _source_owned_by("shard-0")
            body = {"source": source, "name": "xshard"}
            first = client.schedule(source=source, name="xshard")
            owner = first["job"]["shard"]
            assert owner == "shard-0"
            assert first["job"]["cache"] == "miss"

            os.kill(router.shards[owner].process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while router.shards[owner].alive and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not router.shards[owner].alive

            again = client.schedule(source=source, name="xshard")
            assert again["job"]["cache"] == "hit"
            assert again["job"]["shard"] == "router"
            assert client.result_text(again["job"]["id"]) == _expected_text(
                "mfs", body
            )

    def test_failover_reroutes_cold_keys_to_the_next_shard(self):
        with fleet(respawn=False) as (router, client):
            source = _source_owned_by("shard-0", start=300)
            os.kill(router.shards["shard-0"].process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while router.shards["shard-0"].alive and time.monotonic() < deadline:
                time.sleep(0.02)

            out = client.schedule(source=source, name="failover")
            assert out["job"]["shard"] == "shard-1"
            assert out["job"]["status"] == "done"
            assert client.result_text(out["job"]["id"]) == _expected_text(
                "mfs", {"source": source, "name": "failover"}
            )
            assert router.metrics.counter_value("router_failovers") >= 1


class TestDrain:
    def test_stop_drains_the_fleet(self):
        router = ShardRouter(
            RouterConfig(port=0, shards=2, shard_args=("--serial",))
        )
        handle = router.start_in_thread()
        client = Client(handle.url, timeout=120.0)
        client.schedule(source=_source(777), name="drain")
        handle.stop(drain=True)
        assert not handle._thread.is_alive()
        for shard in router.shards.values():
            assert shard.process.poll() is not None
