"""End-to-end CLI test: ``repro-hls serve`` + ``repro-hls submit``.

Boots the real server as a subprocess on an ephemeral port, submits the
EWF example twice through the real CLI client (asserting the second hit
the cache), scrapes ``/healthz`` and ``/metrics``, then SIGTERMs the
server and checks it drains gracefully (exit 0, final metrics flush).
The CI ``service-smoke`` job runs exactly this scenario.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import urllib.request

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@pytest.fixture
def server():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO,
    )
    try:
        line = process.stderr.readline()
        match = re.search(r"serving on (http://\S+)", line)
        assert match, f"no announce line, got {line!r}"
        yield process, match.group(1), env
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


def _submit(env, url, *extra):
    return subprocess.run(
        [
            sys.executable, "-m", "repro", "submit",
            "--example", "ex6", "--url", url, *extra,
        ],
        env=env,
        capture_output=True,
        text=True,
        cwd=REPO,
        timeout=120,
    )


def test_serve_submit_drain_roundtrip(server):
    process, url, env = server

    first = _submit(env, url)
    assert first.returncode == 0, first.stderr
    assert "(miss" in first.stderr
    cold = json.loads(first.stdout)
    assert cold["ok"] is True

    second = _submit(env, url, "--raw")
    assert second.returncode == 0, second.stderr
    assert "(hit" in second.stderr
    cached = json.loads(second.stdout)
    assert cached == cold  # identical payload, cold vs cached

    health = json.loads(
        urllib.request.urlopen(f"{url}/healthz", timeout=10).read()
    )
    assert health["status"] == "ok"
    assert health["cache_entries"] == 1

    metrics = urllib.request.urlopen(f"{url}/metrics", timeout=10).read().decode()
    assert "repro_serve_cache_hits_total 1" in metrics
    assert 'repro_serve_jobs_total{status="done"} 2' in metrics

    process.send_signal(signal.SIGTERM)
    remaining = process.stderr.read()
    assert process.wait(timeout=30) == 0
    assert "drained and stopped" in remaining
    # The final metrics snapshot is flushed on the way out.
    assert "repro_serve_jobs_total" in remaining
