"""Unit tests for the serve building blocks (no HTTP, no threads)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    JobSpecError,
    cache_key,
    execute_spec,
    normalize_spec,
    response_text,
)
from repro.serve.metrics import Metrics
from repro.serve.queue import Job, JobQueue, JobTimeout, QueueFull

SRC = """input a b c d
t1 = a + b
t2 = t1 * c
x = t2 - d
output x
"""


def _spec(**overrides):
    body = {"source": SRC}
    body.update(overrides.pop("body", {}))
    return normalize_spec(
        overrides.pop("algorithm", "mfs"), body, **overrides
    )


class TestSpecs:
    def test_normalize_rejects_unknown_algorithm(self):
        with pytest.raises(JobSpecError):
            normalize_spec("alap", {"source": SRC})

    def test_normalize_rejects_missing_design(self):
        with pytest.raises(JobSpecError):
            normalize_spec("mfs", {})

    def test_normalize_rejects_both_designs(self):
        with pytest.raises(JobSpecError):
            normalize_spec("mfs", {"source": SRC, "dfg": {}})

    def test_normalize_rejects_bad_source(self):
        with pytest.raises(JobSpecError):
            normalize_spec("mfs", {"source": "t1 :="})

    def test_normalize_rejects_bad_numbers(self):
        with pytest.raises(JobSpecError):
            normalize_spec("mfs", {"source": SRC, "cs": "six"})
        with pytest.raises(JobSpecError):
            normalize_spec("mfs", {"source": SRC, "cs": 0})

    def test_cache_key_ignores_parameter_spelling(self):
        assert cache_key(_spec(body={"cs": 4})) == cache_key(
            _spec(body={"cs": 4, "pipelined": []})
        )

    def test_cache_key_separates_parameters(self):
        baseline = cache_key(_spec())
        assert cache_key(_spec(body={"cs": 7})) != baseline
        assert cache_key(_spec(verify=True)) != baseline
        assert cache_key(_spec(trace=True)) != baseline
        assert cache_key(_spec(algorithm="mfsa")) != baseline
        assert cache_key(_spec(body={"seed": 1})) != baseline

    def test_cache_key_separates_design_names(self):
        # The structural fingerprint erases the name, but the name is in
        # the response bytes — so it must be part of the key.
        named = _spec(body={"name": "other"})
        assert cache_key(named) != cache_key(_spec())

    def test_execute_spec_mfs_roundtrip(self):
        payload, snapshot = execute_spec(_spec())
        assert payload["ok"] is True
        assert payload["algorithm"] == "mfs"
        assert payload["result"]["cs"] >= 1
        assert isinstance(snapshot, dict)

    def test_execute_spec_returns_failures(self):
        payload, _snapshot = execute_spec(_spec(body={"cs": 1}))
        assert payload["ok"] is False
        assert payload["error"]["type"]

    def test_response_text_is_canonical(self):
        payload = {"ok": True, "z": 1, "a": 2}
        text = response_text(payload)
        assert text == json.dumps(payload, sort_keys=True, indent=2) + "\n"
        assert json.loads(text) == payload


class TestResultCache:
    def test_hit_miss_and_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        assert cache.get("a") is None
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"  # refreshes recency
        cache.put("c", "C")  # evicts b (LRU)
        assert cache.peek("b") is None
        assert cache.peek("a") == "A"
        assert cache.evictions == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate() == 0.5

    def test_metrics_wiring(self):
        metrics = Metrics()
        cache = ResultCache(max_entries=1, metrics=metrics)
        cache.get("x")
        cache.put("x", "X")
        cache.get("x")
        cache.put("y", "Y")
        assert metrics.counter_value("cache_misses") == 1
        assert metrics.counter_value("cache_hits") == 1
        assert metrics.counter_value("cache_evictions") == 1

    def test_fingerprint_tags_follow_entries(self):
        """Tags ride along for ring placement: readable, listed in LRU
        order, and dropped with their entry on eviction or clear."""
        cache = ResultCache(max_entries=2)
        cache.put("k1", "T1", tag="fp1")
        cache.put("k2", "T2")  # untagged entries stay anonymous
        assert cache.tag("k1") == "fp1"
        assert cache.tag("k2") is None
        assert cache.tag("missing") is None
        assert list(cache.tagged_entries()) == [("k1", "fp1", "T1")]
        cache.put("k3", "T3", tag="fp3")  # evicts k1 (LRU)
        assert cache.peek("k1") is None
        assert cache.tag("k1") is None
        assert list(cache.tagged_entries()) == [("k3", "fp3", "T3")]
        cache.put("k3", "T3", tag="fp3b")  # re-put refreshes the tag
        assert cache.tag("k3") == "fp3b"
        cache.clear()
        assert list(cache.tagged_entries()) == []


class TestJobQueue:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_put_raises_queue_full_with_hint(self):
        async def scenario():
            queue = JobQueue(maxsize=1)
            queue.put(Job({}, "k1"))
            with pytest.raises(QueueFull) as exc:
                queue.put(Job({}, "k2"), retry_after=2.5)
            assert exc.value.retry_after == 2.5
            assert exc.value.maxsize == 1

        self._run(scenario())

    def test_dead_jobs_are_skipped_and_free_capacity(self):
        async def scenario():
            queue = JobQueue(maxsize=1)
            dead = Job({}, "k1", timeout_s=0.0)
            queue.put(dead)
            dead.mark_timeout()
            # The slot is free again: depth counts live jobs only.
            live = Job({}, "k2")
            queue.put(live)
            assert queue.depth() == 1
            assert queue.get_nowait() is live
            with pytest.raises(JobTimeout):
                await dead.future

        self._run(scenario())

    def test_finish_is_idempotent_after_timeout(self):
        async def scenario():
            job = Job({}, "k", timeout_s=0.0)
            job.mark_timeout()
            job.finish(True, "late result")  # batch landed too late
            assert job.status == "timeout"
            with pytest.raises(JobTimeout):
                await job.future

        self._run(scenario())

    def test_follower_mirrors_leader(self):
        async def scenario():
            leader = Job({}, "k")
            follower = Job({}, "k")
            follower.follow(leader)
            leader.finish(True, "text")
            await asyncio.sleep(0)  # let callbacks run
            assert await follower.future == "text"
            assert follower.cache == "follower"
            assert follower.response_text == "text"

        self._run(scenario())


class TestMetricsRender:
    def test_prometheus_exposition_shapes(self):
        metrics = Metrics()
        metrics.describe("jobs", "Jobs by status.")
        metrics.incr("jobs", status="done")
        metrics.incr("jobs", 2, status="failed")
        metrics.observe("batch_size", 3)
        metrics.observe("batch_size", 5)
        metrics.gauge("queue_depth", lambda: 7)
        text = metrics.render()
        assert '# HELP repro_serve_jobs_total Jobs by status.' in text
        assert 'repro_serve_jobs_total{status="done"} 1' in text
        assert 'repro_serve_jobs_total{status="failed"} 2' in text
        assert "repro_serve_batch_size_sum 8" in text
        assert "repro_serve_batch_size_count 2" in text
        assert "repro_serve_queue_depth 7" in text

    def test_labelled_gauges_render_one_series_per_labelset(self):
        """The router's per-shard backoff gauge: one callable per
        labelset under a single metric name, removable when the shard
        leaves the fleet."""
        metrics = Metrics()
        values = {"shard-0": 0.25, "shard-1": 1.5}
        for name, value in values.items():
            metrics.gauge(
                "respawn_backoff_seconds",
                lambda v=value: v,
                target=name,
            )
        text = metrics.render()
        assert (
            'repro_serve_respawn_backoff_seconds{target="shard-0"} 0.25'
            in text
        )
        assert (
            'repro_serve_respawn_backoff_seconds{target="shard-1"} 1.5'
            in text
        )
        metrics.remove_gauge("respawn_backoff_seconds", target="shard-0")
        text = metrics.render()
        assert 'target="shard-0"' not in text
        assert 'target="shard-1"' in text
        # Removing the last labelset removes the series entirely.
        metrics.remove_gauge("respawn_backoff_seconds", target="shard-1")
        assert "respawn_backoff_seconds" not in metrics.render()
        # Removing an unknown gauge is a harmless no-op.
        metrics.remove_gauge("respawn_backoff_seconds", target="ghost")

    def test_perf_counters_are_exported(self):
        from repro.perf import PerfCounters

        perf = PerfCounters()
        perf.incr("sweep.serial_fallbacks")
        perf.incr("sweep.fallback.worker-crash")
        text = Metrics().render(perf)
        assert (
            'repro_perf_counter_total{name="sweep.serial_fallbacks"} 1'
            in text
        )
        assert (
            'repro_perf_counter_total{name="sweep.fallback.worker-crash"} 1'
            in text
        )


class TestAdaptiveBatchPolicy:
    def _policy(self, **kw):
        from repro.serve.batcher import AdaptiveBatchPolicy

        return AdaptiveBatchPolicy(8, **kw)

    def test_first_batch_uses_configured_maximum(self):
        assert self._policy().batch_limit() == 8

    def test_cheap_jobs_coalesce_to_the_cap(self):
        policy = self._policy(target_batch_seconds=0.25)
        policy.observe(0.001)  # 1 ms jobs: 250 would fit, cap at 8
        assert policy.batch_limit() == 8

    def test_expensive_jobs_dispatch_immediately(self):
        policy = self._policy(target_batch_seconds=0.25)
        policy.observe(2.0)
        assert policy.batch_limit() == 1

    def test_intermediate_costs_fill_the_target(self):
        policy = self._policy(target_batch_seconds=0.25)
        policy.observe(0.1)  # 0.25 / 0.1 -> 2 jobs per batch
        assert policy.batch_limit() == 2

    def test_ewma_update(self):
        policy = self._policy(alpha=0.5)
        policy.observe(1.0)
        policy.observe(0.0)
        assert policy.cost_ewma == pytest.approx(0.5)
        policy.observe(0.5)
        assert policy.cost_ewma == pytest.approx(0.5)

    def test_negative_observations_are_ignored(self):
        policy = self._policy()
        policy.observe(-1.0)
        assert policy.cost_ewma is None

    def test_validation(self):
        from repro.serve.batcher import AdaptiveBatchPolicy

        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(0)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(8, target_batch_seconds=0.0)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(8, alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(8, alpha=1.5)

    def test_batcher_registers_policy_gauges(self):
        from repro.serve.batcher import MicroBatcher

        metrics = Metrics()
        batcher = MicroBatcher(
            JobQueue(4),
            resolve=lambda job, payload, text: None,
            adaptive=True,
            metrics=metrics,
        )
        assert batcher.policy is not None
        batcher.policy.observe(0.5)
        text = metrics.render()
        assert "repro_serve_adaptive_batch_limit 1" in text
        assert "repro_serve_job_cost_ewma_seconds 0.5" in text

    def test_batcher_without_adaptive_has_no_policy(self):
        from repro.serve.batcher import MicroBatcher

        batcher = MicroBatcher(
            JobQueue(4), resolve=lambda job, payload, text: None
        )
        assert batcher.policy is None
