"""Resilience tests: client retries, fault injection, crash recovery.

Three layers, cheapest first:

* pure client-side unit tests (URL parsing, ``wait_for`` backoff, retry
  budget, circuit breaker) — no sockets at all;
* in-process services armed with a seeded :class:`FaultPlan` (chaos
  without subprocesses) and journal round-trips through graceful and
  simulated-crash restarts;
* the full ``kill -9`` end-to-end: a real server subprocess is killed
  mid-flight and a fresh process on the same ``--state-dir`` must
  complete every admitted job with byte-identical results.  The CI
  ``chaos-smoke`` job runs exactly this scenario.
"""

from __future__ import annotations

import itertools
import os
import re
import subprocess
import sys
import urllib.request
from contextlib import contextmanager

import pytest

from repro.resilience.journal import JobJournal, audit_journal
from repro.resilience.retry import CircuitBreaker, CircuitOpen, RetryPolicy
from repro.serve import Backpressure, Client, JobFailedError, ServeApp, ServiceError
from repro.serve.jobs import cache_key, execute_spec, normalize_spec, response_text

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SRC = """input a b c d
t1 = a + b
t2 = t1 * c
x = t2 - d
output x
"""

SRC2 = """input a b c
x = a + b * c
output x
"""

SRC3 = """input a b
s = a - b
x = s * 3
output x
"""


@contextmanager
def service(**config):
    config.setdefault("port", 0)
    config.setdefault("backend", "serial")
    app = ServeApp(**config)
    handle = app.start_in_thread()
    try:
        yield app, Client(handle.url)
    finally:
        handle.stop()


def _expected_text(algorithm, body):
    """The canonical bytes an uninterrupted run would have produced."""
    payload, _perf = execute_spec(normalize_spec(algorithm, body))
    return response_text(payload)


# ---------------------------------------------------------------------------
# Client URL parsing (regression: "localhost:8421" used to read the host
# as the scheme and the port as the path)
# ---------------------------------------------------------------------------
class TestClientUrlParsing:
    def test_scheme_less_host_port(self):
        client = Client("localhost:8421")
        assert (client.host, client.port) == ("localhost", 8421)

    def test_explicit_http_url(self):
        client = Client("http://example.com:1234")
        assert (client.host, client.port) == ("example.com", 1234)

    def test_bare_host_defaults_to_port_80(self):
        client = Client("example.com")
        assert (client.host, client.port) == ("example.com", 80)

    def test_ip_host_port(self):
        client = Client("127.0.0.1:9")
        assert (client.host, client.port) == ("127.0.0.1", 9)

    def test_non_http_scheme_rejected(self):
        with pytest.raises(ValueError, match="unsupported scheme"):
            Client("https://example.com")

    def test_missing_host_rejected(self):
        with pytest.raises(ValueError, match="no host"):
            Client("http://")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            Client("localhost:8421", retries=-1)


# ---------------------------------------------------------------------------
# wait_for: capped exponential polling + typed failure
# ---------------------------------------------------------------------------
class TestWaitFor:
    def _client_with_script(self, statuses):
        """A client whose job() walks a scripted status sequence."""
        client = Client("localhost:1", retry_seed=0)
        sleeps = []
        client._sleep = sleeps.append
        script = iter(statuses)

        def fake_job(_job_id):
            return {"job": {"id": "j1", "status": next(script)}}

        client.job = fake_job
        return client, sleeps

    def test_poll_interval_doubles_and_caps(self):
        client, sleeps = self._client_with_script(
            ["queued"] * 8 + ["done"]
        )
        client.wait_for("j1", timeout=60.0, poll_s=0.05, max_poll_s=0.4)
        assert len(sleeps) == 8
        # each sleep falls inside [delay/2, delay] of the doubling ladder
        ladder = [0.05, 0.1, 0.2, 0.4, 0.4, 0.4, 0.4, 0.4]
        for slept, delay in zip(sleeps, ladder):
            assert delay / 2.0 <= slept <= delay
        assert max(sleeps) <= 0.4

    def test_seeded_jitter_is_deterministic(self):
        first = self._client_with_script(["queued"] * 5 + ["done"])
        second = self._client_with_script(["queued"] * 5 + ["done"])
        first[0].wait_for("j1", timeout=60.0)
        second[0].wait_for("j1", timeout=60.0)
        assert first[1] == second[1]

    def test_failed_job_raises_typed_error(self):
        with service() as (_app, client):
            out = client.schedule(source=SRC, cs=1, wait=False)
            with pytest.raises(JobFailedError) as exc:
                client.wait_for(out["job"]["id"], timeout=10)
            assert exc.value.status == "failed"
            assert exc.value.job_id == out["job"]["id"]
            assert exc.value.job["error"]["type"]

    def test_raise_on_failure_false_returns_payload(self):
        with service() as (_app, client):
            out = client.schedule(source=SRC, cs=1, wait=False)
            info = client.wait_for(
                out["job"]["id"], timeout=10, raise_on_failure=False
            )
            assert info["job"]["status"] == "failed"

    def test_deadline_raises_timeout_error(self):
        client, _sleeps = self._client_with_script(
            itertools.repeat("queued")
        )
        with pytest.raises(TimeoutError, match="still queued"):
            client.wait_for("j1", timeout=0.01)


# ---------------------------------------------------------------------------
# Transport retries and the circuit breaker
# ---------------------------------------------------------------------------
class TestClientRetries:
    def test_connection_refused_exhausts_budget(self):
        client = Client("127.0.0.1:9", retries=2, retry_seed=5)
        sleeps = []
        client._sleep = sleeps.append
        attempts = []

        def refused(*_args, **_kwargs):
            attempts.append(1)
            raise ConnectionRefusedError("refused")

        client._request = refused
        with pytest.raises(ConnectionRefusedError):
            client.healthz()
        assert len(attempts) == 3  # first try + 2 retries
        assert sleeps == RetryPolicy(retries=2, seed=5).delays()

    def test_retry_succeeds_once_server_returns(self):
        client = Client("127.0.0.1:9", retries=3, retry_seed=0)
        sleeps = []
        client._sleep = sleeps.append
        calls = []

        def flaky(*_args, **_kwargs):
            calls.append(1)
            if len(calls) < 3:
                raise ConnectionRefusedError("restarting")
            return 200, {}, {"status": "ok"}

        client._request = flaky
        assert client.healthz() == {"status": "ok"}
        assert len(calls) == 3 and len(sleeps) == 2

    def test_429_retried_with_retry_after_floor(self):
        client = Client("127.0.0.1:9", retries=2, retry_seed=0)
        sleeps = []
        client._sleep = sleeps.append
        calls = []

        def shedding(*_args, **_kwargs):
            calls.append(1)
            if len(calls) < 3:
                return 429, {"retry-after": "0.75"}, {"error": "queue full"}
            return 200, {}, {"status": "ok"}

        client._request = shedding
        assert client.healthz() == {"status": "ok"}
        assert all(slept >= 0.75 for slept in sleeps)

    def test_429_without_budget_raises_backpressure(self):
        client = Client("127.0.0.1:9")  # retries defaults to 0
        client._request = lambda *a, **k: (
            429, {"retry-after": "2.5"}, {"error": "queue full"},
        )
        with pytest.raises(Backpressure) as exc:
            client.healthz()
        assert exc.value.retry_after == 2.5

    def test_definite_errors_are_not_retried(self):
        client = Client("127.0.0.1:9", retries=5)
        calls = []

        def bad_request(*_args, **_kwargs):
            calls.append(1)
            return 400, {}, {"error": "nope"}

        client._request = bad_request
        with pytest.raises(ServiceError):
            client.healthz()
        assert len(calls) == 1

    def test_breaker_opens_and_fails_fast(self):
        class FakeClock:
            now = 0.0

            def __call__(self):
                return self.now

        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, reset_s=5.0, clock=clock)
        client = Client("127.0.0.1:9", breaker=breaker)
        attempts = []

        def refused(*_args, **_kwargs):
            attempts.append(1)
            raise ConnectionRefusedError("down")

        client._request = refused
        for _ in range(2):
            with pytest.raises(ConnectionRefusedError):
                client.healthz()
        with pytest.raises(CircuitOpen):
            client.healthz()
        assert len(attempts) == 2  # the open circuit never hit the wire
        clock.now = 5.0
        client._request = lambda *a, **k: (200, {}, {"status": "ok"})
        assert client.healthz() == {"status": "ok"}  # half-open probe closes
        assert breaker.state == "closed"


# ---------------------------------------------------------------------------
# Seeded fault injection through the live service
# ---------------------------------------------------------------------------
class TestServeFaultInjection:
    def test_admit_fault_rejects_then_recovers(self):
        with service(faults="serve.admit:n=1") as (_app, client):
            with pytest.raises(ServiceError) as exc:
                client.schedule(source=SRC, cs=6, wait=True)
            assert exc.value.status == 500
            assert "InjectedFault" in str(exc.value)
            out = client.schedule(source=SRC, cs=6, wait=True)  # call 2
            assert out["result"]["ok"] is True

    def test_cache_put_fault_costs_future_hits_not_the_job(self):
        with service(faults="serve.cache.put:n=1") as (app, client):
            first = client.schedule(source=SRC, cs=6, wait=True)
            assert first["result"]["ok"] is True
            assert app.metrics.counter_value("cache_put_errors") == 1
            assert len(app.cache) == 0  # the put was the injected victim
            second = client.schedule(source=SRC, cs=6, wait=True)
            assert second["job"]["cache"] == "miss"  # recomputed, then cached
            assert len(app.cache) == 1

    def test_scheduler_fault_fails_the_job_payload(self):
        with service(faults="scheduler.run:n=1") as (_app, client):
            with pytest.raises(ServiceError) as exc:
                client.schedule(source=SRC, cs=6, wait=True)
            assert exc.value.status == 500
            assert exc.value.payload["job"]["status"] == "failed"
            assert exc.value.payload["result"]["error"]["type"] == "InjectedFault"
            out = client.schedule(source=SRC, cs=6, wait=True)
            assert out["result"]["ok"] is True

    def test_dispatch_fault_fails_the_batch_not_the_server(self):
        with service(faults="serve.dispatch:n=1") as (app, client):
            with pytest.raises(ServiceError) as exc:
                client.schedule(source=SRC, cs=6, wait=True)
            assert exc.value.status == 500
            assert exc.value.payload["job"]["status"] == "failed"
            assert app.metrics.counter_value("dispatch_errors") == 1
            out = client.schedule(source=SRC, cs=6, wait=True)
            assert out["result"]["ok"] is True

    def test_same_seed_replays_identical_failure_sequence(self):
        spec = "serve.admit:p=0.4"
        logs = []
        for _run in range(2):
            with service(faults=spec, fault_seed=13) as (app, client):
                for _call in range(12):
                    try:
                        client.schedule(source=SRC, cs=6, wait=True)
                    except ServiceError:
                        pass
                logs.append(list(app.fault_plan.log))
        assert logs[0] == logs[1]
        assert logs[0]  # the plan did fire


# ---------------------------------------------------------------------------
# Journal durability: in-process restarts
# ---------------------------------------------------------------------------
class TestJournalRecovery:
    def test_graceful_drain_compacts_and_preserves_results(self, tmp_path):
        state = str(tmp_path)
        with service(state_dir=state) as (app, client):
            out = client.schedule(source=SRC, cs=6, wait=True)
            job_id = out["job"]["id"]
            raw = client.result_text(job_id)
        journal_path = app.journal.path
        report = audit_journal(journal_path)
        assert report.ok, report.render()
        replayed = JobJournal(journal_path).replay()
        assert [e.job_id for e in replayed.completed] == [job_id]
        assert replayed.pending == []

        with service(state_dir=state) as (app2, client2):
            info = client2.job(job_id)
            assert info["job"]["status"] == "done"
            assert client2.result_text(job_id) == raw
            # the recovered result pre-warms the cache
            again = client2.schedule(source=SRC, cs=6, wait=True)
            assert again["job"]["cache"] == "hit"
            assert app2.metrics.counter_value(
                "recovered_jobs", kind="completed"
            ) == 1

    def test_pending_admit_is_replayed_byte_identically(self, tmp_path):
        body = {"source": SRC2, "cs": 4}
        spec = normalize_spec("mfs", body)
        journal = JobJournal(str(tmp_path / "jobs.journal.jsonl"))
        journal.record_admit("j-crash-1", cache_key(spec), spec, timeout_s=30.0)
        journal.close()

        with service(state_dir=str(tmp_path)) as (app, client):
            info = client.wait_for("j-crash-1", timeout=30)
            assert info["job"]["status"] == "done"
            assert client.result_text("j-crash-1") == _expected_text("mfs", body)
            assert app.metrics.counter_value(
                "recovered_jobs", kind="pending"
            ) == 1

    def test_torn_tail_from_simulated_crash_is_survived(self, tmp_path):
        spec = normalize_spec("mfs", {"source": SRC3, "cs": 4})
        journal = JobJournal(str(tmp_path / "jobs.journal.jsonl"))
        journal.record_admit("j-crash-2", cache_key(spec), spec)
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "complete", "id": "j-crash-2"')  # kill -9

        assert audit_journal(journal.path).ok
        with service(state_dir=str(tmp_path)) as (_app, client):
            info = client.wait_for("j-crash-2", timeout=30)
            assert info["job"]["status"] == "done"


# ---------------------------------------------------------------------------
# kill -9 end to end (the CI chaos-smoke scenario)
# ---------------------------------------------------------------------------
def _boot(env, state_dir, *extra):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--serial", "--state-dir", state_dir, *extra,
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO,
    )
    line = process.stderr.readline()
    match = re.search(r"serving on (http://\S+)", line)
    assert match, f"no announce line, got {line!r}"
    return process, match.group(1)


def test_kill_minus_nine_recovers_all_admitted_jobs(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    state = str(tmp_path)

    # Boot with a long coalescing window so admitted jobs are still
    # sitting in the batcher when the process dies.
    process, url = _boot(
        env, state, "--batch-wait-ms", "30000", "--max-batch", "64"
    )
    killed_pid = process.pid
    try:
        client = Client(url)
        pending = []
        for source, cs in ((SRC, 6), (SRC2, 4), (SRC3, 4)):
            out = client.schedule(source=source, cs=cs, wait=False)
            assert out["job"]["status"] in ("queued", "running")
            pending.append((out["job"]["id"], source, cs))
    finally:
        process.kill()  # SIGKILL: no drain, no compaction, no goodbye
        process.wait(timeout=30)

    # A fresh process on the same state dir replays the journal.
    process, url = _boot(env, state, "--batch-wait-ms", "5")
    try:
        client = Client(url, retries=3, retry_seed=0)
        for job_id, source, cs in pending:
            info = client.wait_for(job_id, timeout=120)
            assert info["job"]["status"] == "done"
            raw = client.result_text(job_id)
            expected = _expected_text("mfs", {"source": source, "cs": cs})
            assert raw == expected  # byte-identical to an uninterrupted run
        metrics = urllib.request.urlopen(
            f"{url}/metrics", timeout=10
        ).read().decode()
        assert 'repro_serve_recovered_jobs_total{kind="pending"} 3' in metrics
        assert process.pid != killed_pid
    finally:
        process.kill()
        process.wait(timeout=30)


def test_kill_minus_nine_preserves_completed_results(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    state = str(tmp_path)

    process, url = _boot(env, state, "--batch-wait-ms", "5")
    try:
        client = Client(url)
        out = client.schedule(source=SRC, cs=6, wait=True)
        job_id = out["job"]["id"]
        raw = client.result_text(job_id)
    finally:
        process.kill()
        process.wait(timeout=30)

    process, url = _boot(env, state, "--batch-wait-ms", "5")
    try:
        client = Client(url, retries=3, retry_seed=0)
        assert client.job(job_id)["job"]["status"] == "done"
        assert client.result_text(job_id) == raw
        again = client.schedule(source=SRC, cs=6, wait=True)
        assert again["job"]["cache"] == "hit"  # cache survived the crash
    finally:
        process.kill()
        process.wait(timeout=30)
