"""Service-level tests: HTTP API, concurrency, backpressure, determinism.

Each test boots a real :class:`~repro.serve.app.ServeApp` on an
ephemeral port (event loop on a daemon thread) and talks to it over
actual sockets through :class:`~repro.serve.client.Client`.  Slow-job
scenarios pin the executor to the serial backend and wrap
``execute_spec`` with a sleep, so timing is controlled without touching
process pools.
"""

from __future__ import annotations

import http.client
import json
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import pytest

import repro.serve.batcher as batcher_module
from repro.serve import Backpressure, Client, ServeApp, ServiceError
from repro.serve.jobs import execute_spec

SRC = """input a b c d
t1 = a + b
t2 = t1 * c
x = t2 - d
output x
"""

SRC2 = """input a b c
x = a + b * c
output x
"""

SRC3 = """input a b
s = a - b
x = s * 3
output x
"""


@contextmanager
def service(**config):
    config.setdefault("port", 0)
    config.setdefault("backend", "serial")
    app = ServeApp(**config)
    handle = app.start_in_thread()
    try:
        yield app, Client(handle.url)
    finally:
        handle.stop()


@contextmanager
def slow_execution(monkeypatch, delay_s):
    """Make every (serial-backend) execution take at least ``delay_s``."""

    def slow(spec):
        time.sleep(delay_s)
        return execute_spec(spec)

    monkeypatch.setattr(batcher_module, "execute_spec", slow)
    yield


def _wait_until(predicate, timeout=5.0, poll=0.01):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(poll)


class TestCacheAndDeterminism:
    def test_cold_then_cached_byte_identical(self):
        with service() as (app, client):
            first = client.schedule(source=SRC, cs=6, wait=True)
            second = client.schedule(source=SRC, cs=6, wait=True)
            assert first["job"]["cache"] == "miss"
            assert second["job"]["cache"] == "hit"
            raw_first = client.result_text(first["job"]["id"])
            raw_second = client.result_text(second["job"]["id"])
            assert raw_first == raw_second  # literal byte identity
            assert app.cache.hits == 1

    def test_served_result_matches_oneshot_cli_path(self):
        from repro.core.mfsa import MFSAScheduler
        from repro.dfg.analysis import TimingModel
        from repro.dfg.ops import standard_operation_set
        from repro.dfg.parser import parse_behavior
        from repro.io.jsonio import synthesis_to_json
        from repro.library.ncr import datapath_library

        dfg = parse_behavior(SRC, name="det")
        timing = TimingModel(ops=standard_operation_set(mul_latency=1))
        oneshot = json.loads(
            synthesis_to_json(
                MFSAScheduler(dfg, timing, datapath_library(), cs=6).run()
            )
        )
        with service() as (_app, client):
            out = client.synth(source=SRC, name="det", cs=6, wait=True)
        assert out["result"]["result"] == oneshot

    def test_isomorphic_designs_share_the_cache_entry(self):
        renamed = SRC.replace("t1", "u9").replace("t2", "u8")
        with service() as (app, client):
            client.schedule(source=SRC, cs=6, wait=True)
            out = client.schedule(source=renamed, cs=6, wait=True)
            assert out["job"]["cache"] == "hit"
            assert len(app.cache) == 1

    def test_verify_and_trace_round_trip(self):
        with service() as (_app, client):
            out = client.synth(
                source=SRC2, cs=4, wait=True, verify=True, trace=True
            )
            assert out["result"]["verified"] is True
            assert out["result"]["checks_run"]
            assert out["result"]["trace_jsonl"].count("\n") > 5


class TestSingleFlight:
    def test_identical_concurrent_submissions_run_once(self):
        # A long coalescing window holds the leader in the batcher while
        # the other submissions arrive and attach as followers.
        with service(batch_wait_ms=300.0, max_batch=8) as (app, client):

            def submit(_index):
                return client.schedule(source=SRC, cs=6, wait=True)

            with ThreadPoolExecutor(max_workers=5) as pool:
                results = list(pool.map(submit, range(5)))

            assert app.metrics.counter_value("jobs_executed") == 1
            assert app.metrics.counter_value("singleflight_followers") == 4
            caches = sorted(r["job"]["cache"] for r in results)
            assert caches == ["follower"] * 4 + ["miss"]
            raw = {
                client.result_text(r["job"]["id"]) for r in results
            }
            assert len(raw) == 1  # byte-identical across all five

    def test_different_jobs_are_not_coalesced(self):
        with service(batch_wait_ms=100.0) as (app, client):
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [
                    pool.submit(
                        client.schedule, source=SRC, cs=6, wait=True
                    ),
                    pool.submit(
                        client.schedule, source=SRC3, cs=4, wait=True
                    ),
                ]
                results = [f.result() for f in futures]
            assert all(r["result"]["ok"] for r in results)
            assert app.metrics.counter_value("jobs_executed") == 2


class TestBackpressure:
    def test_queue_full_returns_429_with_retry_after(self, monkeypatch):
        with slow_execution(monkeypatch, 0.4):
            with service(
                queue_size=1, max_batch=1, batch_wait_ms=0.0, retry_after_s=2.5
            ) as (app, client):
                first = client.schedule(source=SRC, cs=6, wait=False)
                # Wait until the batcher has pulled the first job so the
                # single queue slot is empty again.
                _wait_until(lambda: app.queue.depth() == 0)
                client.schedule(source=SRC2, cs=4, wait=False)
                with pytest.raises(Backpressure) as exc:
                    client.schedule(source=SRC3, cs=4, wait=False)
                assert exc.value.status == 429
                assert exc.value.retry_after == 2.5
                assert exc.value.payload["queue_size"] == 1
                assert app.metrics.counter_value("backpressure") == 1
                # The shed job left no residue; accepted work completes.
                done = client.wait_for(first["job"]["id"], timeout=10)
                assert done["job"]["status"] == "done"

    def test_draining_rejects_new_work_with_503(self):
        with service() as (app, client):
            client.schedule(source=SRC, cs=6, wait=True)
            app.draining = True
            try:
                with pytest.raises(ServiceError) as exc:
                    client.schedule(source=SRC, cs=6, wait=True)
                assert exc.value.status == 503
                # Status endpoints stay reachable while draining.
                assert client.healthz()["status"] == "draining"
            finally:
                app.draining = False


class TestTimeouts:
    def test_running_timeout_discards_late_result(self, monkeypatch):
        with slow_execution(monkeypatch, 0.5):
            with service(batch_wait_ms=0.0) as (app, client):
                with pytest.raises(ServiceError) as exc:
                    client.schedule(
                        source=SRC, cs=6, wait=True, timeout=0.05
                    )
                assert exc.value.status == 504
                job_id = exc.value.payload["job"]["id"]
                assert exc.value.payload["job"]["status"] == "timeout"
                # The batch still completes; the late result is discarded
                # for the job but harvested into the cache — no orphaned
                # pool work, no stuck batcher.
                _wait_until(
                    lambda: app.metrics.counter_value("jobs_executed") == 1
                )
                _wait_until(lambda: not app.batcher.busy)
                assert client.job(job_id)["job"]["status"] == "timeout"
                assert (
                    app.metrics.counter_value("jobs", status="timeout") == 1
                )
                # Same spec resubmitted: the harvested result serves it
                # from cache instantly (no second execution).
                out = client.schedule(source=SRC, cs=6, wait=True)
                assert out["job"]["cache"] == "hit"
                assert app.metrics.counter_value("jobs_executed") == 1

    def test_queued_timeout_is_never_executed(self, monkeypatch):
        with slow_execution(monkeypatch, 0.4):
            with service(
                queue_size=4, max_batch=1, batch_wait_ms=0.0
            ) as (app, client):
                blocker = client.schedule(source=SRC, cs=6, wait=False)
                _wait_until(lambda: app.queue.depth() == 0)
                with pytest.raises(ServiceError) as exc:
                    client.schedule(
                        source=SRC2, cs=4, wait=True, timeout=0.05
                    )
                assert exc.value.status == 504
                client.wait_for(blocker["job"]["id"], timeout=10)
                _wait_until(lambda: not app.batcher.busy)
                # Only the blocker ever reached the executor.
                assert app.metrics.counter_value("jobs_executed") == 1


class TestHttpSurface:
    def _raw(self, client, method, path, body=b"", headers=None):
        connection = http.client.HTTPConnection(
            client.host, client.port, timeout=10
        )
        try:
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def test_bad_json_is_400(self):
        with service() as (_app, client):
            status, body = self._raw(
                client, "POST", "/v1/schedule?wait=1", b"{nope"
            )
            assert status == 400
            assert b"not JSON" in body

    def test_unknown_route_is_404(self):
        with service() as (_app, client):
            status, _body = self._raw(client, "GET", "/v2/nothing")
            assert status == 404

    def test_wrong_method_is_405(self):
        with service() as (_app, client):
            status, _body = self._raw(client, "GET", "/v1/schedule")
            assert status == 405

    def test_unknown_job_is_404(self):
        with service() as (_app, client):
            with pytest.raises(ServiceError) as exc:
                client.job("j99999-deadbeef")
            assert exc.value.status == 404

    def test_failed_job_is_500_with_payload(self):
        with service() as (_app, client):
            with pytest.raises(ServiceError) as exc:
                client.schedule(source=SRC, cs=1, wait=True)
            assert exc.value.status == 500
            assert exc.value.payload["job"]["status"] == "failed"
            assert exc.value.payload["result"]["ok"] is False

    def test_metrics_exposition_is_scrapeable(self):
        with service() as (_app, client):
            client.schedule(source=SRC, cs=6, wait=True)
            client.schedule(source=SRC, cs=6, wait=True)
            text = client.metrics_text()
            assert "# TYPE repro_serve_jobs_total counter" in text
            assert 'repro_serve_jobs_total{status="done"} 2' in text
            assert "repro_serve_cache_hits_total 1" in text
            assert "repro_serve_queue_depth 0" in text
            assert "repro_serve_batch_size_count" in text
            assert "repro_perf_counter_total" in text

    def test_healthz_reports_shape(self):
        with service() as (_app, client):
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["queue_depth"] == 0
            assert "uptime_seconds" in health


class TestAdminCacheEndpoints:
    """The cache-transfer surface the router's reshard handoff and
    replica writes ride on: index, entry, export, import."""

    def test_index_entry_export_import_roundtrip(self):
        with service() as (app, client):
            out = client.schedule(source=SRC, cs=6, wait=True)
            key = out["job"]["key"]
            fingerprint = out["job"]["fingerprint"]

            index = client._request("GET", "/admin/cache/index")[2]
            assert index["total"] == 1
            assert index["entries"] == [{"key": key, "tag": fingerprint}]

            status, _headers, text = client._request(
                "GET", "/admin/cache/entry", query={"key": key}, raw=True
            )
            assert status == 200
            assert json.loads(text)["ok"] is True

            exported = client._request(
                "POST", "/admin/cache/export",
                body={"keys": [key, "missing"]},
            )[2]
            assert len(exported["entries"]) == 1
            entry = exported["entries"][0]
            assert entry["key"] == key and entry["tag"] == fingerprint
            assert entry["text"] == text

            # A fresh service warmed purely by import answers a hit.
            with service() as (_twin, twin_client):
                imported = twin_client._request(
                    "POST", "/admin/cache/import",
                    body={"entries": exported["entries"]},
                )[2]
                assert imported == {"imported": 1}
                again = twin_client.schedule(source=SRC, cs=6, wait=True)
                assert again["job"]["cache"] == "hit"
                assert twin_client.result_text(again["job"]["id"]) == text

    def test_entry_validation(self):
        with service() as (_app, client):
            status = client._request("GET", "/admin/cache/entry")[0]
            assert status == 400
            status = client._request(
                "GET", "/admin/cache/entry", query={"key": "nope"}
            )[0]
            assert status == 404
            status = client._request(
                "POST", "/admin/cache/export", body={"keys": "not-a-list"}
            )[0]
            assert status == 400
            status = client._request("POST", "/admin/cache/index")[0]
            assert status == 405
