"""Property tests for the consistent-hash ring (repro.serve.hashring).

The routing contract the shard router depends on:

* **stability** — resizing the fleet from N to N+1 shards moves only
  ~K/(N+1) of K keys, and every key that moves, moves to the new shard;
* **determinism** — placement is a pure function of (shard names, key),
  identical across processes (sha256, never python's seeded ``hash()``);
* **balance** — with the default vnode count, shard loads stay within
  20 % of ideal on realistic (fingerprint-shaped) key populations.
"""

import hashlib
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.hashring import DEFAULT_REPLICAS, HashRing, moved_keys


def fingerprints(count: int, seed: str = "ring") -> list:
    """Seeded sha256-hex keys, the exact shape of DFG fingerprints."""
    return [
        hashlib.sha256(f"{seed}-{i}".encode()).hexdigest()
        for i in range(count)
    ]


class TestRingBasics:
    def test_empty_ring_refuses_lookup(self):
        with pytest.raises(ValueError):
            HashRing().node_for("abc")

    def test_add_remove_roundtrip(self):
        ring = HashRing(["a", "b"])
        assert set(ring.nodes) == {"a", "b"}
        assert len(ring) == 2 and "a" in ring
        ring.remove("a")
        assert ring.nodes == ("b",)
        with pytest.raises(ValueError):
            ring.remove("a")
        with pytest.raises(ValueError):
            ring.add("b")

    def test_ordered_starts_at_owner_and_covers_all(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        for key in fingerprints(50):
            order = ring.ordered(key)
            assert order[0] == ring.node_for(key)
            assert sorted(order) == sorted(ring.nodes)

    def test_failover_target_is_next_in_ring_order(self):
        """Removing the owner reroutes each key to its ordered()[1]."""
        ring = HashRing([f"shard-{i}" for i in range(3)])
        for key in fingerprints(100):
            owner, fallback = ring.ordered(key)[:2]
            without = HashRing([n for n in ring.nodes if n != owner])
            assert without.node_for(key) == fallback


class TestStability:
    def test_scale_out_moves_only_its_share(self):
        """N → N+1: ≲ K/(N+1) keys move, all of them to the new shard."""
        keys = fingerprints(2000)
        for shards in (2, 4):
            before = HashRing([f"shard-{i}" for i in range(shards)])
            after = HashRing([f"shard-{i}" for i in range(shards + 1)])
            moved = [
                key
                for key in keys
                if before.node_for(key) != after.node_for(key)
            ]
            newcomer = f"shard-{shards}"
            assert all(after.node_for(key) == newcomer for key in moved)
            ideal = len(keys) / (shards + 1)
            # Sampling noise allowance; modulo hashing would move ~ K·N/(N+1).
            assert len(moved) < 1.5 * ideal, (
                f"{len(moved)} keys moved at {shards}→{shards + 1} shards "
                f"(ideal {ideal:.0f})"
            )

    def test_scale_in_strands_no_keys(self):
        """Removing a shard only re-homes that shard's keys."""
        keys = fingerprints(1000)
        ring = HashRing([f"shard-{i}" for i in range(4)])
        owned = {key: ring.node_for(key) for key in keys}
        ring.remove("shard-2")
        for key in keys:
            if owned[key] != "shard-2":
                assert ring.node_for(key) == owned[key]
            else:
                assert ring.node_for(key) != "shard-2"


class TestReshardViews:
    """grown()/shrunk()/moved_keys() — the online-reshard primitives."""

    def test_grown_and_shrunk_leave_the_original_untouched(self):
        ring = HashRing(["a", "b"])
        bigger = ring.grown("c")
        assert ring.nodes == ("a", "b")
        assert sorted(bigger.nodes) == ["a", "b", "c"]
        smaller = bigger.shrunk("c")
        assert sorted(bigger.nodes) == ["a", "b", "c"]
        assert sorted(smaller.nodes) == ["a", "b"]
        keys = fingerprints(200)
        assert [smaller.node_for(k) for k in keys] == [
            ring.node_for(k) for k in keys
        ]

    def test_moved_keys_matches_brute_force(self):
        keys = fingerprints(500, seed="moved")
        before = HashRing([f"shard-{i}" for i in range(3)])
        after = before.grown("shard-3")
        moved = moved_keys(before, after, keys)
        expected = {
            key: (before.node_for(key), after.node_for(key))
            for key in keys
            if before.node_for(key) != after.node_for(key)
        }
        assert moved == expected
        assert moved  # 500 keys over 3→4 shards always relocate some

    @settings(max_examples=25, deadline=None)
    @given(
        shards=st.integers(min_value=1, max_value=6),
        sample=st.integers(min_value=0, max_value=3000),
    )
    def test_scale_out_movement_bound_property(self, shards, sample):
        """Adding one shard relocates ≤ (1/(N+1) + tolerance) of a large
        key sample, and every relocated key lands on the newcomer."""
        keys = fingerprints(2000, seed=f"prop-{sample}")
        before = HashRing([f"shard-{i}" for i in range(shards)])
        newcomer = f"shard-{shards}"
        after = before.grown(newcomer)
        moved = moved_keys(before, after, keys)
        assert all(new == newcomer for _old, new in moved.values())
        ideal = len(keys) / (shards + 1)
        assert len(moved) <= 1.5 * ideal + 25, (
            f"{len(moved)} of {len(keys)} keys moved at "
            f"{shards}→{shards + 1} (ideal {ideal:.0f})"
        )

    @settings(max_examples=25, deadline=None)
    @given(
        shards=st.integers(min_value=2, max_value=6),
        victim=st.integers(min_value=0, max_value=5),
        sample=st.integers(min_value=0, max_value=3000),
    )
    def test_scale_in_handoff_set_is_exactly_the_victims_keys(
        self, shards, victim, sample
    ):
        """Removing a shard relocates exactly its keys: the handoff set
        the router pushes equals {key : owner was the victim}, and
        nobody else's placement changes."""
        keys = fingerprints(1000, seed=f"shrink-{sample}")
        before = HashRing([f"shard-{i}" for i in range(shards)])
        name = f"shard-{victim % shards}"
        after = before.shrunk(name)
        moved = moved_keys(before, after, keys)
        owned_by_victim = {k for k in keys if before.node_for(k) == name}
        assert set(moved) == owned_by_victim
        for key, (old, new) in moved.items():
            assert old == name and new != name
            assert after.node_for(key) == new


class TestDeterminism:
    def test_placement_is_identical_in_a_fresh_process(self):
        """No dependence on PYTHONHASHSEED or process state."""
        keys = fingerprints(64)
        local = [
            HashRing([f"shard-{i}" for i in range(3)]).node_for(key)
            for key in keys
        ]
        script = (
            "import sys\n"
            "from repro.serve.hashring import HashRing\n"
            "ring = HashRing(['shard-0', 'shard-1', 'shard-2'])\n"
            "for key in sys.argv[1:]:\n"
            "    print(ring.node_for(key))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, *keys],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.split() == local

    def test_rebuild_order_does_not_matter(self):
        keys = fingerprints(200)
        forward = HashRing(["a", "b", "c"])
        backward = HashRing(["c", "b", "a"])
        assert [forward.node_for(k) for k in keys] == [
            backward.node_for(k) for k in keys
        ]


class TestBalance:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_within_twenty_percent_of_ideal(self, shards):
        keys = fingerprints(4000, seed="balance")
        ring = HashRing([f"shard-{i}" for i in range(shards)])
        counts = ring.distribution(keys)
        assert sum(counts.values()) == len(keys)
        ideal = len(keys) / shards
        for name, count in counts.items():
            assert abs(count - ideal) <= 0.2 * ideal, (
                f"{name} owns {count} of {len(keys)} keys "
                f"(ideal {ideal:.0f} ± 20 %)"
            )

    def test_more_vnodes_tighten_the_spread(self):
        keys = fingerprints(4000, seed="vnodes")
        spreads = {}
        for replicas in (8, DEFAULT_REPLICAS):
            ring = HashRing(
                [f"shard-{i}" for i in range(4)], replicas=replicas
            )
            counts = ring.distribution(keys)
            spreads[replicas] = max(counts.values()) - min(counts.values())
        assert spreads[DEFAULT_REPLICAS] < spreads[8]
