"""Tests for reference DFG evaluation."""

import pytest

from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind
from repro.errors import SimulationError
from repro.sim.evaluator import evaluate_dfg
from repro.bench.suites import hal_diffeq


class TestEvaluation:
    def test_simple_arithmetic(self, ops):
        b = DFGBuilder()
        x, y = b.inputs("x", "y")
        b.output("r", (x + y) * (x - y))
        g = b.build()
        assert evaluate_dfg(g, ops, {"x": 5, "y": 3})["r"] == 16

    def test_constants(self, ops):
        b = DFGBuilder()
        x = b.input("x")
        b.output("r", 3 * x + 7)
        g = b.build()
        assert evaluate_dfg(g, ops, {"x": 4})["r"] == 19

    def test_node_values_exposed(self, ops):
        b = DFGBuilder()
        x = b.input("x")
        b.op(OpKind.ADD, x, 1, name="inc")
        g = b.build()
        assert evaluate_dfg(g, ops, {"x": 9})["op:inc"] == 10

    def test_output_of_input_passthrough(self, ops):
        b = DFGBuilder()
        x = b.input("x")
        b.op(OpKind.ADD, x, 0, name="d")
        b.output("echo", x)
        g = b.build()
        assert evaluate_dfg(g, ops, {"x": 42})["echo"] == 42

    def test_missing_input_raises(self, ops):
        b = DFGBuilder()
        x = b.input("x")
        b.output("r", x + 1)
        g = b.build()
        with pytest.raises(SimulationError, match="missing"):
            evaluate_dfg(g, ops, {})

    def test_hal_diffeq_euler_step(self, ops):
        inputs = {"x": 1, "dx": 2, "u": 3, "y": 4, "a": 10}
        values = evaluate_dfg(hal_diffeq(), ops, inputs)
        assert values["x1"] == 3
        assert values["y1"] == 4 + 3 * 2
        assert values["u1"] == 3 - (3 * 1) * (3 * 2) - (3 * 4) * 2
        assert values["again"] == 1

    def test_both_branches_evaluated(self, ops):
        from repro.bench.suites import conditional_example

        g = conditional_example()
        values = evaluate_dfg(g, ops, {"a": 5, "c": 2, "d": 3, "e": 4, "f": 6})
        assert values["op:then_mul"] == 12
        assert values["op:else_mul"] == 18
