"""Tests for cycle-accurate schedule/datapath execution."""

import pytest

from repro.core.mfs import mfs_schedule
from repro.core.mfsa import mfsa_synthesize
from repro.dfg.analysis import critical_path_length
from repro.dfg.generators import random_dfg
from repro.dfg.ops import OpKind
from repro.errors import SimulationError
from repro.schedule.types import Schedule
from repro.sim.evaluator import evaluate_dfg
from repro.sim.executor import (
    execute_datapath,
    execute_schedule,
    verify_equivalence,
)
from repro.bench.suites import chained_addsub, hal_diffeq


HAL_INPUTS = {"x": 2, "dx": 3, "u": 5, "y": 7, "a": 100}


class TestExecuteSchedule:
    def test_matches_reference(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=6)
        trace = execute_schedule(result.schedule, HAL_INPUTS)
        reference = evaluate_dfg(hal_diffeq(), timing.ops, HAL_INPUTS)
        for out in result.schedule.dfg.outputs:
            assert trace.outputs[out] == reference[out]

    def test_events_in_step_order(self, timing):
        result = mfs_schedule(hal_diffeq(), timing, cs=6)
        trace = execute_schedule(result.schedule, HAL_INPUTS)
        steps = [event.step for event in trace.events]
        assert steps == sorted(steps)
        assert len(trace.events) == len(hal_diffeq())

    def test_premature_read_detected(self, timing, diamond_dfg):
        bad = Schedule(
            dfg=diamond_dfg,
            timing=timing,
            cs=3,
            starts={"m1": 2, "m2": 1, "s": 2, "t": 3},
        )
        with pytest.raises(SimulationError):
            execute_schedule(bad, {"a": 1, "c": 2, "d": 3, "e": 4})

    def test_chained_schedule_executes(self, timing_chained):
        result = mfs_schedule(chained_addsub(), timing_chained, cs=4)
        inputs = {f"i{k}": k * 3 for k in range(1, 10)}
        trace = execute_schedule(result.schedule, inputs)
        reference = evaluate_dfg(chained_addsub(), timing_chained.ops, inputs)
        assert trace.outputs["result"] == reference["result"]

    def test_multicycle_schedule_executes(self, timing_mul2):
        result = mfs_schedule(hal_diffeq(), timing_mul2, cs=8)
        trace = execute_schedule(result.schedule, HAL_INPUTS)
        reference = evaluate_dfg(hal_diffeq(), timing_mul2.ops, HAL_INPUTS)
        for out in result.schedule.dfg.outputs:
            assert trace.outputs[out] == reference[out]


class TestExecuteDatapath:
    def test_mfsa_result_equivalent(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        trace = verify_equivalence(result.datapath, HAL_INPUTS)
        assert trace.result("x1") == 5

    def test_instances_recorded_in_events(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        trace = execute_datapath(result.datapath, HAL_INPUTS)
        assert all(event.instance is not None for event in trace.events)

    def test_register_writes_recorded(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        trace = execute_datapath(result.datapath, HAL_INPUTS)
        assert trace.register_writes
        for end, register, signal, _value in trace.register_writes:
            assert register < result.datapath.register_count()
            life = result.datapath.lifetimes[signal]
            assert life.birth == end

    def test_register_clobber_detected(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        datapath = result.datapath
        # Sabotage: map two overlapping values onto one register.
        overlapping = [
            signal
            for signal, life in datapath.lifetimes.items()
            if life.needs_register
        ]
        victim, squatter = None, None
        for first in overlapping:
            for second in overlapping:
                if first != second and datapath.lifetimes[first].overlaps(
                    datapath.lifetimes[second]
                ):
                    victim, squatter = first, second
                    break
            if victim:
                break
        assert victim is not None, "test needs overlapping lifetimes"
        datapath.registers.assignment[squatter] = (
            datapath.registers.assignment[victim]
        )
        with pytest.raises(SimulationError):
            execute_datapath(datapath, HAL_INPUTS)

    def test_bad_mux_routing_detected(self, timing, alu_family):
        result = mfsa_synthesize(hal_diffeq(), timing, alu_family, cs=6)
        datapath = result.datapath
        # Sabotage: drop a signal from a mux input list.
        for instance in datapath.instances.values():
            if len(instance.mux.l1) >= 1:
                instance.mux = type(instance.mux)(
                    l1=instance.mux.l1[1:],
                    l2=instance.mux.l2,
                    swapped=instance.mux.swapped,
                )
                break
        with pytest.raises(SimulationError, match="mux|wired"):
            execute_datapath(datapath, HAL_INPUTS)

    def test_random_mfsa_datapaths_equivalent(self, timing, alu_family):
        for seed in range(6):
            g = random_dfg(
                seed=seed,
                n_ops=16,
                kinds=(OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.OR),
            )
            cs = critical_path_length(g, timing) + 2
            result = mfsa_synthesize(g, timing, alu_family, cs=cs)
            inputs = {name: (i * 7) % 23 - 5 for i, name in enumerate(g.inputs)}
            verify_equivalence(result.datapath, inputs)

    def test_register_handover_same_step(self, timing, alu_family):
        # Values whose lifetimes abut (death == birth of the next) share a
        # register; the executor must read the dying value before the
        # newborn's write lands.
        for seed in (3, 4, 5):
            g = random_dfg(seed=seed, n_ops=22)
            cs = critical_path_length(g, timing) + 1
            result = mfsa_synthesize(g, timing, alu_family, cs=cs)
            inputs = {name: i + 1 for i, name in enumerate(g.inputs)}
            verify_equivalence(result.datapath, inputs)
