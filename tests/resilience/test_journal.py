"""Unit tests for the write-ahead job journal."""

from __future__ import annotations

import json

import pytest

from repro.resilience.faults import FaultPlan, InjectedFault
from repro.resilience.journal import (
    JobJournal,
    audit_journal,
    load_records,
)

SPEC = {"algorithm": "mfsa", "design": {"source": "..."}, "params": {"cs": 6}}


def _journal(tmp_path, name="jobs.journal.jsonl"):
    return JobJournal(str(tmp_path / name), fsync=False)


def test_admit_complete_replay(tmp_path):
    journal = _journal(tmp_path)
    journal.record_admit("j1", "key1", SPEC, timeout_s=30.0)
    journal.record_admit("j2", "key2", SPEC)
    journal.record_complete("j1", "done", True, "RESULT", key="key1")
    journal.close()

    state = JobJournal(journal.path).replay()
    assert state.records == 3
    assert not state.torn_tail
    assert [e.job_id for e in state.completed] == ["j1"]
    assert [e.job_id for e in state.pending] == ["j2"]
    done = state.completed[0]
    assert done.status == "done" and done.ok is True
    assert done.text == "RESULT" and done.key == "key1"
    pending = state.pending[0]
    assert pending.spec == SPEC and pending.key == "key2"
    assert pending.timeout_s is None


def test_torn_tail_is_dropped_silently(tmp_path):
    journal = _journal(tmp_path)
    journal.record_admit("j1", "key1", SPEC)
    journal.close()
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "complete", "id": "j1", "status"')  # kill -9

    records, torn = load_records(journal.path)
    assert torn
    assert len(records) == 1

    state = JobJournal(journal.path).replay()
    assert state.torn_tail
    assert [e.job_id for e in state.pending] == ["j1"]


def test_interior_corruption_raises(tmp_path):
    journal = _journal(tmp_path)
    journal.record_admit("j1", "key1", SPEC)
    journal.close()
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write("NOT JSON\n")
        handle.write(
            json.dumps({"event": "admit", "id": "j2", "spec": SPEC}) + "\n"
        )
    with pytest.raises(ValueError, match="corrupt journal record at line 2"):
        load_records(journal.path)


def test_missing_file_replays_empty(tmp_path):
    state = _journal(tmp_path, "never-written.jsonl").replay()
    assert state.records == 0
    assert state.completed == [] and state.pending == []


def test_nonterminal_complete_rejected(tmp_path):
    journal = _journal(tmp_path)
    with pytest.raises(ValueError, match="not a terminal status"):
        journal.record_complete("j1", "running", False, None)


def test_compact_collapses_finished_and_keeps_pending(tmp_path):
    journal = _journal(tmp_path)
    for index in range(3):
        journal.record_admit(f"j{index}", f"key{index}", SPEC)
    journal.record_complete("j0", "done", True, "R0", key="key0")
    journal.record_complete("j1", "failed", False, None, key="key1",
                            error={"type": "X", "message": "boom"})
    state = journal.compact()
    assert [e.job_id for e in state.completed] == ["j0", "j1"]
    assert [e.job_id for e in state.pending] == ["j2"]

    records, torn = load_records(journal.path)
    assert not torn
    # two single complete records + one verbatim pending admit
    assert [r["event"] for r in records] == ["complete", "complete", "admit"]
    assert records[2]["id"] == "j2" and records[2]["spec"] == SPEC

    # the compacted journal replays to the same state
    replayed = JobJournal(journal.path).replay()
    assert [e.job_id for e in replayed.completed] == ["j0", "j1"]
    assert replayed.completed[1].error == {"type": "X", "message": "boom"}
    assert [e.job_id for e in replayed.pending] == ["j2"]


def test_compact_keep_bounds_history(tmp_path):
    journal = _journal(tmp_path)
    for index in range(5):
        journal.record_admit(f"j{index}", f"key{index}", SPEC)
        journal.record_complete(f"j{index}", "done", True, f"R{index}")
    state = journal.compact(keep=2)
    assert len(state.completed) == 5  # replay state reports everything
    records, _torn = load_records(journal.path)
    assert [r["id"] for r in records] == ["j3", "j4"]  # most recent kept


def test_append_seq_continues_after_compact(tmp_path):
    journal = _journal(tmp_path)
    journal.record_admit("j1", "key1", SPEC)
    journal.record_complete("j1", "done", True, "R")
    journal.compact()
    journal.record_admit("j2", "key2", SPEC)
    records, _torn = load_records(journal.path)
    assert records[-1]["seq"] > records[0]["seq"]


def test_journal_write_fault_site(tmp_path):
    journal = _journal(tmp_path)
    plan = FaultPlan.parse("serve.journal.write:n=2")
    with plan.armed():
        journal.record_admit("j1", "key1", SPEC)
        with pytest.raises(InjectedFault):
            journal.record_complete("j1", "done", True, "R")
    # the failed append left no partial record behind
    records, torn = load_records(journal.path)
    assert not torn
    assert [r["event"] for r in records] == ["admit"]


def test_audit_clean_journal(tmp_path):
    journal = _journal(tmp_path)
    journal.record_admit("j1", "key1", SPEC)
    journal.record_complete("j1", "done", True, "R")
    journal.close()
    report = audit_journal(journal.path)
    assert report.ok, report.render()


def test_audit_flags_duplicate_and_orphan(tmp_path):
    path = str(tmp_path / "bad.jsonl")
    rows = [
        {"event": "admit", "id": "j1", "key": "k", "spec": SPEC},
        {"event": "complete", "id": "j1", "status": "done", "ok": True,
         "text": "R"},
        {"event": "complete", "id": "j1", "status": "done", "ok": True,
         "text": "R"},  # duplicate terminal
        {"event": "complete", "id": "j9", "status": "done", "ok": True,
         "text": None},  # orphan done without text
        {"event": "admit", "id": "j2"},  # admit without spec
        {"event": "complete", "id": "j2", "status": "running", "ok": False,
         "text": None},  # non-terminal complete
        {"event": "retrogress", "id": "j3"},  # unknown event
    ]
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")
    report = audit_journal(path)
    kinds = {v.code for v in report.violations}
    assert "journal.duplicate-complete" in kinds
    assert "journal.orphan-complete" in kinds
    assert "journal.admit-without-spec" in kinds
    assert "journal.nonterminal-complete" in kinds
    assert "journal.unknown-event" in kinds


def test_audit_interior_corruption_is_a_violation(tmp_path):
    path = str(tmp_path / "corrupt.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("garbage\n")
        handle.write(json.dumps({"event": "admit", "id": "j1",
                                 "spec": SPEC}) + "\n")
    report = audit_journal(path)
    assert not report.ok
    assert any(v.code == "journal.corrupt" for v in report.violations)


def test_audit_tolerates_torn_tail(tmp_path):
    journal = _journal(tmp_path)
    journal.record_admit("j1", "key1", SPEC)
    journal.close()
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"torn":')
    report = audit_journal(journal.path)
    assert report.ok, report.render()
