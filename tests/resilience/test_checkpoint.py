"""Unit tests for SweepCheckpoint and resume_map."""

from __future__ import annotations

import json
import os

from repro.resilience.checkpoint import SweepCheckpoint, resume_map
from repro.sweep import SweepExecutor


def _path(tmp_path):
    return str(tmp_path / "sweep.ckpt")


def test_record_resume_and_idempotence(tmp_path):
    path = _path(tmp_path)
    with SweepCheckpoint(path, meta={"kind": "t"}) as ckpt:
        ckpt.record("cs=6", {"area": 100})
        ckpt.record("cs=6", {"area": 999})  # idempotent: first write wins
        ckpt.record("cs=7", {"area": 90})
        assert len(ckpt) == 2

    resumed = SweepCheckpoint(path, meta={"kind": "t"})
    assert not resumed.discarded_stale
    assert "cs=6" in resumed and "cs=7" in resumed
    assert resumed.get("cs=6") == {"area": 100}
    assert resumed.get("cs=8", "absent") == "absent"


def test_meta_mismatch_discards_stale_file(tmp_path):
    path = _path(tmp_path)
    with SweepCheckpoint(path, meta={"design": "abc"}) as ckpt:
        ckpt.record("cs=6", 1)

    fresh = SweepCheckpoint(path, meta={"design": "DIFFERENT"})
    assert fresh.discarded_stale
    assert len(fresh) == 0
    assert not os.path.exists(path)  # stale file removed before reuse


def test_torn_tail_dropped_on_load(tmp_path):
    path = _path(tmp_path)
    with SweepCheckpoint(path, meta={}) as ckpt:
        ckpt.record("a", 1)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "b", "val')  # crash mid-write

    resumed = SweepCheckpoint(path, meta={})
    assert not resumed.discarded_stale
    assert "a" in resumed and "b" not in resumed


def test_interior_corruption_discards(tmp_path):
    path = _path(tmp_path)
    with SweepCheckpoint(path, meta={}) as ckpt:
        ckpt.record("a", 1)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("garbage\n")
        handle.write(json.dumps({"key": "b", "value": 2}) + "\n")

    resumed = SweepCheckpoint(path, meta={})
    assert resumed.discarded_stale
    assert len(resumed) == 0


def test_corrupt_header_discards(tmp_path):
    path = _path(tmp_path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("not a header\n")
    resumed = SweepCheckpoint(path, meta={})
    assert resumed.discarded_stale
    assert len(resumed) == 0


def test_checkpoint_in_subdirectory(tmp_path):
    path = str(tmp_path / "deep" / "nested" / "sweep.ckpt")
    with SweepCheckpoint(path, meta={}) as ckpt:
        ckpt.record("a", 1)
    assert os.path.exists(path)


# ---------------------------------------------------------------------------
# resume_map
# ---------------------------------------------------------------------------
def _double(x):
    return x * 2


def test_resume_map_without_checkpoint_is_plain_map():
    executor = SweepExecutor(backend="serial")
    out = resume_map(executor, _double, [1, 2, 3], None, key_fn=str)
    assert out == [2, 4, 6]


def test_resume_map_records_and_skips(tmp_path):
    path = _path(tmp_path)
    calls = []

    def tracked(x):
        calls.append(x)
        return x * 2

    executor = SweepExecutor(backend="serial")
    ckpt = SweepCheckpoint(path, meta={"kind": "t"})
    try:
        first = resume_map(executor, tracked, [1, 2, 3, 4], ckpt, key_fn=str)
    finally:
        ckpt.close()
    assert first == [2, 4, 6, 8]
    assert calls == [1, 2, 3, 4]

    calls.clear()
    ckpt = SweepCheckpoint(path, meta={"kind": "t"})
    try:
        second = resume_map(executor, tracked, [1, 2, 3, 4], ckpt, key_fn=str)
    finally:
        ckpt.close()
    assert second == first
    assert calls == []  # everything restored, nothing re-ran


def test_resume_map_interleaves_restored_and_fresh(tmp_path):
    path = _path(tmp_path)
    executor = SweepExecutor(backend="serial")
    ckpt = SweepCheckpoint(path, meta={})
    ckpt.record("2", -4)  # pre-existing (distinguishable) value for item 2
    calls = []

    def tracked(x):
        calls.append(x)
        return x * 2

    try:
        out = resume_map(executor, tracked, [1, 2, 3], ckpt, key_fn=str)
    finally:
        ckpt.close()
    assert out == [2, -4, 6]  # restored value used verbatim, order kept
    assert calls == [1, 3]


def test_resume_map_encode_decode_round_trip(tmp_path):
    path = _path(tmp_path)
    executor = SweepExecutor(backend="serial")

    def to_pair(x):
        return (x, x * 10)

    encode = lambda pair: list(pair)
    decode = lambda value: tuple(value)

    ckpt = SweepCheckpoint(path, meta={})
    try:
        first = resume_map(
            executor, to_pair, [1, 2], ckpt, key_fn=str,
            encode=encode, decode=decode,
        )
    finally:
        ckpt.close()

    ckpt = SweepCheckpoint(path, meta={})
    try:
        second = resume_map(
            executor, to_pair, [1, 2], ckpt, key_fn=str,
            encode=encode, decode=decode,
        )
    finally:
        ckpt.close()
    assert first == second == [(1, 10), (2, 20)]
    assert all(isinstance(pair, tuple) for pair in second)


def test_resume_map_partial_checkpoint_completes(tmp_path):
    # Simulate an interrupted sweep: keep only the header + first record.
    path = _path(tmp_path)
    executor = SweepExecutor(backend="serial")
    ckpt = SweepCheckpoint(path, meta={})
    try:
        resume_map(executor, _double, [1, 2, 3], ckpt, key_fn=str)
    finally:
        ckpt.close()
    lines = open(path).read().splitlines()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines[:2]) + "\n")

    ckpt = SweepCheckpoint(path, meta={})
    try:
        assert len(ckpt) == 1
        out = resume_map(executor, _double, [1, 2, 3], ckpt, key_fn=str)
        assert len(ckpt) == 3  # the missing items were re-recorded
    finally:
        ckpt.close()
    assert out == [2, 4, 6]
