"""Unit tests for the deterministic fault-injection registry."""

from __future__ import annotations

import pickle

import pytest

from repro.resilience.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    arm,
    fault_point,
)


def test_disarmed_fault_point_is_a_noop():
    assert active_plan() is None
    for site in FAULT_SITES:
        fault_point(site)  # must never raise with no plan armed


def test_nth_call_trigger():
    plan = FaultPlan([FaultRule(site="serve.admit", nth=3)])
    with plan.armed():
        fault_point("serve.admit")
        fault_point("serve.admit")
        with pytest.raises(InjectedFault) as err:
            fault_point("serve.admit")
        fault_point("serve.admit")  # n= fires exactly once
    assert err.value.site == "serve.admit"
    assert err.value.call_index == 3
    assert plan.log == [("serve.admit", 3)]


def test_every_trigger_with_times_cap():
    plan = FaultPlan([FaultRule(site="sweep.submit", every=2, times=2)])
    fired = 0
    with plan.armed():
        for _ in range(10):
            try:
                fault_point("sweep.submit")
            except InjectedFault:
                fired += 1
    assert fired == 2
    assert plan.log == [("sweep.submit", 2), ("sweep.submit", 4)]
    assert plan.fired("sweep.submit") == 2
    assert plan.fired() == 2


def test_probability_trigger_is_seed_deterministic():
    spec = "serve.cache.put:p=0.5"
    plan_a = FaultPlan.parse(spec, seed=42)
    plan_b = FaultPlan.parse(spec, seed=42)
    for plan in (plan_a, plan_b):
        with plan.armed():
            for _ in range(50):
                try:
                    fault_point("serve.cache.put")
                except InjectedFault:
                    pass
    assert plan_a.log == plan_b.log
    assert plan_a.log  # p=0.5 over 50 calls fires at least once


def test_different_seeds_diverge():
    spec = "serve.cache.put:p=0.5"
    logs = []
    for seed in (1, 2):
        plan = FaultPlan.parse(spec, seed=seed)
        with plan.armed():
            for _ in range(50):
                try:
                    fault_point("serve.cache.put")
                except InjectedFault:
                    pass
        logs.append(plan.log)
    assert logs[0] != logs[1]


def test_reset_rewinds_counters_log_and_stream():
    plan = FaultPlan.parse("serve.admit:p=0.5:times=3", seed=9)
    with plan.armed():
        for _ in range(20):
            try:
                fault_point("serve.admit")
            except InjectedFault:
                pass
    first_log = list(plan.log)
    plan.reset()
    assert plan.log == [] and plan.calls == {}
    with plan.armed():
        for _ in range(20):
            try:
                fault_point("serve.admit")
            except InjectedFault:
                pass
    assert plan.log == first_log  # identical replay after reset


def test_parse_round_trip_and_validation():
    plan = FaultPlan.parse(
        "serve.cache.put:n=2,sweep.submit:p=0.25:times=3", seed=7
    )
    assert set(plan.rules) == {"serve.cache.put", "sweep.submit"}
    assert plan.rules["serve.cache.put"].nth == 2
    assert plan.rules["sweep.submit"].probability == 0.25
    assert plan.rules["sweep.submit"].times == 3
    assert plan.validate() == []
    assert FaultPlan.parse("bogus.site:n=1").validate() == [
        "rule for unknown fault site 'bogus.site'"
    ]


@pytest.mark.parametrize(
    "spec",
    [
        "serve.admit",  # no trigger
        "serve.admit:n",  # malformed clause
        "serve.admit:frequency=2",  # unknown trigger
        "serve.admit:n=0",  # n < 1
        "serve.admit:p=1.5",  # p out of range
        "serve.admit:times=1",  # times alone can never fire
        "serve.admit:n=1,serve.admit:n=2",  # duplicate site
    ],
)
def test_bad_specs_raise(spec):
    with pytest.raises(ValueError):
        FaultPlan.parse(spec)


def test_armed_context_restores_previous_plan():
    outer = FaultPlan.parse("serve.admit:n=1")
    inner = FaultPlan.parse("serve.dispatch:n=1")
    with outer.armed():
        assert active_plan() is outer
        with inner.armed():
            assert active_plan() is inner
        assert active_plan() is outer
    assert active_plan() is None


def test_armed_context_restores_on_exception():
    plan = FaultPlan.parse("serve.admit:n=1")
    with pytest.raises(RuntimeError):
        with plan.armed():
            raise RuntimeError("boom")
    assert active_plan() is None


def test_arm_returns_previous():
    plan = FaultPlan.parse("serve.admit:n=1")
    assert arm(plan) is None
    try:
        assert active_plan() is plan
    finally:
        assert arm(None) is plan
    assert active_plan() is None


def test_injected_fault_pickles():
    # Faults can cross a process-pool boundary inside worker tracebacks.
    fault = InjectedFault("sweep.submit", 4)
    clone = pickle.loads(pickle.dumps(fault))
    assert clone.site == "sweep.submit"
    assert clone.call_index == 4


def test_fault_sites_cover_the_production_layers():
    # The registry names every layer the PR threads faults through.
    prefixes = {site.split(".")[0] for site in FAULT_SITES}
    assert prefixes == {"serve", "sweep", "scheduler", "router", "shard"}
    # The elastic-fleet sites are router-side: they fire in the router
    # process so router-armed plans can chaos-test them.
    assert "router.handoff" in FAULT_SITES
    assert "shard.replica.put" in FAULT_SITES
