"""Unit tests for RetryPolicy and CircuitBreaker."""

from __future__ import annotations

import pytest

from repro.resilience.retry import CircuitBreaker, CircuitOpen, RetryPolicy


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
def test_seeded_policy_is_deterministic():
    a = RetryPolicy(retries=6, seed=11)
    b = RetryPolicy(retries=6, seed=11)
    assert a.delays() == b.delays()


def test_delays_respect_exponential_ceiling_and_cap():
    policy = RetryPolicy(
        retries=8, base_s=0.05, cap_s=2.0, multiplier=2.0, seed=3
    )
    for attempt in range(8):
        ceiling = min(2.0, 0.05 * 2.0**attempt)
        for _ in range(20):
            delay = policy.delay(attempt)
            assert 0.0 <= delay <= ceiling


def test_retry_after_floor_wins():
    policy = RetryPolicy(retries=3, base_s=0.01, cap_s=0.02, seed=0)
    # the ceiling is 0.02s; a 1.5s Retry-After must still be honoured
    assert policy.delay(0, floor_s=1.5) == 1.5
    assert all(d >= 0.25 for d in policy.delays(floor_s=0.25))


def test_delays_length_matches_budget():
    assert len(RetryPolicy(retries=0).delays()) == 0
    assert len(RetryPolicy(retries=4).delays()) == 4


@pytest.mark.parametrize(
    "kwargs",
    [
        {"retries": -1},
        {"base_s": 0.0},
        {"cap_s": -1.0},
        {"multiplier": 0.5},
        {"jitter": "none"},
    ],
)
def test_bad_policy_parameters_raise(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_equal_jitter_delays_are_monotone_while_ceilings_double():
    """The respawn-supervision guarantee: successive equal-jitter delays
    never shrink (full jitter cannot promise this — delay(1) may draw
    near 0 while delay(0) drew near its ceiling)."""
    for seed in range(20):
        policy = RetryPolicy(
            retries=8, base_s=0.05, cap_s=100.0, seed=seed, jitter="equal"
        )
        delays = [policy.delay(attempt) for attempt in range(8)]
        assert all(a <= b for a, b in zip(delays, delays[1:])), delays


def test_equal_jitter_stays_in_the_upper_half_of_the_ceiling():
    policy = RetryPolicy(
        retries=6, base_s=0.1, cap_s=2.0, seed=5, jitter="equal"
    )
    for attempt in range(6):
        ceiling = min(2.0, 0.1 * 2.0**attempt)
        for _ in range(20):
            delay = policy.delay(attempt)
            assert ceiling / 2.0 <= delay <= ceiling


def test_string_seeds_give_independent_deterministic_streams():
    """The router seeds one stream per shard: same string, same stream;
    different shard names, different streams."""
    streams = {
        name: RetryPolicy(retries=5, seed=name, jitter="equal").delays()
        for name in ("respawn:0:shard-0", "respawn:0:shard-1")
    }
    twin = RetryPolicy(
        retries=5, seed="respawn:0:shard-0", jitter="equal"
    ).delays()
    assert streams["respawn:0:shard-0"] == twin
    assert streams["respawn:0:shard-0"] != streams["respawn:0:shard-1"]


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_opens_at_threshold_and_fails_fast():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=3, reset_s=5.0, clock=clock)
    for _ in range(3):
        breaker.before_call()
        breaker.record_failure()
    assert breaker.state == "open"
    with pytest.raises(CircuitOpen) as err:
        breaker.before_call()
    assert err.value.failures == 3
    assert err.value.retry_in_s == pytest.approx(5.0)


def test_breaker_half_open_probe_then_close():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=2, reset_s=5.0, clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    clock.now = 5.0
    assert breaker.state == "half-open"
    breaker.before_call()  # the single probe is admitted
    with pytest.raises(CircuitOpen):
        breaker.before_call()  # concurrent caller still fails fast
    breaker.record_success()
    assert breaker.state == "closed"
    breaker.before_call()  # back to normal


def test_breaker_probe_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=2, reset_s=5.0, clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    clock.now = 5.0
    breaker.before_call()  # probe
    breaker.record_failure()
    assert breaker.state == "open"  # reopened from the probe's time
    with pytest.raises(CircuitOpen):
        breaker.before_call()
    clock.now = 10.0
    assert breaker.state == "half-open"


def test_success_resets_consecutive_count():
    breaker = CircuitBreaker(threshold=2, reset_s=5.0, clock=FakeClock())
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == "closed"  # never two *consecutive* failures


@pytest.mark.parametrize("kwargs", [{"threshold": 0}, {"reset_s": -1.0}])
def test_bad_breaker_parameters_raise(kwargs):
    with pytest.raises(ValueError):
        CircuitBreaker(**kwargs)
