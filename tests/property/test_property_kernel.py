"""Property-based tests (hypothesis): scalar and vector kernels agree.

Strategy: generate random DFGs through the seeded generator, run MFS
and MFSA under both kernels, and assert the results are *byte-identical*
— schedule starts, Liapunov trajectories, FU mixes, datapath costs and
(where meaningful) perf counters.  The vector kernel is a pure
performance layer; any observable divergence is a bug, so these tests
lean on :mod:`repro.check.kernels` for the comparison and only add the
hypothesis-driven workload space on top.

Counter caveat: with ``record_alternatives=False`` the vector MFSA path
prunes whole columns via a zero-mux lower bound, so mux/operand *cache*
counters (how often the optimiser was consulted) legitimately differ;
``comparable_counters`` excludes them.  The whole module skips when
numpy is not installed (there is no vector kernel to compare).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocation.mux import clear_mux_memo
from repro.check.kernels import (
    check_mfs_kernels,
    check_mfsa_kernels,
    comparable_counters,
    vector_available,
)
from repro.core.liapunov import LiapunovWeights
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.generators import random_conditional_dfg, random_dfg
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library
from repro.perf import PerfCounters

pytestmark = pytest.mark.skipif(
    not vector_available(), reason="numpy not installed (no vector kernel)"
)

TIMING = TimingModel(ops=standard_operation_set())
TIMING_MUL2 = TimingModel(ops=standard_operation_set(mul_latency=2))
LIBRARY = datapath_library()

dfg_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),   # seed
    st.integers(min_value=1, max_value=40),       # n_ops
    st.integers(min_value=1, max_value=6),        # n_inputs
    st.integers(min_value=1, max_value=12),       # locality
)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(params=dfg_params, slack=st.integers(min_value=0, max_value=8))
@RELAXED
def test_mfs_kernels_byte_identical(params, slack):
    seed, n_ops, n_inputs, locality = params
    g = random_dfg(
        seed=seed, n_ops=n_ops, n_inputs=n_inputs, locality=locality
    )
    cs = critical_path_length(g, TIMING) + slack
    report = check_mfs_kernels(g, TIMING, cs=cs)
    assert report.ok, report.render()


@given(
    params=dfg_params,
    slack=st.integers(min_value=0, max_value=6),
    style=st.sampled_from([1, 2]),
)
@RELAXED
def test_mfsa_kernels_byte_identical(params, slack, style):
    seed, n_ops, n_inputs, locality = params
    g = random_dfg(
        seed=seed, n_ops=n_ops, n_inputs=n_inputs, locality=locality
    )
    cs = critical_path_length(g, TIMING) + slack
    report = check_mfsa_kernels(g, TIMING, LIBRARY, cs=cs, style=style)
    assert report.ok, report.render()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=4, max_value=32),
    slack=st.integers(min_value=0, max_value=4),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_conditional_dfgs_agree(seed, n_ops, slack):
    g = random_conditional_dfg(seed=seed, n_ops=n_ops)
    cs = critical_path_length(g, TIMING) + slack
    report = check_mfs_kernels(g, TIMING, cs=cs)
    assert report.ok, report.render()
    report = check_mfsa_kernels(g, TIMING, LIBRARY, cs=cs)
    assert report.ok, report.render()


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_nondefault_weights_and_latency_agree(seed):
    """Eager weights + multi-cycle multiplies hit the folded-frame paths."""
    g = random_dfg(seed=seed, n_ops=24)
    cs = critical_path_length(g, TIMING_MUL2) + 3
    report = check_mfsa_kernels(
        g,
        TIMING_MUL2,
        LIBRARY,
        cs=cs,
        weights=LiapunovWeights(1.0, 2.0, 0.5, 1.5),
    )
    assert report.ok, report.render()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    slack=st.integers(min_value=0, max_value=4),
)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_counters_identical_when_alternatives_recorded(seed, slack):
    """With pruning off, *every* counter matches — including mux/operand."""
    g = random_dfg(seed=seed, n_ops=20)
    cs = critical_path_length(g, TIMING) + slack
    counters = {}
    for kern in ("scalar", "vector"):
        clear_mux_memo()
        perf = PerfCounters()
        MFSAScheduler(
            g,
            TIMING,
            LIBRARY,
            cs=cs,
            kernel=kern,
            perf=perf,
            record_alternatives=True,
        ).run()
        counters[kern] = dict(perf.counters)
    assert counters["scalar"] == counters["vector"]


def test_comparable_counters_filters_mux_and_operand():
    perf = PerfCounters()
    perf.incr("mfsa.candidates_evaluated")
    perf.incr("mfsa.mux_cache_hits")
    perf.incr("mfsa.operand_cache_misses")
    perf.incr("mux.canon_hits")
    kept = comparable_counters(perf)
    assert kept == {"mfsa.candidates_evaluated": 1}
