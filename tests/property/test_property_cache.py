"""Property-based tests (hypothesis) for the serve ResultCache.

Strategy: drive a :class:`~repro.serve.cache.ResultCache` with random
operation sequences (put/get/peek/clear) against a pure-Python model of
an LRU map, then assert the cache's global invariants — the bound is
never exceeded, eviction order is exactly least-recently-used, the
hit/miss/eviction counters are conserved, and ``peek`` never disturbs
recency.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.cache import ResultCache

# A small key space forces collisions, hits and evictions to all occur.
keys = st.sampled_from([f"k{i}" for i in range(8)])
values = st.text(min_size=0, max_size=8)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("get"), keys, st.just("")),
        st.tuples(st.just("peek"), keys, st.just("")),
        st.tuples(st.just("clear"), st.just(""), st.just("")),
    ),
    max_size=60,
)

RELAXED = settings(max_examples=120, deadline=None)


class ModelLRU:
    """Reference LRU: a plain dict ordered oldest-first by recency."""

    def __init__(self, bound):
        self.bound = bound
        self.entries = {}  # insertion order == recency order (oldest first)
        self.evicted = 0

    def touch(self, key):
        self.entries[key] = self.entries.pop(key)

    def put(self, key, value):
        self.entries.pop(key, None)
        self.entries[key] = value
        while len(self.entries) > self.bound:
            oldest = next(iter(self.entries))
            del self.entries[oldest]
            self.evicted += 1


def _run(cache, model, ops):
    hits = misses = 0
    for op, key, value in ops:
        if op == "put":
            cache.put(key, value)
            model.put(key, value)
        elif op == "get":
            got = cache.get(key)
            expected = model.entries.get(key)
            assert got == expected
            if expected is None:
                misses += 1
            else:
                hits += 1
                model.touch(key)
        elif op == "peek":
            assert cache.peek(key) == model.entries.get(key)
        else:
            cache.clear()
            model.entries.clear()
    return hits, misses


@given(bound=st.integers(min_value=1, max_value=5), ops=operations)
@RELAXED
def test_cache_matches_lru_model(bound, ops):
    cache = ResultCache(max_entries=bound)
    model = ModelLRU(bound)
    hits, misses = _run(cache, model, ops)

    # contents and recency agree with the model after every sequence
    assert len(cache) == len(model.entries)
    for key, value in model.entries.items():
        assert key in cache
        assert cache.peek(key) == value

    # the bound was never exceeded (checked terminally; put() enforces
    # it synchronously so an interior violation would also surface here
    # through the eviction count)
    assert len(cache) <= bound

    # counter conservation
    assert cache.hits == hits
    assert cache.misses == misses
    assert cache.evictions == model.evicted


@given(bound=st.integers(min_value=1, max_value=5), ops=operations)
@RELAXED
def test_eviction_order_is_least_recently_used(bound, ops):
    cache = ResultCache(max_entries=bound)
    model = ModelLRU(bound)
    _run(cache, model, ops)
    # one more put of a fresh key evicts exactly the model's oldest entry
    survivors_before = list(model.entries)
    cache.put("fresh-key", "v")
    model.put("fresh-key", "v")
    if len(survivors_before) == bound and "fresh-key" not in survivors_before:
        evicted_key = survivors_before[0]
        assert evicted_key not in cache
    for key in model.entries:
        assert key in cache


@given(ops=operations)
@RELAXED
def test_peek_never_disturbs_recency(ops):
    bound = 2
    cache = ResultCache(max_entries=bound)
    model = ModelLRU(bound)
    _run(cache, model, ops)
    hits, misses = cache.hits, cache.misses
    # peek every key (present or not): counters and recency must not move
    order_before = [key for key in model.entries if cache.peek(key) is not None]
    for key in [f"k{i}" for i in range(8)]:
        cache.peek(key)
    assert (cache.hits, cache.misses) == (hits, misses)
    # fill the cache with fresh keys; eviction order still matches the
    # model, proving the peeks did not refresh anything
    for index, _key in enumerate(order_before):
        cache.put(f"fresh{index}", "v")
        model.put(f"fresh{index}", "v")
    assert set(model.entries) == {
        key
        for key in list(model.entries) + order_before
        if key in cache
    }


@given(value=values)
@RELAXED
def test_put_overwrite_refreshes_recency(value):
    cache = ResultCache(max_entries=2)
    cache.put("a", "1")
    cache.put("b", "2")
    cache.put("a", value)  # overwrite refreshes recency of "a"
    cache.put("c", "3")  # evicts "b", the least recently used
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.peek("a") == value


def test_hit_rate_and_bound_validation():
    import pytest

    with pytest.raises(ValueError):
        ResultCache(max_entries=0)
    cache = ResultCache(max_entries=2)
    assert cache.hit_rate() is None
    cache.put("a", "1")
    cache.get("a")
    cache.get("missing")
    assert cache.hit_rate() == 0.5
