"""Property-based tests for the RTL layer: for any random design, the
dataflow executor, the controller-driven executor and the reference
evaluator must agree, and the emitted Verilog must be structurally sane."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.generators import random_dfg
from repro.dfg.ops import OpKind, standard_operation_set
from repro.library.ncr import datapath_library
from repro.rtl.controller import build_controller
from repro.rtl.structural import emit_structural_verilog
from repro.rtl.verilog import emit_verilog
from repro.sim.evaluator import evaluate_dfg
from repro.sim.executor import execute_datapath
from repro.sim.rtl_executor import execute_controller

TIMING1 = TimingModel(ops=standard_operation_set())
TIMING2 = TimingModel(ops=standard_operation_set(mul_latency=2))
LIBRARY = datapath_library()

RELAXED = settings(max_examples=25, deadline=None)

design_params = st.tuples(
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=1, max_value=20),
    st.sampled_from([1, 2]),  # style
    st.booleans(),  # 2-cycle multiplier
)


def synthesize(seed, n_ops, style, mul2):
    timing = TIMING2 if mul2 else TIMING1
    g = random_dfg(
        seed=seed,
        n_ops=n_ops,
        kinds=(OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.AND, OpKind.OR),
    )
    cs = critical_path_length(g, timing) + 2
    return (
        MFSAScheduler(g, timing, LIBRARY, cs=cs, style=style).run(),
        g,
        timing,
    )


@given(params=design_params)
@RELAXED
def test_three_way_simulation_agreement(params):
    result, g, timing = synthesize(*params)
    inputs = {name: (i * 11) % 17 - 8 for i, name in enumerate(g.inputs)}
    reference = evaluate_dfg(g, timing.ops, inputs)
    dataflow = execute_datapath(result.datapath, inputs)
    rtl = execute_controller(result.datapath, inputs)
    for out in g.outputs:
        assert dataflow.outputs[out] == reference[out]
        assert rtl.outputs[out] == reference[out]


@given(params=design_params)
@RELAXED
def test_controller_tables_complete(params):
    result, g, _timing = synthesize(*params)
    controller = build_controller(result.datapath)
    schedule = result.schedule
    for name in g.node_names():
        key = result.datapath.binding[name]
        start = schedule.start(name)
        assert (
            controller.state(start).alu_functions[key]
            == g.node(name).kind
        )


@given(params=design_params)
@RELAXED
def test_verilog_emitters_are_balanced(params):
    result, _g, _timing = synthesize(*params)
    for text in (
        emit_verilog(result.datapath),
        emit_structural_verilog(result.datapath),
    ):
        module_lines = [
            line
            for line in text.splitlines()
            if line.startswith("module ")
        ]
        assert len(module_lines) == 1
        assert text.count("endmodule") == 1
        assert text.count("(") == text.count(")")
