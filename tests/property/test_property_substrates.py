"""Property-based tests for the substrate layers (analysis, allocation)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.lifetimes import Lifetime
from repro.allocation.mux import MuxOperand, optimize_mux_inputs
from repro.allocation.registers import (
    left_edge_allocate,
    max_simultaneously_live,
)
from repro.dfg.analysis import (
    TimingModel,
    alap_schedule,
    asap_schedule,
    critical_path_length,
)
from repro.dfg.generators import random_dfg
from repro.dfg.ops import standard_operation_set
from repro.schedule.types import Schedule

OPS1 = standard_operation_set()
OPS2 = standard_operation_set(mul_latency=2)
TIMING1 = TimingModel(ops=OPS1)
TIMING2 = TimingModel(ops=OPS2)
# 45 ns clock: fits the 40 ns multiply, chains up to four 10 ns adds.
TIMING_CHAINED = TimingModel(ops=OPS1, clock_period_ns=45.0)

RELAXED = settings(max_examples=50, deadline=None)


# ----------------------------------------------------------------------
# ASAP/ALAP properties
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=1, max_value=40),
    slack=st.integers(min_value=0, max_value=6),
    timing=st.sampled_from([TIMING1, TIMING2, TIMING_CHAINED]),
)
@RELAXED
def test_asap_alap_sandwich(seed, n_ops, slack, timing):
    """ASAP <= ALAP everywhere, and both are valid schedules."""
    g = random_dfg(seed=seed, n_ops=n_ops)
    cs = critical_path_length(g, timing) + slack
    asap = asap_schedule(g, timing)
    alap = alap_schedule(g, timing, cs)
    for name in g.node_names():
        assert asap[name] <= alap[name]
    Schedule(dfg=g, timing=timing, cs=cs, starts=asap).validate()
    Schedule(dfg=g, timing=timing, cs=cs, starts=alap).validate()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=1, max_value=40),
)
@RELAXED
def test_alap_at_critical_path_pins_some_op(seed, n_ops):
    """With cs == critical path there is at least one zero-mobility op."""
    g = random_dfg(seed=seed, n_ops=n_ops)
    cs = critical_path_length(g, TIMING1)
    asap = asap_schedule(g, TIMING1)
    alap = alap_schedule(g, TIMING1, cs)
    assert any(asap[name] == alap[name] for name in asap)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=1, max_value=40),
    slack=st.integers(min_value=1, max_value=6),
)
@RELAXED
def test_alap_shifts_linearly_with_budget(seed, n_ops, slack):
    g = random_dfg(seed=seed, n_ops=n_ops)
    cs = critical_path_length(g, TIMING1)
    base = alap_schedule(g, TIMING1, cs)
    shifted = alap_schedule(g, TIMING1, cs + slack)
    for name in base:
        assert shifted[name] == base[name] + slack


# ----------------------------------------------------------------------
# register allocation properties
# ----------------------------------------------------------------------
lifetime_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=8),
    ),
    min_size=0,
    max_size=40,
)


@given(raw=lifetime_lists)
@RELAXED
def test_left_edge_is_optimal_and_conflict_free(raw):
    lifetimes = [
        Lifetime(f"v{i}", birth, birth + span)
        for i, (birth, span) in enumerate(raw)
    ]
    allocation = left_edge_allocate(lifetimes)
    assert allocation.count == max_simultaneously_live(lifetimes)
    for track in allocation.tracks:
        for i, first in enumerate(track):
            for second in track[i + 1:]:
                assert not first.overlaps(second)


@given(raw=lifetime_lists)
@RELAXED
def test_every_real_lifetime_assigned(raw):
    lifetimes = [
        Lifetime(f"v{i}", birth, birth + span)
        for i, (birth, span) in enumerate(raw)
    ]
    allocation = left_edge_allocate(lifetimes)
    for life in lifetimes:
        if life.needs_register:
            assert life.value in allocation.assignment
        else:
            assert life.value not in allocation.assignment


# ----------------------------------------------------------------------
# mux optimiser properties
# ----------------------------------------------------------------------
mux_cases = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),  # left signal id
        st.integers(min_value=0, max_value=5),  # right signal id
        st.booleans(),  # commutative
    ),
    min_size=1,
    max_size=10,
)


@given(case=mux_cases)
@RELAXED
def test_mux_assignment_routes_every_operand(case):
    operands = [
        MuxOperand(op=f"o{i}", left=f"s{l}", right=f"s{r}", commutative=c)
        for i, (l, r, c) in enumerate(case)
    ]
    assignment = optimize_mux_inputs(operands)
    for item in operands:
        left_port = assignment.port_of(item.op, textual_left=True)
        right_port = assignment.port_of(item.op, textual_left=False)
        l_list = assignment.l1 if left_port == 1 else assignment.l2
        r_list = assignment.l1 if right_port == 1 else assignment.l2
        assert item.left in l_list
        assert item.right in r_list


@given(case=mux_cases)
@RELAXED
def test_mux_assignment_never_exceeds_naive(case):
    operands = [
        MuxOperand(op=f"o{i}", left=f"s{l}", right=f"s{r}", commutative=c)
        for i, (l, r, c) in enumerate(case)
    ]
    assignment = optimize_mux_inputs(operands)
    naive = len({o.left for o in operands}) + len({o.right for o in operands})
    assert assignment.total_inputs <= naive


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=1, max_value=30),
)
@RELAXED
def test_json_round_trip_preserves_everything(seed, n_ops):
    from repro.io.jsonio import dfg_from_json, dfg_to_json

    g = random_dfg(seed=seed, n_ops=n_ops)
    restored = dfg_from_json(dfg_to_json(g, indent=None))
    assert restored.node_names() == g.node_names()
    assert restored.inputs == g.inputs
    assert restored.outputs == g.outputs
    for node in g:
        other = restored.node(node.name)
        assert (other.kind, other.operands, other.branch) == (
            node.kind,
            node.operands,
            node.branch,
        )


@given(case=mux_cases)
@RELAXED
def test_noncommutative_operands_never_swapped(case):
    operands = [
        MuxOperand(op=f"o{i}", left=f"s{l}", right=f"s{r}", commutative=c)
        for i, (l, r, c) in enumerate(case)
    ]
    assignment = optimize_mux_inputs(operands)
    for item in operands:
        if not item.commutative:
            assert assignment.swapped[item.op] is False
