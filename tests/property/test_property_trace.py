"""Property-based tests (hypothesis) for the trace layer.

Strategy: random DFGs through the seeded generator, traced through
MFS/MFSA, then assert the trace-layer invariants — JSONL round-trip
identity, schema validity, a clean replayed §2.2 descent audit, and
per-node monotone non-increasing replayed energy sequences.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocation.mux import clear_mux_memo
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.generators import random_dfg
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library
from repro.trace import (
    TraceRecorder,
    check_descent,
    node_energy_sequences,
    parse_jsonl,
    split_runs,
    validate_events,
)

TIMING = TimingModel(ops=standard_operation_set())
LIBRARY = datapath_library()

dfg_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),   # seed
    st.integers(min_value=1, max_value=25),       # n_ops
    st.integers(min_value=1, max_value=6),        # n_inputs
    st.integers(min_value=1, max_value=12),       # locality
)

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def traced_run(params, scheduler, slack=1):
    seed, n_ops, n_inputs, locality = params
    g = random_dfg(seed=seed, n_ops=n_ops, n_inputs=n_inputs, locality=locality)
    cs = critical_path_length(g, TIMING) + slack
    trace = TraceRecorder()
    if scheduler == "mfs":
        MFSScheduler(g, TIMING, cs=cs, mode="time", trace=trace).run()
    else:
        clear_mux_memo()
        MFSAScheduler(g, TIMING, LIBRARY, cs=cs, trace=trace).run()
    return trace


@given(params=dfg_params, slack=st.integers(min_value=0, max_value=4))
@RELAXED
def test_mfs_trace_roundtrips_and_validates(params, slack):
    trace = traced_run(params, "mfs", slack)
    events = parse_jsonl(trace.to_jsonl())
    assert events == trace.events()
    assert validate_events(events) == []


@given(params=dfg_params)
@RELAXED
def test_mfsa_trace_roundtrips_and_validates(params):
    trace = traced_run(params, "mfsa")
    events = parse_jsonl(trace.to_jsonl())
    assert events == trace.events()
    assert validate_events(events) == []


@given(params=dfg_params)
@RELAXED
def test_mfsa_replayed_descent_is_clean(params):
    trace = traced_run(params, "mfsa")
    assert check_descent(parse_jsonl(trace.to_jsonl())) == []


@given(params=dfg_params, slack=st.integers(min_value=0, max_value=4))
@RELAXED
def test_replayed_node_energies_are_monotone_non_increasing(params, slack):
    """§2.2: once an operation's energy is priced, later repricings of the
    same operation (after other commits shrank the frames) never raise it.
    """
    trace = traced_run(params, "mfs", slack)
    for run in split_runs(parse_jsonl(trace.to_jsonl())):
        for energies in node_energy_sequences(run).values():
            assert all(a >= b for a, b in zip(energies, energies[1:]))
