"""Property-based tests (hypothesis) for the core algorithms.

Strategy: generate random DFGs through the seeded generator (so shrinking
works on the seed/size space), then assert the library's global
invariants — schedule validity, Liapunov monotonicity, lower bounds,
simulator equivalence.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.generators import random_conditional_dfg, random_dfg
from repro.dfg.ops import OpKind, standard_operation_set
from repro.library.ncr import datapath_library
from repro.sim.evaluator import evaluate_dfg
from repro.sim.executor import execute_schedule, verify_equivalence

OPS1 = standard_operation_set()
OPS2 = standard_operation_set(mul_latency=2)
TIMING1 = TimingModel(ops=OPS1)
TIMING2 = TimingModel(ops=OPS2)
LIBRARY = datapath_library()

dfg_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),   # seed
    st.integers(min_value=1, max_value=40),       # n_ops
    st.integers(min_value=1, max_value=6),        # n_inputs
    st.integers(min_value=1, max_value=12),       # locality
)

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(params=dfg_params, slack=st.integers(min_value=0, max_value=5))
@RELAXED
def test_mfs_schedules_are_always_valid(params, slack):
    seed, n_ops, n_inputs, locality = params
    g = random_dfg(seed=seed, n_ops=n_ops, n_inputs=n_inputs, locality=locality)
    cs = critical_path_length(g, TIMING1) + slack
    result = MFSScheduler(g, TIMING1, cs=cs, mode="time").run()
    result.schedule.validate()
    result.trajectory.verify()


@given(params=dfg_params)
@RELAXED
def test_mfs_meets_distribution_lower_bounds(params):
    seed, n_ops, n_inputs, locality = params
    g = random_dfg(seed=seed, n_ops=n_ops, n_inputs=n_inputs, locality=locality)
    cs = critical_path_length(g, TIMING1) + 2
    result = MFSScheduler(g, TIMING1, cs=cs, mode="time").run()
    for kind, count in g.count_by_kind().items():
        assert result.fu_counts.get(kind, 0) >= -(-count // cs)


@given(params=dfg_params)
@RELAXED
def test_mfs_schedule_execution_matches_reference(params):
    seed, n_ops, n_inputs, locality = params
    g = random_dfg(seed=seed, n_ops=n_ops, n_inputs=n_inputs, locality=locality)
    cs = critical_path_length(g, TIMING1) + 1
    result = MFSScheduler(g, TIMING1, cs=cs, mode="time").run()
    inputs = {name: (i * 13) % 31 - 7 for i, name in enumerate(g.inputs)}
    trace = execute_schedule(result.schedule, inputs)
    reference = evaluate_dfg(g, OPS1, inputs)
    for out in g.outputs:
        assert trace.outputs[out] == reference[out]


@given(params=dfg_params)
@RELAXED
def test_mfs_multicycle_schedules_valid(params):
    seed, n_ops, n_inputs, locality = params
    g = random_dfg(seed=seed, n_ops=n_ops, n_inputs=n_inputs, locality=locality)
    cs = critical_path_length(g, TIMING2) + 2
    result = MFSScheduler(g, TIMING2, cs=cs, mode="time").run()
    result.schedule.validate()


@given(
    params=dfg_params,
    budget_extra=st.integers(min_value=0, max_value=4),
)
@RELAXED
def test_mfs_budget_slack_never_requires_more_fus(params, budget_extra):
    """More control steps never *require* more hardware.

    The guarantee is about feasibility, not the heuristic's output: any
    schedule legal at the tight budget is legal, with the same FU
    counts, at every looser budget.  The greedy Liapunov descent itself
    is not strictly monotone — e.g. the 40-op ``random_dfg(seed=1503)``
    spends one extra FU when handed one extra step — so asserting
    ``sum(loose.fu_counts) <= sum(tight.fu_counts)`` over random DFGs
    is falsifiable and was (this test's previous, stronger form).
    """
    seed, n_ops, n_inputs, locality = params
    g = random_dfg(seed=seed, n_ops=n_ops, n_inputs=n_inputs, locality=locality)
    base = critical_path_length(g, TIMING1)
    tight = MFSScheduler(g, TIMING1, cs=base, mode="time").run()
    padded = tight.schedule.copy()
    padded.cs = base + 1 + budget_extra
    padded.validate(resource_bounds=tight.fu_counts)
    assert padded.fu_usage() == tight.fu_counts


@given(seed=st.integers(min_value=0, max_value=10_000))
@RELAXED
def test_conditional_dfgs_schedule_validly(seed):
    g = random_conditional_dfg(seed=seed, n_ops=20)
    cs = critical_path_length(g, TIMING1) + 2
    result = MFSScheduler(g, TIMING1, cs=cs, mode="time").run()
    result.schedule.validate()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=1, max_value=24),
    style=st.sampled_from([1, 2]),
)
@settings(max_examples=25, deadline=None)
def test_mfsa_datapaths_are_functionally_equivalent(seed, n_ops, style):
    g = random_dfg(
        seed=seed,
        n_ops=n_ops,
        kinds=(OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.AND, OpKind.OR),
    )
    cs = critical_path_length(g, TIMING1) + 2
    result = MFSAScheduler(g, TIMING1, LIBRARY, cs=cs, style=style).run()
    result.schedule.validate()
    result.trajectory.verify()
    if style == 2:
        assert not result.datapath.has_self_loop()
    inputs = {name: (i * 7) % 19 - 4 for i, name in enumerate(g.inputs)}
    verify_equivalence(result.datapath, inputs)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=25, deadline=None)
def test_mfsa_register_count_is_optimal_for_its_schedule(seed, n_ops):
    from repro.allocation.registers import max_simultaneously_live

    g = random_dfg(seed=seed, n_ops=n_ops)
    cs = critical_path_length(g, TIMING1) + 1
    result = MFSAScheduler(g, TIMING1, LIBRARY, cs=cs).run()
    datapath = result.datapath
    assert datapath.register_count() == max_simultaneously_live(
        datapath.lifetimes.values()
    )
