"""Property test: every MFS/MFSA run passes the repro.check audit.

This is the acceptance property of the invariant-checker subsystem —
whatever DFG the seeded generator produces, the full audit (schedule
legality, frame containment, grid occupancy, Liapunov descent, and for
MFSA datapath/netlist consistency) finds nothing to complain about.  A
smaller differential batch cross-validates against the baseline
schedulers as well.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check import check_mfs_result, check_mfsa_result
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.generators import random_conditional_dfg, random_dfg
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library

TIMING1 = TimingModel(ops=standard_operation_set())
TIMING2 = TimingModel(ops=standard_operation_set(mul_latency=2))
LIBRARY = datapath_library()

dfg_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),   # seed
    st.integers(min_value=1, max_value=32),       # n_ops
    st.integers(min_value=1, max_value=6),        # n_inputs
    st.integers(min_value=1, max_value=12),       # locality
)

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(params=dfg_params, slack=st.integers(min_value=0, max_value=4))
@RELAXED
def test_mfs_results_pass_full_audit(params, slack):
    seed, n_ops, n_inputs, locality = params
    g = random_dfg(seed=seed, n_ops=n_ops, n_inputs=n_inputs, locality=locality)
    cs = critical_path_length(g, TIMING1) + slack
    result = MFSScheduler(g, TIMING1, cs=cs, mode="time").run()
    report = check_mfs_result(result)
    assert report.ok, report.render()


@given(params=dfg_params)
@RELAXED
def test_mfs_multicycle_results_pass_full_audit(params):
    seed, n_ops, n_inputs, locality = params
    g = random_dfg(seed=seed, n_ops=n_ops, n_inputs=n_inputs, locality=locality)
    cs = critical_path_length(g, TIMING2) + 1
    result = MFSScheduler(g, TIMING2, cs=cs, mode="time").run()
    report = check_mfs_result(result)
    assert report.ok, report.render()


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_conditional_mfs_results_pass_full_audit(seed):
    g = random_conditional_dfg(seed=seed, n_ops=18)
    cs = critical_path_length(g, TIMING1) + 2
    result = MFSScheduler(g, TIMING1, cs=cs, mode="time").run()
    report = check_mfs_result(result)
    assert report.ok, report.render()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=1, max_value=24),
    style=st.sampled_from([1, 2]),
)
@settings(max_examples=20, deadline=None)
def test_mfsa_results_pass_full_audit(seed, n_ops, style):
    g = random_dfg(seed=seed, n_ops=n_ops)
    cs = critical_path_length(g, TIMING1) + 2
    result = MFSAScheduler(g, TIMING1, LIBRARY, cs=cs, style=style).run()
    report = check_mfsa_result(result)
    assert report.ok, report.render()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=10, deadline=None)
def test_mfs_results_survive_differential_cross_validation(seed, n_ops):
    g = random_dfg(seed=seed, n_ops=n_ops)
    cs = critical_path_length(g, TIMING1) + 1
    result = MFSScheduler(g, TIMING1, cs=cs, mode="time").run()
    report = check_mfs_result(result, differential=True)
    assert report.ok, report.render()
