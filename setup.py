"""Setup shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables legacy
editable installs (`pip install -e . --no-use-pep517`) on systems where
PEP-517 editable builds are unavailable (e.g. offline machines missing
`wheel`).
"""

from setuptools import setup

setup()
