PYTHON ?= python

.PHONY: install test bench bench-print report examples lint clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-print:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) -m repro report --out reproduction_report.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples OK"

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
