#!/usr/bin/env python3
"""Quickstart: schedule and synthesise the HAL differential-equation
benchmark with MFS and MFSA.

Run:  python examples/quickstart.py
"""

from repro import (
    TimingModel,
    mfs_schedule,
    mfsa_synthesize,
    standard_operation_set,
)
from repro.bench.suites import hal_diffeq
from repro.io.text import render_datapath, render_schedule
from repro.library.ncr import datapath_library
from repro.sim.executor import verify_equivalence


def main() -> None:
    # 1. The behavior: the classic HAL benchmark (one Euler step of
    #    y'' + 3xy' + 3y = 0): 6 multiplies, 2 adds, 2 subs, 1 compare.
    dfg = hal_diffeq()
    print(f"behavior: {dfg!r}")

    # 2. Time-constrained Move Frame Scheduling in 4 control steps.
    timing = TimingModel(ops=standard_operation_set())
    result = mfs_schedule(dfg, timing, cs=4)
    print()
    print(render_schedule(result.schedule))
    print(f"FU demand: {result.fu_counts}")

    # 3. The Liapunov audit trail: every placement took the minimum-energy
    #    position of its move frame, and energies never increased.
    result.trajectory.verify()
    print(f"trajectory verified over {len(result.trajectory)} moves")

    # 4. Mixed scheduling-allocation (MFSA): simultaneously schedule and
    #    bind onto multifunction ALUs, registers and multiplexers.
    library = datapath_library()
    synthesis = mfsa_synthesize(dfg, timing, library, cs=6)
    print()
    print(render_datapath(synthesis.datapath))

    # 5. Prove the RTL structure computes the behaviour: cycle-accurate
    #    simulation against the reference evaluator.
    inputs = {"x": 1, "dx": 2, "u": 3, "y": 4, "a": 10}
    trace = verify_equivalence(synthesis.datapath, inputs)
    print()
    print(f"simulated outputs: {trace.outputs}")
    print("datapath simulation matches the reference evaluation — OK")


if __name__ == "__main__":
    main()
