#!/usr/bin/env python3
"""Functional pipelining study (§5.5.2): throughput vs hardware.

Treats the HAL loop body as a pipelined loop: for each initiation
interval L, MFS folds resource usage modulo L so consecutive iterations
overlap.  Smaller L means higher throughput and more hardware — the
trade-off this script prints.  Also shows the paper's two-instance
unfolding (DFGdouble) and the resulting partition.

Run:  python examples/pipelined_throughput.py
"""

from repro import TimingModel, standard_operation_set
from repro.core.mfs import MFSScheduler
from repro.dfg.pipeline import (
    overlap_report,
    partition_double,
    unfold_two_instances,
)
from repro.bench.suites import hal_diffeq
from repro.bench.table1 import format_fu_mix


def main() -> None:
    timing = TimingModel(ops=standard_operation_set())
    cs = 6

    print(f"HAL loop body, time constraint T={cs}")
    print(f"{'L':>3} {'FU mix':<14} {'total FUs':>9} {'overlap':>8} "
          f"{'iterations/cycle':>17}")
    print("-" * 56)
    baseline = MFSScheduler(hal_diffeq(), timing, cs=cs, mode="time").run()
    print(
        f"{'-':>3} {format_fu_mix(baseline.fu_counts):<14} "
        f"{sum(baseline.fu_counts.values()):>9} {'1':>8} "
        f"{1 / cs:>17.3f}"
    )
    for latency in (4, 3, 2, 1):
        result = MFSScheduler(
            hal_diffeq(), timing, cs=cs, mode="time", latency_l=latency
        ).run()
        report = overlap_report(result.schedule)
        print(
            f"{latency:>3} {format_fu_mix(result.fu_counts):<14} "
            f"{sum(result.fu_counts.values()):>9} "
            f"{report.max_overlap():>8} {1 / latency:>17.3f}"
        )

    print()
    print("Paper's two-instance construction (§5.5.2):")
    double = unfold_two_instances(hal_diffeq())
    partition = partition_double(double, timing, cs=cs, latency=3)
    print(
        f"  DFGdouble: {len(double)} ops; boundary at step "
        f"{partition.boundary}: |DFGp1| = {len(partition.first)}, "
        f"|DFGp2| = {len(partition.second)}"
    )


if __name__ == "__main__":
    main()
