#!/usr/bin/env python3
"""Mutual exclusion and conditional sharing (§5.1).

Builds an if/else behaviour where both arms need a multiply and an add,
shows that MFS packs the exclusive operations onto the *same* units in
the *same* steps, and demonstrates the shared-operation merge transform
(identical computations across arms collapse to one hoisted operation).

Run:  python examples/conditional_sharing.py
"""

from repro import TimingModel, mfs_schedule, standard_operation_set
from repro.dfg.parser import parse_behavior
from repro.dfg.transforms import merge_conditional_shared_ops
from repro.io.text import render_schedule

BEHAVIOR = """
input a b c d
sel = a < b
branch c0 then
tprod = a * c          # shared with the else-arm -> mergeable
tsum  = tprod + d
branch c0 else
eprod = a * c          # identical computation
ediff = eprod - d
end c0
output sel tsum ediff
"""


def main() -> None:
    ops = standard_operation_set()
    timing = TimingModel(ops=ops)
    dfg = parse_behavior(BEHAVIOR, name="conditional")
    print(f"parsed: {dfg!r}")

    result = mfs_schedule(dfg, timing, cs=3)
    print()
    print("schedule with mutual exclusion (arms share units):")
    print(render_schedule(result.schedule))
    print(f"FU demand: {result.fu_counts}  <- one multiplier despite two *")

    merged = merge_conditional_shared_ops(dfg, ops)
    print()
    print(
        f"shared-op merge (§5.1): {len(dfg)} ops -> {len(merged)} ops "
        f"(the duplicated a*c hoisted out of the branches)"
    )
    merged_result = mfs_schedule(merged, timing, cs=3)
    print(f"FU demand after merge: {merged_result.fu_counts}")

    # The same positions really are shared: inspect the placement grid.
    grid = result.grid
    print()
    print("grid cells hosting two mutually exclusive operations:")
    for table in grid.tables():
        for y in range(1, grid.cs + 1):
            for x in range(1, grid.columns(table) + 1):
                occupants = grid.occupants(table, x, y)
                if len(occupants) > 1:
                    print(f"  {table}[{x}]@cs{y}: {', '.join(occupants)}")


if __name__ == "__main__":
    main()
