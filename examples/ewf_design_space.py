#!/usr/bin/env python3
"""Design-space exploration of the elliptic wave filter (example #6).

Sweeps the time constraint T with 2-cycle multipliers — the classic
latency/area trade-off study every 1990s HLS paper runs on EWF — printing
the MFS functional-unit demand and the full MFSA cost per point, plus the
structural-pipelining variant.

Run:  python examples/ewf_design_space.py
"""

from repro import TimingModel, standard_operation_set
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.library.ncr import datapath_library
from repro.bench.suites import ewf
from repro.bench.table1 import format_fu_mix


def main() -> None:
    ops = standard_operation_set(mul_latency=2)
    timing = TimingModel(ops=ops)
    library = datapath_library()

    print("EWF design space (2-cycle multipliers)")
    print(f"{'T':>4} {'MFS FU mix':<14} {'ALUs':<22} {'cost um^2':>10} "
          f"{'REG':>4} {'MUX':>4}")
    print("-" * 64)
    for cs in (17, 18, 19, 21, 24, 28):
        mfs = MFSScheduler(ewf(), timing, cs=cs, mode="time").run()
        mfsa = MFSAScheduler(ewf(), timing, library, cs=cs).run()
        cost = mfsa.cost
        alus = "; ".join(sorted(mfsa.alu_labels()))
        print(
            f"{cs:>4} {format_fu_mix(mfs.fu_counts):<14} {alus:<22} "
            f"{cost.total:>10.0f} {mfsa.datapath.register_count():>4} "
            f"{mfsa.datapath.mux_count():>4}"
        )

    print()
    print("Automated exploration (repro.explore): Pareto front and knee")
    from repro.explore import design_space, knee_point, pareto_front

    points = design_space(
        ewf(), timing, library, budgets=(17, 18, 19, 21, 24, 28, 34)
    )
    front = pareto_front(points)
    knee = knee_point(front)
    print(f"  Pareto points: {[(p.cs, int(p.total_area)) for p in front]}")
    print(f"  knee: T={knee.cs}, area {knee.total_area:.0f} um^2")

    print()
    print("Structural pipelining: a 2-stage pipelined multiplier accepts a")
    print("new product every cycle, shrinking the multiplier count:")
    for cs in (17, 19, 21):
        plain = MFSScheduler(ewf(), timing, cs=cs, mode="time").run()
        pipelined = MFSScheduler(
            ewf(), timing, cs=cs, mode="time", pipelined_kinds=("mul",)
        ).run()
        print(
            f"  T={cs}: non-pipelined {format_fu_mix(plain.fu_counts):<8} "
            f"-> pipelined {format_fu_mix(pipelined.fu_counts)}"
        )


if __name__ == "__main__":
    main()
