#!/usr/bin/env python3
"""Nested-loop folding (§5.2).

The paper handles loops by (1) bounding the body with an added
increment + comparison pair and (2) folding nested loops innermost-first:
once scheduled, a whole loop becomes a single multi-cycle operation at
the enclosing level.

This script builds a two-level nest — an inner dot-product-style body
inside an outer update loop — folds the inner loop, schedules the outer
level with the folded loop as one 4-cycle operation, and prints both
schedules.

Run:  python examples/nested_loops.py
"""

from repro import TimingModel, standard_operation_set
from repro.core.mfs import MFSScheduler
from repro.dfg.builder import DFGBuilder
from repro.dfg.ops import OpKind
from repro.dfg.transforms import LoopFolder, add_loop_control
from repro.io.text import render_schedule


def inner_body():
    """One inner iteration: acc' = acc + a[i]*b[i] (plus address math)."""
    b = DFGBuilder("dot_body")
    acc, a_val, b_val, addr = b.inputs("acc", "a_i", "b_i", "addr")
    product = b.op(OpKind.MUL, a_val, b_val, name="prod")
    new_acc = b.op(OpKind.ADD, acc, product, name="acc_next")
    next_addr = b.op(OpKind.ADD, addr, 1, name="addr_next")
    b.outputs(acc_next=new_acc, addr_next=next_addr)
    return b.build()


def main() -> None:
    timing = TimingModel(ops=standard_operation_set())

    # 1. Bound the inner body with loop control (§5.2: "adding two more
    #    operations (increment and comparison) into the DFG").
    body = add_loop_control(inner_body(), counter="i", bound="n")
    print(f"inner body with loop control: {body!r}")

    # 2. Fold the inner loop under its local time constraint.
    folder = LoopFolder(timing)
    folded = folder.fold("dot", body, local_cs=4)
    print(f"\ninner loop schedule (local T={folded.local_cs}):")
    inner_schedule_starts = dict(folded.body_schedule)
    for step in range(1, folded.local_cs + 1):
        ops_here = [n for n, s in inner_schedule_starts.items() if s == step]
        print(f"  cs{step}: {', '.join(ops_here)}")
    print(f"folded as operation kind {folded.spec.kind!r}, "
          f"latency {folded.spec.latency}")

    # 3. Build the outer level around the folded loop.
    b = DFGBuilder("outer")
    x, y = b.inputs("x", "y")
    scale = b.op(OpKind.MUL, x, y, name="scale")
    the_loop = b.op(folded.spec.kind, scale, y, name="dot_loop")
    post = b.op(OpKind.SUB, the_loop, x, name="post")
    check = b.op(OpKind.LT, post, y, name="check")
    b.outputs(result=post, done=check)
    outer = b.build()

    outer_timing = TimingModel(ops=folder.extended_ops())
    result = MFSScheduler(outer, outer_timing, cs=8, mode="time").run()
    print("\nouter schedule (the loop occupies 4 consecutive steps):")
    print(render_schedule(result.schedule))

    loop_start = result.schedule.start("dot_loop")
    assert result.schedule.start("post") >= loop_start + folded.local_cs
    print(
        f"\nloop runs cs{loop_start}..cs{loop_start + folded.local_cs - 1}; "
        f"'post' correctly waits for it — OK"
    )


if __name__ == "__main__":
    main()
