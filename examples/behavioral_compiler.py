#!/usr/bin/env python3
"""A miniature behavioral compiler: text in, Verilog out.

Parses a behavioral description of a complex multiply-accumulate, runs
MFSA against the multifunction ALU family, emits the FSM + datapath as
structural Verilog, and cross-checks the generated hardware against the
reference evaluation on random stimuli.

Run:  python examples/behavioral_compiler.py [output.v]
"""

import random
import sys

from repro import TimingModel, mfsa_synthesize, standard_operation_set
from repro.dfg.parser import parse_behavior
from repro.library.ncr import datapath_library
from repro.rtl.controller import build_controller
from repro.rtl.netlist import build_netlist
from repro.rtl.verilog import emit_verilog
from repro.sim.evaluator import evaluate_dfg
from repro.sim.executor import execute_datapath

BEHAVIOR = """
# complex multiply-accumulate: acc' = (a + jb)(c + jd) + acc
input ar ai br bi acc_r acc_i
t1 = ar * br
t2 = ai * bi
t3 = ar * bi
t4 = ai * br
re = t1 - t2 + acc_r
im = t3 + t4 + acc_i
mag_gt = re > im
output re im mag_gt
"""


def main() -> None:
    dfg = parse_behavior(BEHAVIOR, name="cmac")
    print(f"parsed {dfg!r}")

    ops = standard_operation_set()
    timing = TimingModel(ops=ops)
    library = datapath_library()
    result = mfsa_synthesize(dfg, timing, library, cs=5)

    datapath = result.datapath
    cost = datapath.cost_breakdown()
    print(f"ALUs: {', '.join(result.alu_labels())}")
    print(
        f"cost {cost.total:.0f} um^2 "
        f"(ALU {cost.alu:.0f} / REG {cost.registers:.0f} / MUX {cost.mux:.0f})"
    )

    netlist = build_netlist(datapath)
    controller = build_controller(datapath)
    print(
        f"netlist: {netlist.count('alu')} ALUs, {netlist.count('reg')} "
        f"registers, {netlist.count('mux')} muxes, {len(netlist.nets)} nets"
    )
    print(
        f"controller: {controller.n_states} states, "
        f"{controller.control_bits()} control bits"
    )

    verilog = emit_verilog(datapath, module_name="cmac")
    target = sys.argv[1] if len(sys.argv) > 1 else None
    if target:
        with open(target, "w") as handle:
            handle.write(verilog)
        print(f"wrote {target} ({len(verilog.splitlines())} lines)")
    else:
        print()
        print("\n".join(verilog.splitlines()[:18]))
        print(f"... ({len(verilog.splitlines())} lines total)")

    # Validate the hardware on random stimuli.
    rng = random.Random(42)
    for trial in range(20):
        inputs = {name: rng.randint(-50, 50) for name in dfg.inputs}
        trace = execute_datapath(datapath, inputs)
        reference = evaluate_dfg(dfg, ops, inputs)
        for out in dfg.outputs:
            assert trace.outputs[out] == reference[out], (trial, out)
    print("20 random stimuli: datapath == reference — OK")


if __name__ == "__main__":
    main()
