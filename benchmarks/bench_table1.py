"""Regenerates the paper's **Table 1** (MFS results on the six examples).

One benchmark per example: times the full sweep of that example's
time-constraint cases and checks the reproduced FU mixes — exact equality
wherever the paper's scanned cell is parseable, the monotone
fewer-units-with-more-time trend everywhere.
"""

import pytest

from repro.bench.suites import EXAMPLES
from repro.bench.table1 import render_table1, run_case, table1_rows



@pytest.mark.parametrize("key", sorted(EXAMPLES))
def test_table1_example(benchmark, report, key):
    spec = EXAMPLES[key]

    def sweep():
        return [run_case(spec, case) for case in spec.table1_cases]

    results = benchmark(sweep)

    for case, result in zip(spec.table1_cases, results):
        result.schedule.validate()
        assert result.schedule.makespan() <= case.cs
        if case.paper_fu is not None:
            assert result.fu_counts == dict(case.paper_fu), (
                f"{key} T={case.cs}: measured {result.fu_counts} "
                f"vs paper {dict(case.paper_fu)}"
            )

    report("table1", render_table1(table1_rows()))


def test_table1_trend_units_decrease_with_budget(benchmark):
    """Across every example: larger T never needs more total FUs."""

    def collect():
        return table1_rows()

    rows = benchmark(collect)
    from collections import defaultdict

    groups = defaultdict(list)
    for row in rows:
        groups[(row.number, row.mul_latency)].append(row)
    for rows_of_group in groups.values():
        unique_cs = {}
        for row in rows_of_group:
            unique_cs.setdefault(row.cs, row)
        ordered = [unique_cs[cs] for cs in sorted(unique_cs)]
        totals = [sum(r.fu_counts.values()) for r in ordered]
        assert totals == sorted(totals, reverse=True)
