"""Scalability sweep backing the O(l^3) complexity analysis (§3.2).

Layered synthetic workloads of growing size; the benchmark records MFS
and MFSA wall times so the growth curve can be read off the
pytest-benchmark table, and a sanity test checks the growth stays far
below the quartic envelope.
"""

import time

import pytest

from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.generators import layered_workload
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library

TIMING = TimingModel(ops=standard_operation_set())
SIZES = [(4, 5), (8, 5), (8, 10), (16, 10)]  # (layers, width) -> 20..160 ops


@pytest.mark.parametrize("layers,width", SIZES)
def test_mfs_scaling(benchmark, layers, width):
    g = layered_workload(seed=1, layers=layers, width=width)
    cs = critical_path_length(g, TIMING) + 2

    result = benchmark(
        lambda: MFSScheduler(g, TIMING, cs=cs, mode="time").run()
    )
    result.schedule.validate()


@pytest.mark.parametrize("layers,width", SIZES[:3])
def test_mfsa_scaling(benchmark, layers, width):
    g = layered_workload(seed=1, layers=layers, width=width)
    cs = critical_path_length(g, TIMING) + 2
    library = datapath_library()

    result = benchmark(
        lambda: MFSAScheduler(g, TIMING, library, cs=cs).run()
    )
    result.schedule.validate()


def test_growth_below_quartic_envelope():
    def runtime(layers, width):
        g = layered_workload(seed=1, layers=layers, width=width)
        cs = critical_path_length(g, TIMING) + 2
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            MFSScheduler(g, TIMING, cs=cs, mode="time").run()
            best = min(best, time.perf_counter() - start)
        return best

    small = max(runtime(6, 5), 1e-3)
    large = runtime(12, 10)  # 4x operations
    assert large / small < 4**4
