"""Scalability sweep backing the O(l^3) complexity analysis (§3.2).

Layered synthetic workloads of growing size; the benchmark records MFS
and MFSA wall times so the growth curve can be read off the
pytest-benchmark table, and a sanity test checks the growth stays far
below the quartic envelope.

Three tiers:

* the regular ladder (20 .. 1000 ops) runs on every invocation;
* the 10k-op tier is marked ``@pytest.mark.slow`` and needs
  ``--runslow`` (an MFS run alone is ~10 s of wall clock);
* the kernel-comparison benchmarks time the scalar reference path
  against the numpy vector path on the same seeded workloads the
  ``bench_kernels.py`` harness records to BENCH_core.json.  The vector
  rows skip automatically when numpy is absent.
"""

import time

import pytest

from repro.allocation.mux import clear_mux_memo
from repro.core import kernel as kernel_mod
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.generators import layered_workload
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library

TIMING = TimingModel(ops=standard_operation_set())
# (layers, width) -> 20 .. 1000 ops
SIZES = [(4, 5), (8, 5), (8, 10), (16, 10), (25, 40)]
# 10k ops: --runslow only (a single MFS run is ~10 s)
SLOW_SIZES = [(50, 200)]

#: Kernel-comparison points (ops -> layers, width, slack).  Generous
#: slack is where the move-frame grids get tall and the vector kernel
#: pays — the same regime bench_kernels.py measures.
KERNEL_POINTS = {
    100: (5, 20, 40),
    1000: (25, 40, 400),
}

KERNELS = [
    "scalar",
    pytest.param(
        "vector",
        marks=pytest.mark.skipif(
            not kernel_mod.HAVE_NUMPY, reason="numpy not installed"
        ),
    ),
]


@pytest.mark.parametrize("layers,width", SIZES)
def test_mfs_scaling(benchmark, layers, width):
    g = layered_workload(seed=1, layers=layers, width=width)
    cs = critical_path_length(g, TIMING) + 2

    result = benchmark(
        lambda: MFSScheduler(g, TIMING, cs=cs, mode="time").run()
    )
    result.schedule.validate()


@pytest.mark.parametrize("layers,width", SIZES[:3])
def test_mfsa_scaling(benchmark, layers, width):
    g = layered_workload(seed=1, layers=layers, width=width)
    cs = critical_path_length(g, TIMING) + 2
    library = datapath_library()

    result = benchmark(
        lambda: MFSAScheduler(g, TIMING, library, cs=cs).run()
    )
    result.schedule.validate()


def test_mfsa_scaling_1k(benchmark):
    layers, width = SIZES[-1]
    g = layered_workload(seed=1, layers=layers, width=width)
    cs = critical_path_length(g, TIMING) + 2
    library = datapath_library()

    result = benchmark.pedantic(
        lambda: MFSAScheduler(g, TIMING, library, cs=cs).run(),
        rounds=3,
    )
    result.schedule.validate()


@pytest.mark.slow
@pytest.mark.parametrize("layers,width", SLOW_SIZES)
def test_mfs_scaling_10k(benchmark, layers, width):
    g = layered_workload(seed=1, layers=layers, width=width)
    cs = critical_path_length(g, TIMING) + 2

    result = benchmark.pedantic(
        lambda: MFSScheduler(g, TIMING, cs=cs, mode="time").run(),
        rounds=1,
    )
    result.schedule.validate()


@pytest.mark.slow
@pytest.mark.parametrize("layers,width", SLOW_SIZES)
def test_mfsa_scaling_10k(benchmark, layers, width):
    g = layered_workload(seed=1, layers=layers, width=width)
    cs = critical_path_length(g, TIMING) + 2
    library = datapath_library()

    result = benchmark.pedantic(
        lambda: MFSAScheduler(g, TIMING, library, cs=cs).run(),
        rounds=1,
    )
    result.schedule.validate()


@pytest.mark.parametrize("kern", KERNELS)
def test_mfs_kernels_1k(benchmark, kern):
    layers, width, slack = KERNEL_POINTS[1000]
    g = layered_workload(seed=7, layers=layers, width=width)
    cs = critical_path_length(g, TIMING) + slack

    result = benchmark.pedantic(
        lambda: MFSScheduler(
            g, TIMING, cs=cs, mode="time", kernel=kern,
            record_alternatives=False,
        ).run(),
        rounds=3,
    )
    result.schedule.validate()


@pytest.mark.parametrize("kern", KERNELS)
def test_mfsa_kernels_100(benchmark, kern):
    layers, width, slack = KERNEL_POINTS[100]
    g = layered_workload(seed=7, layers=layers, width=width)
    cs = critical_path_length(g, TIMING) + slack
    library = datapath_library()

    def run():
        # Cold caches each round: the process-wide mux memo would
        # otherwise let the second kernel ride the first one's work.
        clear_mux_memo()
        return MFSAScheduler(
            g, TIMING, library, cs=cs, kernel=kern,
            record_alternatives=False,
        ).run()

    result = benchmark(run)
    result.schedule.validate()


@pytest.mark.slow
@pytest.mark.parametrize("kern", KERNELS)
def test_mfsa_kernels_1k(benchmark, kern):
    layers, width, slack = KERNEL_POINTS[1000]
    g = layered_workload(seed=7, layers=layers, width=width)
    cs = critical_path_length(g, TIMING) + slack
    library = datapath_library()

    def run():
        clear_mux_memo()
        return MFSAScheduler(
            g, TIMING, library, cs=cs, kernel=kern,
            record_alternatives=False,
        ).run()

    result = benchmark.pedantic(run, rounds=1)
    result.schedule.validate()


def test_growth_below_quartic_envelope():
    def runtime(layers, width):
        g = layered_workload(seed=1, layers=layers, width=width)
        cs = critical_path_length(g, TIMING) + 2
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            MFSScheduler(g, TIMING, cs=cs, mode="time").run()
            best = min(best, time.perf_counter() - start)
        return best

    small = max(runtime(6, 5), 1e-3)
    large = runtime(12, 10)  # 4x operations
    assert large / small < 4**4
