"""Regenerates the paper's **Table 2** (MFSA RTL structures, styles 1/2).

Checks the Table-2 shape: complete RTL structures for all six examples in
both design styles, multifunction ALUs actually selected, and the style-2
overhead within a band around the paper's reported 2-11 %.
"""

import pytest

from repro.bench.suites import EXAMPLES
from repro.bench.table2 import (
    render_table2,
    run_example,
    style_overhead,
    table2_rows,
)
from repro.sim.executor import verify_equivalence



@pytest.mark.parametrize("key", sorted(EXAMPLES))
@pytest.mark.parametrize("style", [1, 2])
def test_table2_example(benchmark, report, key, style):
    spec = EXAMPLES[key]
    result = benchmark(run_example, spec, style)

    result.schedule.validate()
    result.trajectory.verify()
    datapath = result.datapath
    assert datapath.register_count() > 0
    if style == 2:
        assert not datapath.has_self_loop()

    # end-to-end: the synthesised RTL structure computes the behaviour
    dfg = result.schedule.dfg
    inputs = {name: (i * 5) % 17 + 1 for i, name in enumerate(dfg.inputs)}
    verify_equivalence(datapath, inputs)

    report("table2", render_table2(table2_rows()))


def test_table2_style_overhead_band():
    """Paper: style 2 costs 2-11 % more than style 1.  Heuristic noise can
    flip single examples a little negative; the reproduced shape is a
    bounded band with a strictly positive overhead on the chain-heavy
    example #3."""
    rows = table2_rows()
    for number in range(1, 7):
        assert -0.05 <= style_overhead(rows, number) <= 0.15
    assert style_overhead(rows, 3) > 0.0


def test_table2_merging_happens():
    rows = table2_rows()
    multifunction = [
        label
        for row in rows
        for label in row.alu_labels
        if len(label.strip("()")) > 1
    ]
    assert multifunction
