"""Perf-trajectory harness: measures the scheduling kernel, emits BENCH_core.json.

Measures, on the paper's hardest example (EWF, ``ewf()``, T = 17):

* the MFSA run through the naive reference path (``no_cache=True`` — every
  Liapunov term recomputed per candidate, the pre-perf-layer behaviour);
* the MFSA run through the cached fast path (memo tables + process-wide
  mux-optimiser memo), with its perf counters;
* the MFS run (single-pass Liapunov evaluation);
* a ``design_space`` sweep over the budget ladder, serial vs process-pool
  backend, asserting the results are identical in order and value.

Timings are best-of-N wall clock around ``scheduler.run()`` (DFG, timing
model and library are built once, outside the timed region).  Results are
appended to the ``history`` list of ``BENCH_core.json`` so later PRs can
track the speedup trajectory; ``--smoke`` runs a quick variant with a
generous wall-clock ceiling for CI and does not touch the JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_trajectory.py
    PYTHONPATH=src python benchmarks/bench_perf_trajectory.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from bench_record import append_entry

from repro.allocation.mux import clear_mux_memo
from repro.bench.suites import EXAMPLES
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel
from repro.dfg.ops import standard_operation_set
from repro.explore import default_budget_ladder, design_space
from repro.library.ncr import datapath_library
from repro.perf import PerfCounters

EWF_KEY = "ex6"  # the elliptic wave filter, ewf(), T = 17

#: CI smoke ceiling for one cached EWF MFSA run (seconds).  The paper's
#: budget was 0.4 s on a 1992 SPARC; a modern box does the cached run in
#: single-digit milliseconds, so 0.5 s only catches complexity blowups.
SMOKE_CEILING_S = 0.5


def best_of(fn, repeat):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(repeat):
    spec = EXAMPLES[EWF_KEY]
    dfg = spec.build()
    ops = standard_operation_set(mul_latency=spec.mfsa_mul_latency)
    timing = TimingModel(ops=ops, clock_period_ns=spec.mfsa_clock_ns)
    library = datapath_library()

    def mfsa(no_cache, perf=None):
        return MFSAScheduler(
            dfg,
            timing,
            library,
            cs=spec.mfsa_cs,
            style=1,
            no_cache=no_cache,
            perf=perf,
        ).run()

    # Equivalence guard: the numbers below are only comparable if both
    # paths produce the same design.
    clear_mux_memo()
    cached = mfsa(False)
    naive = mfsa(True)
    assert cached.schedule.starts == naive.schedule.starts
    assert cached.cost == naive.cost
    assert cached.alu_labels() == naive.alu_labels()

    naive_s = best_of(lambda: mfsa(True), repeat)
    cached_s = best_of(lambda: mfsa(False), repeat)

    perf = PerfCounters()
    mfsa(False, perf=perf)

    case = spec.table1_cases[0]
    mfs_ops = standard_operation_set(mul_latency=case.mul_latency)
    mfs_timing = TimingModel(ops=mfs_ops, clock_period_ns=case.clock_ns)

    def mfs():
        return MFSScheduler(
            dfg, mfs_timing, cs=case.cs, mode="time",
            latency_l=case.latency_l, pipelined_kinds=case.pipelined_kinds,
        ).run()

    mfs_s = best_of(mfs, repeat)

    # Sweep: serial vs process pool over the budget ladder (>= 6 budgets).
    budgets = default_budget_ladder(dfg, timing)
    top = budgets[-1]
    while len(budgets) < 6:
        top += 1
        budgets.append(top)
    start = time.perf_counter()
    serial_points = design_space(dfg, timing, library, budgets=budgets)
    sweep_serial_s = time.perf_counter() - start
    start = time.perf_counter()
    pooled_points = design_space(
        dfg, timing, library, budgets=budgets, backend="process"
    )
    sweep_process_s = time.perf_counter() - start
    assert pooled_points == serial_points, (
        "process-pool sweep diverged from serial"
    )

    return {
        "example": EWF_KEY,
        "cs": spec.mfsa_cs,
        "repeat": repeat,
        "mfsa_naive_ms": round(naive_s * 1e3, 3),
        "mfsa_cached_ms": round(cached_s * 1e3, 3),
        "mfsa_speedup": round(naive_s / cached_s, 2),
        "mfs_ms": round(mfs_s * 1e3, 3),
        "sweep_budgets": budgets,
        "sweep_serial_ms": round(sweep_serial_s * 1e3, 3),
        "sweep_process_ms": round(sweep_process_s * 1e3, 3),
        "sweep_identical": True,
        "counters": {
            key: value for key, value in sorted(perf.counters.items())
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI variant: fewer repeats, assert the wall-clock "
        "ceiling, do not write BENCH_core.json",
    )
    parser.add_argument(
        "--repeat", type=int, default=None,
        help="best-of repeat count (default 15, smoke 5)",
    )
    parser.add_argument(
        "--label", default="perf-layer",
        help="history-entry label recorded in BENCH_core.json",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_core.json"),
        help="output path (default: repo root BENCH_core.json)",
    )
    args = parser.parse_args(argv)
    repeat = args.repeat or (5 if args.smoke else 15)

    entry = measure(repeat)
    entry["label"] = args.label
    print(
        f"EWF (T={entry['cs']}) MFSA: naive {entry['mfsa_naive_ms']:.2f} ms, "
        f"cached {entry['mfsa_cached_ms']:.2f} ms "
        f"-> {entry['mfsa_speedup']:.2f}x"
    )
    print(
        f"MFS {entry['mfs_ms']:.2f} ms; sweep over {len(entry['sweep_budgets'])} "
        f"budgets: serial {entry['sweep_serial_ms']:.1f} ms, "
        f"process {entry['sweep_process_ms']:.1f} ms (identical results)"
    )

    if args.smoke:
        cached_s = entry["mfsa_cached_ms"] / 1e3
        if cached_s > SMOKE_CEILING_S:
            print(
                f"FAIL: cached EWF MFSA took {cached_s:.3f} s "
                f"(ceiling {SMOKE_CEILING_S} s)",
                file=sys.stderr,
            )
            return 1
        print(f"smoke OK: {cached_s * 1e3:.2f} ms <= {SMOKE_CEILING_S * 1e3:.0f} ms ceiling")
        return 0

    out = append_entry(entry, "perf_trajectory", Path(args.out))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
