"""Regenerates the paper's **Figure 1** (present → next position move).

The figure is regenerated from real MFS state: the chosen minimum-energy
position plays O^n, the worst evaluated alternative plays O^p, and the
benchmark asserts the move's ΔV is non-positive (the Liapunov-decrease
property the figure illustrates).
"""

import pytest

from repro.bench.figures import figure1
from repro.bench.suites import EXAMPLES



@pytest.mark.parametrize("key", ["ex1", "ex3", "ex6"])
def test_figure1(benchmark, report, key):
    text = benchmark(figure1, key)
    assert "Figure 1" in text
    assert "next position O^n" in text
    delta_lines = [
        line for line in text.splitlines() if line.startswith("move:")
    ]
    if delta_lines:  # a single-alternative move has no "present" overlay
        delta_v = float(delta_lines[0].split("dV =")[1].split()[0].rstrip(","))
        assert delta_v <= 0.0
    report(f"figure1-{key}", text)
