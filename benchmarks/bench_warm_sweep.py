"""Warm-sweep harness: serial vs pooled design sweeps, emits BENCH_core.json.

Two measurements around :class:`repro.sweep.SweepExecutor`:

* **serial vs process** — the EWF design-space sweep
  (:func:`repro.explore.design_space` over the default budget ladder)
  on the serial backend vs the process pool with warm workers (pool
  initializer pre-imports the scheduling stack and the DFG/timing/
  library context ships once per worker instead of once per item).
  Results are asserted identical.  The entry records ``cpus`` — on a
  single-core box the pool cannot win and the speedup documents the
  overhead instead; on a multi-core host this is the scaling number.
* **cold vs warm pool** — the Table-1 regeneration payloads mapped
  three times through a fresh pool each time (cold: pay interpreter
  start-up and imports per map) vs three times through one
  ``keep_pool=True`` executor (warm: pay them once).  The warm gain is
  what the serve dispatcher and repeated sweeps actually feel.

Results land in the ``history`` list of ``BENCH_core.json`` as a
``warm_sweep`` entry; ``--smoke`` asserts the sweeps stay identical
across backends with generous ceilings and does not write the JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_warm_sweep.py
    PYTHONPATH=src python benchmarks/bench_warm_sweep.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from bench_record import append_entry

from repro.bench.suites import EXAMPLES
from repro.bench.table1 import _row_worker
from repro.dfg.analysis import TimingModel
from repro.dfg.ops import standard_operation_set
from repro.explore import default_budget_ladder, design_space
from repro.library.ncr import datapath_library
from repro.sweep import SweepExecutor

EWF_KEY = "ex6"


def ewf_workload():
    spec = EXAMPLES[EWF_KEY]
    dfg = spec.build()
    ops = standard_operation_set(mul_latency=spec.mfsa_mul_latency)
    timing = TimingModel(ops=ops, clock_period_ns=spec.mfsa_clock_ns)
    library = datapath_library()
    budgets = default_budget_ladder(dfg, timing)
    top = budgets[-1]
    while len(budgets) < 8:
        top += 1
        budgets.append(top)
    return dfg, timing, library, budgets


def table1_payloads():
    return [
        (key, case_index)
        for key, spec in EXAMPLES.items()
        for case_index in range(len(spec.table1_cases))
    ]


def measure_backends(repeat):
    dfg, timing, library, budgets = ewf_workload()

    def sweep(backend):
        return design_space(
            dfg, timing, library, budgets=budgets, backend=backend
        )

    serial_points = sweep("serial")
    pooled_points = sweep("process")
    assert pooled_points == serial_points, "pooled sweep diverged from serial"

    serial_s = min(_timed(sweep, "serial") for _ in range(repeat))
    process_s = min(_timed(sweep, "process") for _ in range(repeat))
    return budgets, serial_s, process_s


def _timed(fn, *fn_args):
    start = time.perf_counter()
    fn(*fn_args)
    return time.perf_counter() - start


def measure_pool_warmth(maps):
    payloads = table1_payloads()

    start = time.perf_counter()
    for _ in range(maps):
        # A fresh executor per map: every map pays pool start-up,
        # interpreter imports and context transfer again.
        executor = SweepExecutor(backend="process", workers=None)
        cold = executor.map(_row_worker, payloads)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    with SweepExecutor(
        backend="process", workers=None, keep_pool=True
    ) as executor:
        for _ in range(maps):
            warm = executor.map(_row_worker, payloads)
    warm_s = time.perf_counter() - start

    assert [row.fu_counts for row in warm] == [row.fu_counts for row in cold]
    return len(payloads), cold_s, warm_s


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI variant: assert backend equivalence, no JSON write",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="best-of repeats for the backend comparison (default 3)",
    )
    parser.add_argument(
        "--maps", type=int, default=3,
        help="consecutive maps for the cold/warm pool contrast (default 3)",
    )
    parser.add_argument(
        "--label", default="warm-sweep",
        help="history-entry label recorded in BENCH_core.json",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_core.json"),
        help="output path (default: repo root BENCH_core.json)",
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    maps = 2 if args.smoke else args.maps
    budgets, serial_s, process_s = measure_backends(
        1 if args.smoke else args.repeat
    )
    cells, cold_s, warm_s = measure_pool_warmth(maps)

    process_speedup = round(serial_s / process_s, 2) if process_s else 0.0
    warm_gain = round(cold_s / warm_s, 2) if warm_s else 0.0
    print(
        f"EWF sweep over {len(budgets)} budgets ({cpus} cpu): "
        f"serial {serial_s * 1e3:.1f} ms, process {process_s * 1e3:.1f} ms "
        f"-> x{process_speedup} (identical results)"
    )
    print(
        f"table1 x{maps} maps ({cells} cells): cold pools "
        f"{cold_s * 1e3:.1f} ms, warm pool {warm_s * 1e3:.1f} ms "
        f"-> x{warm_gain}"
    )

    if args.smoke:
        # Equivalence asserts already ran; only sanity-check liveness.
        if warm_s <= 0 or process_s <= 0:
            print("FAIL: degenerate timing", file=sys.stderr)
            return 1
        print("smoke OK: backends identical, pools alive")
        return 0

    entry = {
        "cpus": cpus,
        "example": EWF_KEY,
        "sweep_budgets": budgets,
        "sweep_serial_ms": round(serial_s * 1e3, 3),
        "sweep_process_ms": round(process_s * 1e3, 3),
        "sweep_process_speedup": process_speedup,
        "sweep_identical": True,
        "pool_maps": maps,
        "pool_cells_per_map": cells,
        "pool_cold_ms": round(cold_s * 1e3, 3),
        "pool_warm_ms": round(warm_s * 1e3, 3),
        "pool_warm_gain": warm_gain,
        "label": args.label,
    }
    out = append_entry(entry, "warm_sweep", Path(args.out))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
