"""Wide design-space sweeps over all six examples.

Extends Table 1's few points into full latency/FU-demand curves:

* total FU count is non-increasing in T (the design-space staircase);
* given enough time, every example converges to the distribution lower
  bound ``max_kind ⌈N_kind/T⌉``-style minimal hardware (1 unit per kind
  once T exceeds the serial length);
* MFSA cost is non-increasing in T as well.
"""

import pytest

from repro.bench.suites import EXAMPLES
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library


@pytest.mark.parametrize("key", sorted(EXAMPLES))
def test_mfs_staircase(benchmark, key):
    spec = EXAMPLES[key]
    dfg = spec.build()
    ops = standard_operation_set(spec.mfsa_mul_latency)
    timing = TimingModel(ops=ops, clock_period_ns=spec.mfsa_clock_ns)
    base = critical_path_length(dfg, timing)
    budgets = [base + step for step in (0, 1, 2, 4, 8, 16)]

    def sweep():
        return [
            MFSScheduler(dfg, timing, cs=cs, mode="time").run().fu_counts
            for cs in budgets
        ]

    curves = benchmark(sweep)
    totals = [sum(c.values()) for c in curves]
    assert totals == sorted(totals, reverse=True)
    # convergence: with generous time, one unit per kind suffices
    serial = sum(timing.latency(n.kind) for n in dfg)
    final = MFSScheduler(dfg, timing, cs=serial, mode="time").run()
    assert all(count == 1 for count in final.fu_counts.values())


@pytest.mark.parametrize("key", ["ex3", "ex4", "ex6"])
def test_mfsa_cost_staircase(benchmark, key):
    spec = EXAMPLES[key]
    dfg = spec.build()
    ops = standard_operation_set(spec.mfsa_mul_latency)
    timing = TimingModel(ops=ops, clock_period_ns=spec.mfsa_clock_ns)
    library = datapath_library()
    base = critical_path_length(dfg, timing)
    budgets = [base, base + 2, base + 6, base + 12]

    def sweep():
        return [
            MFSAScheduler(dfg, timing, library, cs=cs).run().cost.alu
            for cs in budgets
        ]

    costs = benchmark(sweep)
    assert costs == sorted(costs, reverse=True)
