"""Bulk fuzz harness: many random designs through the whole stack.

A quantity-over-depth complement to the hypothesis suites: hundreds of
seeded random graphs are pushed through MFS, MFSA, the static verifier
and both simulators; the benchmark measures end-to-end synthesis
throughput, and every design must verify.
"""

import pytest

from repro.allocation.verify import verify_datapath
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.generators import random_dfg
from repro.dfg.ops import OpKind, standard_operation_set
from repro.library.ncr import datapath_library
from repro.sim.executor import verify_equivalence
from repro.sim.rtl_executor import verify_controller_equivalence

TIMING = TimingModel(ops=standard_operation_set())
LIBRARY = datapath_library()
KINDS = (OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.AND, OpKind.OR)


def run_one(seed: int) -> None:
    g = random_dfg(seed=seed, n_ops=12 + seed % 14, kinds=KINDS)
    cs = critical_path_length(g, TIMING) + seed % 3
    mfs = MFSScheduler(g, TIMING, cs=cs, mode="time").run()
    mfs.schedule.validate()
    mfsa = MFSAScheduler(g, TIMING, LIBRARY, cs=cs, style=1 + seed % 2).run()
    assert verify_datapath(mfsa.datapath) == []
    inputs = {name: (seed + i * 3) % 21 - 10 for i, name in enumerate(g.inputs)}
    verify_equivalence(mfsa.datapath, inputs)
    verify_controller_equivalence(mfsa.datapath, inputs)


def test_fuzz_throughput(benchmark):
    """Throughput of full synthesis+verification on one mid-size design."""
    benchmark(run_one, 12345)


@pytest.mark.parametrize("block", range(8))
def test_fuzz_block(block):
    """25 seeded designs per block, 200 total."""
    for seed in range(block * 25, (block + 1) * 25):
        run_one(seed)
