"""Reshard-cost harness: hit retention, handoff time, replication cost.

Measures the three numbers the elastic-fleet PR budgets, against a real
:class:`~repro.serve.router.ShardRouter` fleet over sockets:

* **cache-hit retention** — warm a 2-shard fleet with distinct designs,
  grow it to 3 shards through ``POST /admin/shards``, resubmit every
  design, and count the cache hits.  The router L2 is pinned to a
  single entry, so surviving hits can only come from the warm handoff
  into the shards' L1s — the zero-downtime-reshard claim.  Budget:
  **≥ 90 %** retained (in practice 100 %; the handoff is push-before-
  flip, not best-effort invalidation).
* **handoff wall time** — how long the warm push itself took, from the
  router's ``handoff_seconds`` summary.
* **replication overhead** — cache-cold jobs/s through a 2-shard fleet
  at ``--replication 1`` vs the default ``--replication 2``.  Replica
  writes are buffered on the router and flushed as one coalesced
  cache-import POST per target shard per ``replica_flush_s`` window,
  entirely off the response path; budgeted at **< 5 %** when there is
  a spare core for the flush to run on.  The measurement alternates
  rf1/rf2 trials and keeps the best rate of each, which cancels
  run-ordering warm-up bias — but on a single-CPU container (see the
  ``cpus`` field in the recorded entry) the flush still time-shares
  the one core with serial synthesis, so the measured fraction there
  is an upper bound, not the quiet-box cost.

Results are appended to the ``history`` list of ``BENCH_core.json``;
``--smoke`` runs the retention drill only, gated on the retention floor
and a wall-time budget, and does not touch the JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_reshard.py
    PYTHONPATH=src python benchmarks/bench_reshard.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from bench_record import append_entry

from repro.serve import Client, RouterConfig, ShardRouter

RETENTION_FLOOR_PCT = 90.0

#: Distinct-by-constant designs (constants land in the DFG structure,
#: so every design has its own fingerprint and ring position).
DESIGN = """input a b c
t1 = a + {k} * b
t2 = t1 * c
x = t2 - {k2}
output x
"""


def _sources(count, salt=0):
    return [DESIGN.format(k=3 + salt + i, k2=7 + salt + i) for i in range(count)]


def measure_retention(entries, cs):
    """Warm 2 shards, grow to 3, resubmit: % still served as hits."""
    router = ShardRouter(
        RouterConfig(
            port=0,
            shards=2,
            cache_entries=1,  # the router L2 cannot mask a broken handoff
            shard_args=("--serial", "--batch-wait-ms", "2",
                        "--cache-entries", str(max(1024, 2 * entries))),
        )
    )
    handle = router.start_in_thread()
    try:
        client = Client(handle.url, timeout=300.0)
        sources = _sources(entries)
        for source in sources:
            out = client.schedule(source=source, cs=cs, wait=True, timeout=300)
            assert out["result"]["ok"], out

        reshard_start = time.perf_counter()
        added = client.admin_add_shard()
        reshard_s = time.perf_counter() - reshard_start

        hits = 0
        for source in sources:
            again = client.schedule(source=source, cs=cs, wait=True, timeout=300)
            assert again["result"]["ok"], again
            if again["job"]["cache"] == "hit":
                hits += 1
        retention_pct = 100.0 * hits / entries
        handoff_s, _count = router.metrics.summary_value("handoff_seconds")
        return {
            "retention_pct": round(retention_pct, 2),
            "handoff_entries": added["handoff_entries"],
            "handoff_seconds": round(handoff_s, 4),
            "reshard_seconds": round(reshard_s, 3),
        }
    finally:
        handle.stop()


def _replication_trial(replication, jobs, clients, cs, salt):
    """One cache-cold throughput run: jobs/s through a fresh fleet."""
    router = ShardRouter(
        RouterConfig(
            port=0,
            shards=2,
            replication=replication,
            shard_args=("--serial", "--batch-wait-ms", "2",
                        "--queue-size", str(max(64, jobs))),
        )
    )
    handle = router.start_in_thread()
    try:
        client = Client(handle.url, timeout=300.0)
        for source in _sources(4, salt=10_000):  # warm the processes
            client.schedule(source=source, cs=cs, wait=True, timeout=300)
        sources = _sources(jobs, salt=salt)

        def submit(source):
            out = client.schedule(source=source, cs=cs, wait=True, timeout=300)
            assert out["result"]["ok"], out
            assert out["job"]["cache"] == "miss", out["job"]

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(submit, sources))
        return jobs / (time.perf_counter() - start)
    finally:
        handle.stop()


def measure_replication_overhead(jobs, clients, cs, trials=3):
    """Cache-cold jobs/s at replication 1 vs 2 on a 2-shard fleet.

    Trials alternate rf1/rf2 and the best rate per factor wins: a
    single back-to-back pair confounds the comparison with whichever
    run the OS warmed up first, and best-of-N is the standard estimate
    of uncontended capability for a throughput microbenchmark.
    """
    best = {1: 0.0, 2: 0.0}
    for trial in range(trials):
        for replication in (1, 2):
            salt = 20_000 * (trial + 1) + 1000 * replication
            rate = _replication_trial(replication, jobs, clients, cs, salt)
            best[replication] = max(best[replication], rate)
    overhead = best[1] / best[2] - 1.0 if best[2] > 0 else 0.0
    return best, overhead


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI variant: retention drill only, gated, no JSON write",
    )
    parser.add_argument("--entries", type=int, default=None,
                        help="warm cache entries (default 200, smoke 24)")
    parser.add_argument("--jobs", type=int, default=32,
                        help="cold jobs per replication run (default 32)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--cs", type=int, default=4)
    parser.add_argument("--trials", type=int, default=3,
                        help="alternating rf1/rf2 trials, best-of wins "
                             "(default 3)")
    parser.add_argument("--budget", type=float, default=180.0,
                        help="smoke wall-time budget in seconds (default 180)")
    parser.add_argument("--label", default="elastic-fleet",
                        help="history-entry label recorded in BENCH_core.json")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_core.json"),
        help="output path (default: repo root BENCH_core.json)",
    )
    args = parser.parse_args(argv)
    entries = args.entries or (24 if args.smoke else 200)

    start = time.perf_counter()
    retention = measure_retention(entries, args.cs)
    print(
        f"retention: {retention['retention_pct']:.1f}% of {entries} warm "
        f"entries still hits after 2→3 reshard "
        f"({retention['handoff_entries']} handed off in "
        f"{retention['handoff_seconds']:.3f} s)"
    )

    if args.smoke:
        wall = time.perf_counter() - start
        failed = False
        if retention["retention_pct"] < RETENTION_FLOOR_PCT:
            print(
                f"FAIL: retention {retention['retention_pct']:.1f}% "
                f"< {RETENTION_FLOOR_PCT:g}% floor",
                file=sys.stderr,
            )
            failed = True
        if wall > args.budget:
            print(
                f"FAIL: smoke took {wall:.1f} s (budget {args.budget:g} s)",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
        print(f"smoke OK ({wall:.1f} s <= {args.budget:g} s budget)")
        return 0

    rates, overhead = measure_replication_overhead(
        args.jobs, args.clients, args.cs, trials=args.trials
    )
    print(
        f"replication: rf1 {rates[1]:.1f} jobs/s, rf2 {rates[2]:.1f} jobs/s "
        f"({overhead:+.1%} overhead, best of {args.trials} trials each)"
    )
    assert retention["retention_pct"] >= RETENTION_FLOOR_PCT, retention

    entry = {
        "benchmark": "reshard",
        "label": args.label,
        "entries": entries,
        "jobs": args.jobs,
        "clients": args.clients,
        "trials": args.trials,
        "cpus": os.cpu_count(),
        "cs": args.cs,
        "retention_pct": retention["retention_pct"],
        "handoff_entries": retention["handoff_entries"],
        "handoff_seconds": retention["handoff_seconds"],
        "reshard_seconds": retention["reshard_seconds"],
        "rf1_jobs_per_s": round(rates[1], 2),
        "rf2_jobs_per_s": round(rates[2], 2),
        "replication_overhead_fraction": round(overhead, 4),
    }
    out = append_entry(entry, "reshard", Path(args.out))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
