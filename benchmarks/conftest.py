"""Shared fixtures for the benchmark suite.

Every benchmark prints the regenerated table/figure once per session, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the paper-artifact
regeneration command.  See EXPERIMENTS.md for the paper-vs-measured log.

Two suite-wide policies also live here:

* ``--runslow`` gates the expensive tiers (the 10k-op scalability
  workloads are marked ``@pytest.mark.slow`` and skip by default);
* ``BENCH_core.json`` is schema-validated once per session, so an entry
  appended without the required ``benchmark``/``label`` keys fails the
  suite instead of silently drifting (see ``bench_record.py``).
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_record  # noqa: E402  (needs the path tweak above)

_printed = set()


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run benchmarks marked slow (10k-op scalability tiers)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: expensive benchmark tier, needs --runslow"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session", autouse=True)
def validate_bench_history():
    """Fail the session if BENCH_core.json has drifted off-schema."""
    path = bench_record.DEFAULT_PATH
    if path.exists():
        bench_record.validate_history(
            json.loads(path.read_text()), where=str(path)
        )


@pytest.fixture
def report(capsys):
    """``report(key, text)`` prints ``text`` once per session per key."""

    def print_once(key, text):
        if key in _printed:
            return
        _printed.add(key)
        with capsys.disabled():
            print()
            print(text)

    return print_once
