"""Shared fixtures for the benchmark suite.

Every benchmark prints the regenerated table/figure once per session, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the paper-artifact
regeneration command.  See EXPERIMENTS.md for the paper-vs-measured log.
"""

import pytest

_printed = set()


@pytest.fixture
def report(capsys):
    """``report(key, text)`` prints ``text`` once per session per key."""

    def print_once(key, text):
        if key in _printed:
            return
        _printed.add(key)
        with capsys.disabled():
            print()
            print(text)

    return print_once
