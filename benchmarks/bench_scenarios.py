"""Scenario-matrix throughput: serial vs warm process pool, BENCH_core.json.

One measurement around :func:`repro.scenarios.run_matrix`: a fixed
smoke-sized matrix (two generator families × seeds × three schedulers)
is run on the serial backend and again through a warm process pool
(``keep_pool=True`` via repeated maps would hide expansion cost, so the
matrix runs whole each time — what the CI ``scenario-smoke`` job and a
developer's ``repro-hls scenarios run --parallel`` actually pay).
Grids are asserted byte-identical across backends before any timing is
recorded — a pool that changed the bytes would be a correctness bug,
not a performance number.

The history entry records ``scenarios_per_s`` for both backends plus
``cpus`` (a single-core box documents pool overhead, not scaling).
``--smoke`` asserts equivalence with generous ceilings and writes
nothing.

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py
    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from bench_record import append_entry

from repro.scenarios import expand_matrix, grid_payload, normalize_config, run_matrix

MATRIX = {
    "name": "bench",
    "seeds": [1, 2, 3],
    "generators": [
        "random:ops=24:mix=mul*2+add+sub:cond=1",
        "layered:layers=5:width=4",
    ],
    "schedulers": ["mfs", "mfsa", "list"],
}


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure(repeat):
    config = normalize_config(MATRIX)
    n_scenarios = len(expand_matrix(config))

    serial_run, _ = _timed(lambda: run_matrix(config, backend="serial"))
    pooled_run, _ = _timed(lambda: run_matrix(config, backend="process"))
    serial_grid = json.dumps(grid_payload(serial_run), sort_keys=True)
    pooled_grid = json.dumps(grid_payload(pooled_run), sort_keys=True)
    assert serial_grid == pooled_grid, "pooled grid diverged from serial"

    serial_s = min(
        _timed(lambda: run_matrix(config, backend="serial"))[1]
        for _ in range(repeat)
    )
    pooled_s = min(
        _timed(lambda: run_matrix(config, backend="process"))[1]
        for _ in range(repeat)
    )
    return n_scenarios, serial_s, pooled_s


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI variant: assert backend equivalence, no JSON write",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="best-of repeats per backend (default 3)",
    )
    parser.add_argument(
        "--label", default="scenarios",
        help="history-entry label recorded in BENCH_core.json",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_core.json"),
        help="output path (default: repo root BENCH_core.json)",
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    n_scenarios, serial_s, pooled_s = measure(1 if args.smoke else args.repeat)
    serial_rate = round(n_scenarios / serial_s, 2) if serial_s else 0.0
    pooled_rate = round(n_scenarios / pooled_s, 2) if pooled_s else 0.0
    print(
        f"{n_scenarios}-scenario matrix ({cpus} cpu): "
        f"serial {serial_s * 1e3:.1f} ms ({serial_rate}/s), "
        f"process {pooled_s * 1e3:.1f} ms ({pooled_rate}/s), "
        f"grids byte-identical"
    )

    if args.smoke:
        if serial_s <= 0 or pooled_s <= 0:
            print("FAIL: degenerate timing", file=sys.stderr)
            return 1
        print("smoke OK: backends byte-identical, matrix alive")
        return 0

    entry = {
        "cpus": cpus,
        "scenarios": n_scenarios,
        "serial_ms": round(serial_s * 1e3, 3),
        "process_ms": round(pooled_s * 1e3, 3),
        "serial_scenarios_per_s": serial_rate,
        "process_scenarios_per_s": pooled_rate,
        "grids_identical": True,
        "label": args.label,
    }
    out = append_entry(entry, "scenarios", Path(args.out))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
