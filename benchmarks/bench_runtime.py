"""Reproduces the §6 runtime claims.

Paper: "the CPU time for all examples is less than 0.2 seconds" (MFS) and
"less than 0.4 seconds" (MFSA) on a 1992 SPARC-SLC.  We benchmark each
example and hold the implementation to the same absolute per-example
budget on modern hardware — generous, but it catches complexity
regressions, and the measured times land in EXPERIMENTS.md.
"""

import pytest

from repro.bench.suites import EXAMPLES
from repro.bench.table1 import run_case
from repro.bench.table2 import run_example


@pytest.mark.parametrize("key", sorted(EXAMPLES))
def test_mfs_runtime(benchmark, key):
    spec = EXAMPLES[key]
    case = spec.table1_cases[0]
    result = benchmark(run_case, spec, case)
    result.schedule.validate()
    assert benchmark.stats.stats.mean < 0.2


@pytest.mark.parametrize("key", sorted(EXAMPLES))
@pytest.mark.parametrize("style", [1, 2])
def test_mfsa_runtime(benchmark, key, style):
    spec = EXAMPLES[key]
    result = benchmark(run_example, spec, style)
    result.schedule.validate()
    assert benchmark.stats.stats.mean < 0.4
