"""Resilience-cost harness: recovery time and retry overhead, to BENCH_core.json.

Two questions, both answered with wall clocks:

* **recovery time** — how long a restarted server takes to replay a
  journal of completed jobs back into its cache and job table.  A
  journal of N ``complete`` records is written the way a crashed server
  would have left it, then ``ServeApp.start`` (which runs ``_recover``
  before binding the listener) is timed on a fresh app.
* **retry overhead** — what the client-side resilience machinery
  (retry budget + seeded backoff policy + circuit breaker) costs on the
  fault-free path, measured as round-trip latency of cache-hit
  submissions with ``retries=3`` + breaker versus a bare client.  The
  budgeted ceiling is <5 % — on the happy path the machinery is one
  extra ``before_call``/``record_success`` pair per request.

Results are appended to the ``history`` list of ``BENCH_core.json``;
``--smoke`` runs a quick variant with generous ceilings for CI and does
not touch the JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke
"""

from __future__ import annotations

import argparse
import statistics
import sys
import tempfile
import time
from pathlib import Path

from bench_record import append_entry

from repro.resilience.retry import CircuitBreaker
from repro.resilience.journal import JobJournal
from repro.serve import Client, ServeApp
from repro.serve.jobs import cache_key, execute_spec, normalize_spec, response_text

SRC = """input a b c d
t1 = a + b
t2 = t1 * c
x = t2 - d
output x
"""

#: CI smoke ceilings — generous: shared runners are slow and noisy.
SMOKE_REPLAY_CEILING_S = 5.0
SMOKE_OVERHEAD_CEILING = 0.50  # 50 % on a noisy runner; real budget is 5 %


def _write_completed_journal(path: str, jobs: int) -> None:
    """A journal a crashed server would leave: N admitted+completed jobs."""
    spec = normalize_spec("mfs", {"source": SRC, "cs": 6})
    payload, _perf = execute_spec(spec)
    text = response_text(payload)
    journal = JobJournal(path, fsync=False)
    for index in range(jobs):
        # Distinct keys so every record lands its own cache entry.
        key = f"{cache_key(spec)}-{index:04d}"
        job_id = f"j{index:05d}-replay"
        journal.record_admit(job_id, key, spec, timeout_s=60.0)
        journal.record_complete(job_id, "done", True, text, key=key)
    journal.close()


def measure_recovery(jobs: int) -> float:
    """Seconds to boot a server over a journal of ``jobs`` completed jobs."""
    with tempfile.TemporaryDirectory() as state:
        _write_completed_journal(f"{state}/jobs.journal.jsonl", jobs)
        start = time.perf_counter()
        app = ServeApp(port=0, state_dir=state, job_history=jobs + 1)
        handle = app.start_in_thread()
        elapsed = time.perf_counter() - start
        try:
            recovered = app.metrics.counter_value(
                "recovered_jobs", kind="completed"
            )
            assert recovered == jobs, (recovered, jobs)
            assert len(app.cache) == jobs
        finally:
            handle.stop(drain=False)
        return elapsed


def measure_retry_overhead(repeat: int) -> "tuple[float, float]":
    """Median cache-hit round-trip: bare client vs full resilience stack."""
    app = ServeApp(port=0, backend="serial")
    handle = app.start_in_thread()
    try:
        bare = Client(handle.url)
        armored = Client(
            handle.url,
            retries=3,
            breaker=CircuitBreaker(threshold=8),
            retry_seed=0,
        )
        bare.schedule(source=SRC, cs=6, wait=True)  # populate the cache

        def median_rtt(client):
            samples = []
            for _ in range(repeat):
                start = time.perf_counter()
                out = client.schedule(source=SRC, cs=6, wait=True)
                samples.append(time.perf_counter() - start)
                assert out["job"]["cache"] == "hit"
            return statistics.median(samples)

        # Interleave a warm-up of each before timing either.
        median_rtt(bare)
        median_rtt(armored)
        return median_rtt(bare), median_rtt(armored)
    finally:
        handle.stop()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=100,
                        help="journal size for the recovery measurement")
    parser.add_argument("--repeat", type=int, default=40,
                        help="cache-hit samples per client variant")
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI variant with generous ceilings; "
                        "does not write the JSON")
    parser.add_argument("--out", default="BENCH_core.json")
    args = parser.parse_args()

    jobs = 20 if args.smoke else args.jobs
    repeat = 10 if args.smoke else args.repeat

    replay_s = measure_recovery(jobs)
    bare_s, armored_s = measure_retry_overhead(repeat)
    overhead = armored_s / bare_s - 1.0 if bare_s > 0 else 0.0

    entry = {
        "recovery_jobs": jobs,
        "recovery_replay_ms": round(replay_s * 1e3, 3),
        "recovery_ms_per_job": round(replay_s * 1e3 / jobs, 4),
        "retry_repeat": repeat,
        "bare_hit_rtt_ms": round(bare_s * 1e3, 4),
        "armored_hit_rtt_ms": round(armored_s * 1e3, 4),
        "retry_overhead_fraction": round(overhead, 4),
        "label": "resilience-layer (journal replay + retry machinery)",
    }
    print(
        f"journal replay: {jobs} jobs in {entry['recovery_replay_ms']:.1f} ms "
        f"({entry['recovery_ms_per_job']:.3f} ms/job)"
    )
    print(
        f"cache-hit RTT: bare {entry['bare_hit_rtt_ms']:.3f} ms, "
        f"with retries+breaker {entry['armored_hit_rtt_ms']:.3f} ms "
        f"({overhead:+.1%} overhead)"
    )

    if args.smoke:
        if replay_s > SMOKE_REPLAY_CEILING_S:
            print(
                f"FAIL: replay of {jobs} jobs took {replay_s:.2f} s "
                f"(ceiling {SMOKE_REPLAY_CEILING_S} s)",
                file=sys.stderr,
            )
            return 1
        if overhead > SMOKE_OVERHEAD_CEILING:
            print(
                f"FAIL: fault-free retry overhead {overhead:.1%} "
                f"(ceiling {SMOKE_OVERHEAD_CEILING:.0%})",
                file=sys.stderr,
            )
            return 1
        print("smoke OK: replay and overhead within ceilings")
        return 0

    out = append_entry(entry, "resilience", Path(args.out))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
