"""Regenerates the paper's **Figure 2** (PF/RF/FF/MF frames of an op).

Like the paper's operation ``r``, the rendered operation has two placed
predecessors (the K marks).  Asserts the four frame regions are present
and that the selected position lies inside the move frame.
"""

import pytest

from repro.bench.figures import figure2
from repro.bench.suites import EXAMPLES



@pytest.mark.parametrize("key", ["ex3", "ex6"])
def test_figure2(benchmark, report, key):
    text = benchmark(figure2, key)
    assert "Figure 2" in text
    assert "PF rows" in text
    body = text.split("legend")[0]
    assert "*" in body  # the selected position
    assert "K" in body  # placed predecessors
    report(f"figure2-{key}", text)


def test_figure2_selected_position_was_in_move_frame():
    """The * mark must be a position the move frame offered."""
    from repro.bench.figures import _run

    result = _run("ex3")
    for name, frame in result.frames_log.items():
        chosen = result.placements[name]
        assert chosen in frame.mf
