"""Ablations of the design choices DESIGN.md calls out.

* **Weighted Liapunov (§4.1)** — emphasising one of w_ALU / w_MUX / w_REG
  must not worsen the corresponding metric;
* **Redundant-frame reuse rule** — MFSA's reuse-first instance policy vs
  the eager policy (always offer a fresh instance): reuse-first must give
  strictly cheaper ALU area on the multiplier-heavy examples;
* **Mux input-sharing optimisation (§5.6)** — the optimiser must beat the
  naive fixed-orientation assignment on the merged-ALU examples.
"""

import pytest

from repro.core.liapunov import LiapunovWeights
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library
from repro.bench.suites import EXAMPLES


def run(key, **kwargs):
    spec = EXAMPLES[key]
    ops = standard_operation_set(spec.mfsa_mul_latency)
    timing = TimingModel(ops=ops, clock_period_ns=spec.mfsa_clock_ns)
    scheduler = MFSAScheduler(
        spec.build(), timing, datapath_library(), cs=spec.mfsa_cs, **kwargs
    )
    return scheduler.run()


class TestWeightAblation:
    @pytest.mark.parametrize("key", ["ex3", "ex4"])
    def test_alu_weight(self, benchmark, key):
        plain = run(key)
        heavy = benchmark(run, key, weights=LiapunovWeights(alu=25.0))
        assert heavy.cost.alu <= plain.cost.alu

    @pytest.mark.parametrize("key", ["ex3", "ex4"])
    def test_reg_weight(self, key):
        plain = run(key)
        heavy = run(key, weights=LiapunovWeights(reg=25.0))
        assert (
            heavy.datapath.register_count() <= plain.datapath.register_count()
        )

    @pytest.mark.parametrize("key", ["ex3", "ex4"])
    def test_mux_weight(self, key):
        plain = run(key)
        heavy = run(key, weights=LiapunovWeights(mux=25.0))
        assert heavy.cost.mux <= plain.cost.mux + 1e-9


class TestOpenPolicyAblation:
    """The paper's reuse-first redundant-frame rule vs eager opening."""

    @pytest.mark.parametrize("key", ["ex3", "ex5", "ex6"])
    def test_reuse_first_is_cheaper(self, benchmark, key):
        reuse = run(key, open_policy="reuse-first")
        eager = benchmark(run, key, open_policy="eager")
        assert reuse.cost.alu < eager.cost.alu

    def test_eager_opens_more_instances(self):
        reuse = run("ex3", open_policy="reuse-first")
        eager = run("ex3", open_policy="eager")
        assert len(eager.alu_labels()) > len(reuse.alu_labels())


class TestMuxOptimisationAblation:
    def test_optimiser_beats_fixed_orientation(self):
        from repro.allocation.mux import (
            MuxOperand,
            optimize_mux_inputs,
        )

        result = run("ex6")
        improvements = 0
        for instance in result.datapath.instances.values():
            operands = []
            dfg = result.schedule.dfg
            ops = result.schedule.timing.ops
            for name in instance.ops:
                node = dfg.node(name)
                signals = node.operand_names()
                operands.append(
                    MuxOperand(
                        op=name,
                        left=signals[0],
                        right=signals[1] if len(signals) > 1 else None,
                        commutative=ops.spec(node.kind).commutative,
                    )
                )
            optimised = optimize_mux_inputs(operands).total_inputs
            naive = len({o.left for o in operands}) + len(
                {o.right for o in operands if o.right is not None}
            )
            assert optimised <= naive
            if optimised < naive:
                improvements += 1
        assert improvements >= 1  # sharing actually pays off somewhere
