"""Trace-overhead harness: proves the recorder's cost budget, emits BENCH_core.json.

Measures, on the paper's hardest example (EWF, ``ewf()``, T = 17):

* the plain cached MFSA run (``trace=None`` — the disabled path, which
  must cost ~0 %: every hot-path emission is behind one ``is not None``);
* the same run with a :class:`~repro.trace.recorder.TraceRecorder`
  attached (no perf counters, so the comparison isolates the recorder);
* the MFS run, plain vs traced, for the §3 kernel;
* one traced-run materialisation (``events()`` + JSONL serialisation),
  reported separately — serialisation happens once after the run and is
  not part of the scheduling overhead budget.

The budget (<5 % overhead with tracing enabled on the EWF MFSA kernel)
is asserted in ``--smoke`` mode with a generous margin for noisy CI
boxes; the full run appends the measured numbers to the ``history`` list
of ``BENCH_core.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py
    PYTHONPATH=src python benchmarks/bench_trace_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from pathlib import Path

from bench_record import append_entry

from repro.allocation.mux import clear_mux_memo
from repro.bench.suites import EXAMPLES
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library
from repro.trace.recorder import TraceRecorder

EWF_KEY = "ex6"  # the elliptic wave filter, ewf(), T = 17

#: Overhead budget for the enabled recorder on the EWF MFSA kernel.
OVERHEAD_BUDGET = 0.05

#: CI smoke margin: wall-clock noise on a loaded box easily exceeds the
#: real overhead at millisecond scale, so the smoke assertion allows 3x
#: the budget; the recorded full-run numbers hold the real line.
SMOKE_MARGIN = 3.0


def best_of_pair(plain_fn, traced_fn, repeat):
    """Best-of timings for the plain and traced variants, interleaved.

    Measuring one variant's repeats back to back and then the other's
    lets CPU-frequency and load drift between the two phases masquerade
    as overhead at millisecond scale; alternating the variants inside a
    single loop exposes both to the same drift.  The collector is paused
    for the timed region: the traced run's retained event tuples
    otherwise tip generational GC into collecting *during* the traced
    run but not the plain one, billing the recorder for collector sweeps
    of the whole heap.
    """
    best_plain = best_traced = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeat):
            start = time.perf_counter()
            plain_fn()
            best_plain = min(best_plain, time.perf_counter() - start)
            start = time.perf_counter()
            traced_fn()
            best_traced = min(best_traced, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_plain, best_traced


def measure(repeat):
    spec = EXAMPLES[EWF_KEY]
    dfg = spec.build()
    ops = standard_operation_set(mul_latency=spec.mfsa_mul_latency)
    timing = TimingModel(ops=ops, clock_period_ns=spec.mfsa_clock_ns)
    library = datapath_library()

    def mfsa(trace=None):
        return MFSAScheduler(
            dfg, timing, library, cs=spec.mfsa_cs, style=1, trace=trace
        ).run()

    case = spec.table1_cases[0]
    mfs_ops = standard_operation_set(mul_latency=case.mul_latency)
    mfs_timing = TimingModel(ops=mfs_ops, clock_period_ns=case.clock_ns)

    def mfs(trace=None):
        return MFSScheduler(
            dfg, mfs_timing, cs=case.cs, mode="time",
            latency_l=case.latency_l, pipelined_kinds=case.pipelined_kinds,
            trace=trace,
        ).run()

    # Warm the process-wide mux memo once so plain and traced runs hit
    # identical cache states (tracing must not change what is computed).
    clear_mux_memo()
    plain = mfsa()
    probe = TraceRecorder()
    traced = mfsa(trace=probe)
    assert traced.schedule.starts == plain.schedule.starts, (
        "tracing changed the schedule"
    )
    events = len(probe)

    mfsa_plain_s, mfsa_traced_s = best_of_pair(
        lambda: mfsa(), lambda: mfsa(trace=TraceRecorder()), repeat
    )
    mfs_plain_s, mfs_traced_s = best_of_pair(
        lambda: mfs(), lambda: mfs(trace=TraceRecorder()), repeat
    )

    # Materialisation cost (events() + JSONL), once, outside the budget.
    start = time.perf_counter()
    jsonl = probe.to_jsonl()
    serialise_s = time.perf_counter() - start

    return {
        "example": EWF_KEY,
        "cs": spec.mfsa_cs,
        "repeat": repeat,
        "events": events,
        "jsonl_bytes": len(jsonl),
        "mfsa_plain_ms": round(mfsa_plain_s * 1e3, 3),
        "mfsa_traced_ms": round(mfsa_traced_s * 1e3, 3),
        "mfsa_overhead": round(mfsa_traced_s / mfsa_plain_s - 1.0, 4),
        "mfs_plain_ms": round(mfs_plain_s * 1e3, 3),
        "mfs_traced_ms": round(mfs_traced_s * 1e3, 3),
        "mfs_overhead": round(mfs_traced_s / mfs_plain_s - 1.0, 4),
        "serialise_ms": round(serialise_s * 1e3, 3),
        "budget": OVERHEAD_BUDGET,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI variant: fewer repeats, assert the overhead budget "
        "(with noise margin), do not write BENCH_core.json",
    )
    parser.add_argument(
        "--repeat", type=int, default=None,
        help="best-of repeat count (default 30, smoke 10)",
    )
    parser.add_argument(
        "--label", default="trace-layer",
        help="history-entry label recorded in BENCH_core.json",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_core.json"),
        help="output path (default: repo root BENCH_core.json)",
    )
    args = parser.parse_args(argv)
    repeat = args.repeat or (10 if args.smoke else 30)

    entry = measure(repeat)
    entry["label"] = args.label
    entry["benchmark"] = "trace_overhead"
    print(
        f"EWF (T={entry['cs']}) MFSA: plain {entry['mfsa_plain_ms']:.2f} ms, "
        f"traced {entry['mfsa_traced_ms']:.2f} ms "
        f"-> {entry['mfsa_overhead']:+.1%} ({entry['events']} events)"
    )
    print(
        f"EWF MFS: plain {entry['mfs_plain_ms']:.2f} ms, "
        f"traced {entry['mfs_traced_ms']:.2f} ms "
        f"-> {entry['mfs_overhead']:+.1%}"
    )
    print(
        f"materialise + JSONL: {entry['serialise_ms']:.2f} ms "
        f"({entry['jsonl_bytes']} bytes, once per run)"
    )

    if args.smoke:
        ceiling = OVERHEAD_BUDGET * SMOKE_MARGIN
        if entry["mfsa_overhead"] > ceiling:
            print(
                f"FAIL: traced EWF MFSA overhead {entry['mfsa_overhead']:.1%} "
                f"exceeds the smoke ceiling {ceiling:.0%}",
                file=sys.stderr,
            )
            return 1
        print(
            f"smoke OK: {entry['mfsa_overhead']:+.1%} <= {ceiling:.0%} ceiling"
        )
        return 0

    out = append_entry(entry, "trace_overhead", Path(args.out))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
