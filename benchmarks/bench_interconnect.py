"""Interconnect-style study: multiplexers vs buses (§4.1's "(or buses)").

For every example, cost the MFSA datapath under both interconnect styles
and report the comparison; sanity-shape: bus count equals the peak number
of simultaneous operand transfers, and sharing keeps transfers-per-wire
at or above 1.
"""

import pytest

from repro.allocation.buses import allocate_buses, compare_interconnect_styles
from repro.allocation.interconnect import sharing_ratio, wire_count
from repro.bench.suites import EXAMPLES
from repro.bench.table2 import run_example


@pytest.mark.parametrize("key", sorted(EXAMPLES))
def test_interconnect_styles(benchmark, report, key):
    spec = EXAMPLES[key]
    result = run_example(spec, style=1)
    datapath = result.datapath

    comparison = benchmark(compare_interconnect_styles, datapath)
    allocation = allocate_buses(datapath)
    assert allocation.bus_count == allocation.peak_parallel_transfers()
    assert sharing_ratio(datapath) >= 1.0
    assert wire_count(datapath) >= 1

    lines = [
        f"#{spec.number} ({key}): mux {comparison.mux_area:.0f} um^2 "
        f"({comparison.mux_count} muxes) vs bus {comparison.bus_area:.0f} "
        f"um^2 ({comparison.bus_count} buses) -> {comparison.winner}"
    ]
    report(f"interconnect-{key}", "\n".join(lines))


def test_bus_count_tracks_parallelism():
    """Tighter schedules (more parallel transfers) need more buses."""
    spec = EXAMPLES["ex6"]
    from repro.bench.suites import ewf
    from repro.core.mfsa import MFSAScheduler
    from repro.dfg.analysis import TimingModel
    from repro.dfg.ops import standard_operation_set
    from repro.library.ncr import datapath_library

    timing = TimingModel(ops=standard_operation_set(2))
    library = datapath_library()
    tight = MFSAScheduler(ewf(), timing, library, cs=17).run()
    loose = MFSAScheduler(ewf(), timing, library, cs=34).run()
    assert (
        allocate_buses(tight.datapath).bus_count
        >= allocate_buses(loose.datapath).bus_count
    )
