"""Kernel-scaling harness: scalar vs vector MFS/MFSA, emits BENCH_core.json.

Times both scheduling kernels (the pure-python scalar reference and the
numpy bitmask-grid vector path, see :mod:`repro.core.kernel`) on seeded
layered workloads of 100, 1 000 and 10 000 operations.  The time budget
uses generous slack (``cs = critical_path + slack``): tall move-frame
grids are exactly the regime where the candidate scan dominates and the
vector kernel pays.

Before any timing, every tier asserts the two kernels produce
byte-identical schedules, costs and ALU labels — the numbers are only
comparable because the designs are equal.  Timings are best-of-N around
``scheduler.run()`` with the process-wide mux memo cleared per run, so
both kernels start cache-cold.

The 10k-op scalar rows are skipped by default (the scalar MFSA run is
minutes of wall clock); ``--full`` measures them too.  Results land in
the ``history`` list of ``BENCH_core.json`` as a ``kernel_scaling``
entry; ``--smoke`` runs only the 100-op tier against a checked-in
wall-clock budget (fail at 2x) and does not write the JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke
    PYTHONPATH=src python benchmarks/bench_kernels.py --full
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from bench_record import append_entry

from repro.allocation.mux import clear_mux_memo
from repro.core import kernel as kernel_mod
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.generators import layered_workload
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import datapath_library

SEED = 7

#: (ops -> layers, width, slack).  slack is added to the critical path.
#: The 10k tier uses modest slack (grid height drives cost for *both*
#: kernels) and, by default, times the vector kernel only — the scalar
#: rows there are minutes of wall clock and need ``--full``.
TIERS = [
    {"ops": 100, "layers": 5, "width": 20, "slack": 40, "repeat": 5},
    {"ops": 1000, "layers": 25, "width": 40, "slack": 400, "repeat": 3},
    {"ops": 10000, "layers": 50, "width": 200, "slack": 10, "repeat": 1,
     "scalar_needs_full": True},
]

#: Smoke budget for one cache-cold vector-path (``auto``) MFSA run on
#: the 100-op tier.  Measured ~21 ms on the reference box; CI fails the
#: perf-smoke job only when the wall time regresses past 2x this budget,
#: so noise and slower runners don't trip it but complexity regressions
#: in the kernel do.
SMOKE_BUDGET_MS = 150.0


def best_of(fn, repeat):
    best = float("inf")
    for _ in range(repeat):
        clear_mux_memo()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def build_tier(tier):
    timing = TimingModel(ops=standard_operation_set())
    dfg = layered_workload(
        seed=SEED, layers=tier["layers"], width=tier["width"]
    )
    cs = critical_path_length(dfg, timing) + tier["slack"]
    library = datapath_library()
    return dfg, timing, library, cs


def runners(dfg, timing, library, cs, kern):
    # record_alternatives=False is the production fast path (alternative
    # placements are only materialised for tracing); it also unlocks the
    # vector kernel's zero-mux column pruning, the regime the speedup
    # targets are defined in.
    mfs = lambda: MFSScheduler(  # noqa: E731
        dfg, timing, cs=cs, mode="time", kernel=kern,
        record_alternatives=False,
    ).run()
    mfsa = lambda: MFSAScheduler(  # noqa: E731
        dfg, timing, library, cs=cs, kernel=kern,
        record_alternatives=False,
    ).run()
    return mfs, mfsa


def assert_identical(a, b, what):
    assert a.schedule.starts == b.schedule.starts, f"{what}: starts diverge"
    assert a.trajectory == b.trajectory, f"{what}: trajectory diverges"


def measure_tier(tier, full):
    dfg, timing, library, cs = build_tier(tier)
    do_scalar = full or not tier.get("scalar_needs_full")
    row = {
        "ops": len(dfg),
        "layers": tier["layers"],
        "width": tier["width"],
        "cs": cs,
        "repeat": tier["repeat"],
    }

    mfs_v, mfsa_v = runners(dfg, timing, library, cs, "vector")
    if do_scalar:
        mfs_s, mfsa_s = runners(dfg, timing, library, cs, "scalar")
        # Equivalence guard before any timing.
        clear_mux_memo()
        vec = mfsa_v()
        clear_mux_memo()
        sca = mfsa_s()
        assert_identical(vec, sca, f"MFSA @{len(dfg)} ops")
        assert vec.cost == sca.cost
        assert vec.alu_labels() == sca.alu_labels()
        assert_identical(mfs_v(), mfs_s(), f"MFS @{len(dfg)} ops")

    repeat = tier["repeat"]
    row["mfs_vector_ms"] = round(best_of(mfs_v, repeat) * 1e3, 1)
    row["mfsa_vector_ms"] = round(best_of(mfsa_v, repeat) * 1e3, 1)
    if do_scalar:
        scalar_mfs_s = best_of(mfs_s, repeat)
        scalar_mfsa_s = best_of(mfsa_s, repeat)
        row["mfs_scalar_ms"] = round(scalar_mfs_s * 1e3, 1)
        row["mfsa_scalar_ms"] = round(scalar_mfsa_s * 1e3, 1)
        row["mfs_speedup"] = round(
            scalar_mfs_s * 1e3 / row["mfs_vector_ms"], 2
        )
        row["mfsa_speedup"] = round(
            scalar_mfsa_s * 1e3 / row["mfsa_vector_ms"], 2
        )
        row["identical"] = True
    else:
        row["mfs_scalar_ms"] = None
        row["mfsa_scalar_ms"] = None
        row["mfs_speedup"] = None
        row["mfsa_speedup"] = None
        row["identical"] = None
    return row


def smoke():
    tier = TIERS[0]
    dfg, timing, library, cs = build_tier(tier)
    clear_mux_memo()
    start = time.perf_counter()
    MFSAScheduler(
        dfg, timing, library, cs=cs, record_alternatives=False
    ).run()
    elapsed_ms = (time.perf_counter() - start) * 1e3
    ceiling = 2 * SMOKE_BUDGET_MS
    kern = kernel_mod.resolve_kernel("auto", len(dfg))
    if elapsed_ms > ceiling:
        print(
            f"FAIL: {len(dfg)}-op MFSA ({kern} kernel) took "
            f"{elapsed_ms:.1f} ms, over 2x the {SMOKE_BUDGET_MS:.0f} ms "
            "budget",
            file=sys.stderr,
        )
        return 1
    print(
        f"smoke OK: {len(dfg)}-op MFSA ({kern} kernel) "
        f"{elapsed_ms:.1f} ms <= {ceiling:.0f} ms ceiling"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI variant: 100-op tier only, assert the wall-clock budget "
        "(2x headroom), do not write BENCH_core.json",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="also measure the scalar kernel on the 10k-op tier "
        "(minutes of wall clock)",
    )
    parser.add_argument(
        "--label", default="vector-kernel",
        help="history-entry label recorded in BENCH_core.json",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_core.json"),
        help="output path (default: repo root BENCH_core.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke()

    if not kernel_mod.HAVE_NUMPY:
        print("numpy not installed: no vector kernel to measure", file=sys.stderr)
        return 1

    tiers = []
    for tier in TIERS:
        row = measure_tier(tier, args.full)
        tiers.append(row)
        mfsa_x = row["mfsa_speedup"]
        mfs_x = row["mfs_speedup"]
        print(
            f"{row['ops']:>6} ops (cs={row['cs']}): "
            f"MFS scalar {row['mfs_scalar_ms']} ms, vector "
            f"{row['mfs_vector_ms']} ms"
            + (f" -> x{mfs_x}" if mfs_x else "")
            + f"; MFSA scalar {row['mfsa_scalar_ms']} ms, vector "
            f"{row['mfsa_vector_ms']} ms"
            + (f" -> x{mfsa_x}" if mfsa_x else "")
        )

    entry = {
        "seed": SEED,
        "tiers": tiers,
        "smoke_budget_ms": SMOKE_BUDGET_MS,
        "label": args.label,
    }
    out = append_entry(entry, "kernel_scaling", Path(args.out))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
