"""Shared BENCH_core.json recording: one append path, one schema.

Every benchmark harness in this directory appends one history entry per
run to ``BENCH_core.json`` at the repo root.  Historically each harness
hand-rolled the read-append-write dance, and the schema drifted: some
entries carried a ``benchmark`` discriminator, some leaned on the
file-level default, and the resilience entry had none at all.  This
module is now the only append path — :func:`append_entry` stamps the
``benchmark`` key and validates the entry before anything touches disk,
and ``conftest.py`` re-validates the whole file at session start so a
drifted checkout fails loudly in the benchmark suite.

Schema (``schema: 1``): the file is an object with ``schema``,
``benchmark`` (historical file-level default, kept for compatibility)
and ``history``; every history entry is an object carrying at least a
non-empty ``benchmark`` string (which suite produced it) and a
non-empty ``label`` string (which PR/layer the measurement belongs to).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

#: Repo-root BENCH_core.json (this file lives in ``benchmarks/``).
DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Keys every history entry must carry, with the required type.
REQUIRED_KEYS = {"benchmark": str, "label": str}


class BenchSchemaError(ValueError):
    """A BENCH_core.json entry (or the file) violates the schema."""


def validate_entry(entry: Any, where: str = "entry") -> Dict[str, Any]:
    """Validate one history entry; return it unchanged on success."""
    if not isinstance(entry, dict):
        raise BenchSchemaError(f"{where}: expected an object, got {type(entry).__name__}")
    for key, kind in REQUIRED_KEYS.items():
        value = entry.get(key)
        if not isinstance(value, kind) or not value:
            raise BenchSchemaError(
                f"{where}: missing or empty required key {key!r} "
                f"(expected non-empty {kind.__name__}, got {value!r})"
            )
    for key, value in entry.items():
        if not isinstance(key, str):  # pragma: no cover - json keys are str
            raise BenchSchemaError(f"{where}: non-string key {key!r}")
        _validate_value(value, f"{where}.{key}")
    return entry


def _validate_value(value: Any, where: str) -> None:
    """Entries must stay plain JSON scalars/lists/objects."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, list):
        for index, item in enumerate(value):
            _validate_value(item, f"{where}[{index}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            _validate_value(item, f"{where}.{key}")
        return
    raise BenchSchemaError(f"{where}: unserialisable value {value!r}")


def validate_history(payload: Any, where: str = "BENCH_core.json") -> List[Dict[str, Any]]:
    """Validate the whole file payload; return the history list."""
    if not isinstance(payload, dict):
        raise BenchSchemaError(f"{where}: expected a top-level object")
    if payload.get("schema") != 1:
        raise BenchSchemaError(f"{where}: unknown schema {payload.get('schema')!r}")
    history = payload.get("history")
    if not isinstance(history, list):
        raise BenchSchemaError(f"{where}: history must be a list")
    for index, entry in enumerate(history):
        validate_entry(entry, where=f"{where}.history[{index}]")
    return history


def load_payload(path: Path = DEFAULT_PATH) -> Dict[str, Any]:
    """Read the file (or a fresh skeleton when absent/corrupt)."""
    payload: Dict[str, Any] = {
        "schema": 1,
        "benchmark": "perf_trajectory",
        "history": [],
    }
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            pass
    payload.setdefault("history", [])
    return payload


def append_entry(
    entry: Dict[str, Any],
    benchmark: str,
    path: Path = DEFAULT_PATH,
) -> Path:
    """Stamp ``benchmark``, validate, append to ``history``, write."""
    entry = dict(entry)
    entry.setdefault("benchmark", benchmark)
    validate_entry(entry, where=f"new {benchmark} entry")
    payload = load_payload(path)
    payload["history"].append(entry)
    validate_history(payload, where=str(path))
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
