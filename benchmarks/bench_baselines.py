"""Reproduces the §6 quality/speed comparison against other schedulers.

Paper claims: (1) MFSA costs are within -4 % … +5 % of FDS/MAHA/ILP
results; (2) "The main advantage of our methods over existing scheduling
and allocation algorithms is in running time."  With the original tools
unavailable we compare against our own force-directed, list and exact
schedulers (see DESIGN.md substitutions):

* quality — MFS matches the exact optimum on the small examples and stays
  within one FU / 5 % weighted area of FDS on all six;
* speed — MFS is benchmarked against FDS on the same inputs; the paper's
  claim translates to MFS being at least a few times faster.
"""

import pytest

from repro.bench.baselines import compare_methods, render_baselines
from repro.bench.suites import EXAMPLES
from repro.dfg.analysis import TimingModel
from repro.dfg.ops import standard_operation_set
from repro.core.mfs import MFSScheduler
from repro.schedule.force_directed import force_directed_schedule



@pytest.fixture(scope="module")
def rows():
    return compare_methods()


def test_quality_table(benchmark, report):
    rows = benchmark(compare_methods)
    by_example = {}
    for row in rows:
        by_example.setdefault(row.example, {})[row.method] = row
    for example, methods in by_example.items():
        if "exact" in methods:
            assert methods["mfs"].total_units == methods["exact"].total_units
        assert methods["mfs"].total_units <= methods["fds"].total_units + 1
        assert (
            methods["mfs"].weighted_area
            <= 1.05 * methods["fds"].weighted_area
        )
    report("baselines", render_baselines(rows))


@pytest.mark.parametrize("key", ["ex5", "ex6"])
def test_mfs_runtime_benchmark(benchmark, key):
    """MFS wall time on the two largest examples (speed-claim numerator)."""
    spec = EXAMPLES[key]
    case = spec.table1_cases[0]
    dfg = spec.build()
    ops = standard_operation_set(case.mul_latency)
    timing = TimingModel(ops=ops)

    benchmark(
        lambda: MFSScheduler(dfg, timing, cs=case.cs, mode="time").run()
    )


@pytest.mark.parametrize("key", ["ex5", "ex6"])
def test_fds_runtime_benchmark(benchmark, key):
    """FDS wall time on the same inputs (speed-claim denominator)."""
    spec = EXAMPLES[key]
    case = spec.table1_cases[0]
    dfg = spec.build()
    ops = standard_operation_set(case.mul_latency)
    timing = TimingModel(ops=ops)

    benchmark(lambda: force_directed_schedule(dfg, timing, case.cs))


def test_annealing_comparison(benchmark):
    """The paper's anti-annealing argument (§1): MFS reaches comparable
    quality without "probabilistic exploration and tuning problems" —
    i.e. deterministically and much faster."""
    import time

    from repro.schedule.annealing import annealing_schedule

    spec = EXAMPLES["ex3"]
    case = spec.table1_cases[0]
    dfg = spec.build()
    ops = standard_operation_set(case.mul_latency)
    timing = TimingModel(ops=ops)

    annealed = benchmark(
        lambda: annealing_schedule(dfg, timing, cs=case.cs, seed=1)
    )
    mfs = MFSScheduler(dfg, timing, cs=case.cs, mode="time").run()
    # quality: annealing cannot beat MFS by more than one unit here
    assert sum(mfs.fu_counts.values()) <= sum(annealed.fu_usage().values()) + 1

    def clock(fn):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    mfs_time = clock(lambda: MFSScheduler(dfg, timing, cs=case.cs, mode="time").run())
    sa_time = clock(lambda: annealing_schedule(dfg, timing, cs=case.cs, seed=1))
    assert mfs_time * 3 < sa_time


def test_mfs_faster_than_fds_on_large_examples():
    """Direct head-to-head: MFS at least 3x faster than FDS on EWF."""
    import time

    spec = EXAMPLES["ex6"]
    case = spec.table1_cases[0]
    dfg = spec.build()
    ops = standard_operation_set(case.mul_latency)
    timing = TimingModel(ops=ops)

    def clock(fn, repeat=5):
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    mfs_time = clock(
        lambda: MFSScheduler(dfg, timing, cs=case.cs, mode="time").run()
    )
    fds_time = clock(lambda: force_directed_schedule(dfg, timing, case.cs))
    assert mfs_time * 3 < fds_time, (
        f"MFS {mfs_time:.4f}s vs FDS {fds_time:.4f}s"
    )
