"""Shard-scaling harness: jobs/s vs shard count, emits BENCH_core.json.

Boots a :class:`~repro.serve.router.ShardRouter` fleet at 1 / 2 / 4
worker shards and measures, over real sockets through the router,
jobs/sec for a cache-cold uniform workload of distinct MFSA jobs
(distinct DFG fingerprints → consistent hashing spreads them across the
fleet, and no submission can be served from either cache tier).

Every shard runs ``--serial`` — one synthesis at a time in the shard
process — so the shard count is the *only* parallelism axis and the
curve measures exactly what sharding buys.  On a multi-core box the
scaling is near-linear until shards ≥ cores; the recorded ``cpus``
field is what a reader needs to interpret the ratios (on a single-core
container the shards time-share one CPU, so jobs/s stays roughly flat
and only the router-overhead delta is visible — same caveat as the
``warm_sweep`` and ``serve_throughput`` history entries).

Results are appended to the ``history`` list of ``BENCH_core.json``;
``--smoke`` runs a quick 2-shard variant gated on a wall-time budget
for CI and does not touch the JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from bench_record import append_entry

from repro.serve import Client, RouterConfig, ShardRouter

#: Distinct-by-constant designs: the constants land in the DFG
#: structure, so every job has its own fingerprint (cache-cold, and
#: uniformly spread over the ring).
DESIGN = """input a b c d
t1 = a + {k} * b
t2 = t1 * c
t3 = t2 - {k2}
t4 = t3 * d
x = t4 + t1
output x
"""


def _sources(count, salt=0):
    return [DESIGN.format(k=3 + salt + i, k2=5 + salt + i) for i in range(count)]


def measure_fleet(shards, jobs, clients, cs):
    """Jobs/sec through the router at one shard count (cache-cold)."""
    router = ShardRouter(
        RouterConfig(
            port=0,
            shards=shards,
            shard_args=("--serial", "--batch-wait-ms", "2",
                        "--queue-size", str(max(64, jobs))),
        )
    )
    handle = router.start_in_thread()
    try:
        client = Client(handle.url, timeout=300.0)
        # Warm every shard's process (imports, memos) outside the
        # timed region; the warmers use a salt far from the workload.
        for source in _sources(2 * shards, salt=10_000):
            client.synth(source=source, cs=cs, wait=True, timeout=300)

        sources = _sources(jobs)

        def submit(source):
            out = client.synth(source=source, cs=cs, wait=True, timeout=300)
            assert out["result"]["ok"], out
            assert out["job"]["cache"] == "miss", out["job"]
            return out["job"]["shard"]

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            placed = list(pool.map(submit, sources))
        elapsed = time.perf_counter() - start
        assert len(placed) == jobs
        used = sorted(set(placed))
        return jobs / elapsed, elapsed, used
    finally:
        handle.stop()


def measure(jobs, clients, cs=6, shard_counts=(1, 2, 4)):
    throughput = {}
    for shards in shard_counts:
        jps, elapsed, used = measure_fleet(shards, jobs, clients, cs)
        throughput[shards] = jps
        print(
            f"shards={shards}: {jobs} jobs in {elapsed:.2f} s "
            f"({jps:.1f} jobs/s, {len(used)} shard(s) used)"
        )
    base = shard_counts[0]
    entry = {
        "benchmark": "shard_scaling",
        "jobs": jobs,
        "clients": clients,
        "cpus": os.cpu_count(),
        "cs": cs,
    }
    for shards in shard_counts:
        entry[f"shard{shards}_jobs_per_s"] = round(throughput[shards], 2)
        if shards != base:
            entry[f"scaling_{shards}x"] = round(
                throughput[shards] / throughput[base], 2
            )
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI variant: 2-shard fleet, wall-time budget, no JSON write",
    )
    parser.add_argument("--jobs", type=int, default=None,
                        help="distinct jobs per fleet run (default 48, smoke 8)")
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent client threads (default 16)")
    parser.add_argument("--budget", type=float, default=120.0,
                        help="smoke wall-time budget in seconds (default 120)")
    parser.add_argument("--label", default="serve-shards",
                        help="history-entry label recorded in BENCH_core.json")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_core.json"),
        help="output path (default: repo root BENCH_core.json)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs or (8 if args.smoke else 48)

    if args.smoke:
        start = time.perf_counter()
        jps, elapsed, used = measure_fleet(2, jobs, args.clients, cs=6)
        wall = time.perf_counter() - start
        print(
            f"smoke: {jobs} jobs through a 2-shard fleet in {elapsed:.2f} s "
            f"({jps:.1f} jobs/s, {len(used)} shard(s) used, "
            f"{wall:.1f} s wall incl. boot)"
        )
        if wall > args.budget:
            print(
                f"FAIL: 2-shard smoke took {wall:.1f} s "
                f"(budget {args.budget:g} s)",
                file=sys.stderr,
            )
            return 1
        print(f"smoke OK ({wall:.1f} s <= {args.budget:g} s budget)")
        return 0

    entry = measure(jobs, args.clients)
    entry["label"] = args.label
    out = append_entry(entry, "shard_scaling", Path(args.out))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
