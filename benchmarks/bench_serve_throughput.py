"""Serve-throughput harness: measures the synthesis service, emits BENCH_core.json.

Boots one embedded :class:`~repro.serve.app.ServeApp` per configuration
and measures, over real sockets:

* **batching throughput** — jobs/sec for a fleet of distinct MFSA jobs
  submitted by concurrent clients, at ``max_batch`` 1 / 4 / 16.  At
  batch 1 every job runs serially in-process; larger batches fan out
  through the warm process pool, so the ratio is the measured gain of
  micro-batched dispatch.  A fourth run enables the cost-aware
  :class:`~repro.serve.batcher.AdaptiveBatchPolicy` at the same
  ``max_batch=16`` cap, showing what the EWMA-sized batches recover
  when fixed-size batching does not pay;
* **cache-hit latency** — round-trip time of a repeated submission
  (served from the content-addressed cache) against the cold run of the
  same job, giving the cache-hit speedup.

Results are appended to the ``history`` list of ``BENCH_core.json``;
``--smoke`` runs a quick variant with generous ceilings for CI and does
not touch the JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from bench_record import append_entry

from repro.serve import Client, ServeApp

#: Distinct-by-constant behavioral designs: constant ``k`` lands in the
#: DFG structure, so every job has its own fingerprint (no cache hits).
DESIGN = """input a b c d
t1 = a + {k} * b
t2 = t1 * c
t3 = t2 - {k2}
t4 = t3 * d
x = t4 + t1
output x
"""


def _sources(count):
    return [DESIGN.format(k=3 + i, k2=5 + i) for i in range(count)]


def measure_throughput(
    jobs, clients, max_batch, cs, adaptive=False, target_batch_seconds=0.25
):
    """Jobs/sec for ``jobs`` distinct MFSA submissions at one batch size."""
    app = ServeApp(
        port=0,
        max_batch=max_batch,
        batch_wait_ms=5.0,
        queue_size=max(64, jobs),
        adaptive_batching=adaptive,
        target_batch_seconds=target_batch_seconds,
    )
    handle = app.start_in_thread()
    try:
        client = Client(handle.url)
        sources = _sources(jobs)
        # One warm-up job boots the worker pool outside the timed region.
        client.synth(source="input a b\nx = a * b\noutput x", cs=2)

        def submit(source):
            out = client.synth(source=source, cs=cs, wait=True, timeout=300)
            assert out["result"]["ok"], out
            return out

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            results = list(pool.map(submit, sources))
        elapsed = time.perf_counter() - start
        assert len(results) == jobs
        assert app.metrics.counter_value("jobs_executed") == jobs + 1
        batches = app.metrics.counter_value("batches")
        return jobs / elapsed, elapsed, int(batches) - 1
    finally:
        handle.stop()


def measure_cache_hit(repeat, cs):
    """Cold latency vs best-of cache-hit latency for one job."""
    app = ServeApp(port=0)
    handle = app.start_in_thread()
    try:
        client = Client(handle.url)
        source = _sources(1)[0]
        start = time.perf_counter()
        cold = client.synth(source=source, cs=cs, wait=True)
        cold_s = time.perf_counter() - start
        assert cold["job"]["cache"] == "miss"

        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            warm = client.synth(source=source, cs=cs, wait=True)
            best = min(best, time.perf_counter() - start)
            assert warm["job"]["cache"] == "hit"
        raw_cold = client.result_text(cold["job"]["id"])
        raw_warm = client.result_text(warm["job"]["id"])
        assert raw_cold == raw_warm
        return cold_s, best
    finally:
        handle.stop()


#: Adaptive-policy batch budget for the benchmark fleet.  These MFSA
#: jobs cost a few milliseconds each, so a 50 ms budget lets the policy
#: coalesce them up to the cap (matching the best fixed configuration)
#: while still collapsing to immediate dispatch for any job stream
#: whose measured cost reaches tens of milliseconds.
ADAPTIVE_TARGET_S = 0.05


def measure(jobs, clients, repeat, cs=6):
    throughput = {}
    for max_batch in (1, 4, 16):
        jps, elapsed, batches = measure_throughput(jobs, clients, max_batch, cs)
        throughput[max_batch] = jps
        print(
            f"max_batch={max_batch:>2}: {jobs} jobs in {elapsed:.2f} s "
            f"({jps:.1f} jobs/s, {batches} batches)"
        )
    # Cost-aware batching against the fixed max_batch=16 configuration:
    # same cap, but the policy is free to shrink batches when the
    # measured per-job cost says the window will not pay.
    adaptive_jps, elapsed, batches = measure_throughput(
        jobs, clients, 16, cs,
        adaptive=True, target_batch_seconds=ADAPTIVE_TARGET_S,
    )
    print(
        f"adaptive(16): {jobs} jobs in {elapsed:.2f} s "
        f"({adaptive_jps:.1f} jobs/s, {batches} batches)"
    )
    cold_s, hit_s = measure_cache_hit(repeat, cs)
    print(
        f"cache: cold {cold_s * 1e3:.2f} ms, hit {hit_s * 1e3:.3f} ms "
        f"-> {cold_s / hit_s:.0f}x"
    )
    import os

    return {
        "jobs": jobs,
        "clients": clients,
        "cpus": os.cpu_count(),
        "cs": cs,
        "batch1_jobs_per_s": round(throughput[1], 2),
        "batch4_jobs_per_s": round(throughput[4], 2),
        "batch16_jobs_per_s": round(throughput[16], 2),
        "batching_gain": round(throughput[16] / throughput[1], 2),
        "adaptive_jobs_per_s": round(adaptive_jps, 2),
        "adaptive_target_s": ADAPTIVE_TARGET_S,
        "adaptive_gain": round(adaptive_jps / throughput[16], 2),
        "cold_ms": round(cold_s * 1e3, 3),
        "cache_hit_ms": round(hit_s * 1e3, 3),
        "cache_speedup": round(cold_s / hit_s, 1),
        "benchmark": "serve_throughput",
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI variant: fewer jobs, sanity ceilings, no JSON write",
    )
    parser.add_argument("--jobs", type=int, default=None,
                        help="distinct jobs per throughput run (default 48, smoke 8)")
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent client threads (default 16)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="cache-hit best-of repeats (default 20, smoke 5)")
    parser.add_argument("--label", default="serve-layer",
                        help="history-entry label recorded in BENCH_core.json")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_core.json"),
        help="output path (default: repo root BENCH_core.json)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs or (8 if args.smoke else 48)
    repeat = args.repeat or (5 if args.smoke else 20)

    entry = measure(jobs, args.clients, repeat)
    entry["label"] = args.label

    if args.smoke:
        # Generous ceilings — only complexity blowups should trip them.
        if entry["cache_hit_ms"] > 200.0:
            print(
                f"FAIL: cache hit took {entry['cache_hit_ms']:.1f} ms "
                "(ceiling 200 ms)",
                file=sys.stderr,
            )
            return 1
        if entry["cache_speedup"] < 1.0:
            print("FAIL: cache hit slower than cold run", file=sys.stderr)
            return 1
        print(
            f"smoke OK: hit {entry['cache_hit_ms']:.2f} ms, "
            f"{entry['cache_speedup']:.0f}x vs cold"
        )
        return 0

    out = append_entry(entry, "serve_throughput", Path(args.out))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
