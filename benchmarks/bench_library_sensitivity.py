"""Cell-library sensitivity ablation.

DESIGN.md substitutes a synthetic library for the NCR data book and
claims Table-2 *shapes* only depend on cost ratios.  This bench stresses
that claim: vary the merge discount (how cheaply functions combine into
one ALU) and the register/mux price level, and check the shapes that
must be invariant:

* MFSA always completes and the datapath stays simulation-equivalent;
* a *cheaper* merge discount never increases the number of ALU
  instances chosen (merging only gets more attractive);
* pricier registers steer the weighted optimiser toward designs with no
  more registers than the cheap-register run.
"""

import pytest

from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel
from repro.dfg.ops import OpKind, standard_operation_set
from repro.library.cells import CellLibrary, MuxCostTable
from repro.library.ncr import _DATAPATH_FAMILY, BASE_AREAS, MERGE_GLUE
from repro.sim.executor import verify_equivalence
from repro.bench.suites import EXAMPLES


def library_with(merge_fraction: float, register_area: float) -> CellLibrary:
    """The datapath family re-costed with different ratios."""
    from repro.library.cells import ALUCell

    cells = []
    seen = set()
    for combo in _DATAPATH_FAMILY:
        kinds = frozenset(str(k) for k in combo)
        if kinds in seen:
            continue
        seen.add(kinds)
        areas = sorted((BASE_AREAS[str(k)] for k in combo), reverse=True)
        area = areas[0] + sum(
            merge_fraction * a + MERGE_GLUE for a in areas[1:]
        )
        cells.append(
            ALUCell(name="alu_" + "_".join(sorted(kinds)), kinds=kinds,
                    area=round(area, 1))
        )
    return CellLibrary(
        name=f"sensitivity-m{merge_fraction}",
        alus=cells,
        register_area=register_area,
        mux_costs=MuxCostTable({2: 700.0, 3: 1080.0, 4: 1480.0}),
    )


def run(key, library):
    spec = EXAMPLES[key]
    ops = standard_operation_set(spec.mfsa_mul_latency)
    timing = TimingModel(ops=ops, clock_period_ns=spec.mfsa_clock_ns)
    return MFSAScheduler(
        spec.build(), timing, library, cs=spec.mfsa_cs
    ).run()


@pytest.mark.parametrize("key", ["ex1", "ex3", "ex4"])
@pytest.mark.parametrize("merge_fraction", [0.15, 0.35, 0.6])
def test_any_ratio_completes_and_verifies(benchmark, key, merge_fraction):
    library = library_with(merge_fraction, register_area=1550.0)
    result = benchmark(run, key, library)
    dfg = result.schedule.dfg
    inputs = {name: (i % 9) - 4 for i, name in enumerate(dfg.inputs)}
    verify_equivalence(result.datapath, inputs)


@pytest.mark.parametrize("key", ["ex1", "ex3"])
def test_cheaper_merging_never_needs_more_alus(key):
    cheap_merge = run(key, library_with(0.1, 1550.0))
    dear_merge = run(key, library_with(0.7, 1550.0))
    assert len(cheap_merge.alu_labels()) <= len(dear_merge.alu_labels())


@pytest.mark.parametrize("key", ["ex3", "ex4"])
def test_register_price_steers_reg_weight(key):
    from repro.core.liapunov import LiapunovWeights

    spec = EXAMPLES[key]
    ops = standard_operation_set(spec.mfsa_mul_latency)
    timing = TimingModel(ops=ops, clock_period_ns=spec.mfsa_clock_ns)
    library = library_with(0.35, 1550.0)
    cheap = MFSAScheduler(
        spec.build(), timing, library, cs=spec.mfsa_cs
    ).run()
    pricey = MFSAScheduler(
        spec.build(), timing, library, cs=spec.mfsa_cs,
        weights=LiapunovWeights(reg=8.0),
    ).run()
    assert (
        pricey.datapath.register_count() <= cheap.datapath.register_count()
    )
