"""Resource-constrained MFS (§3.1's second Liapunov function).

Table 1 is a time-constrained sweep; this bench closes the loop on the
dual formulation: feed each example's Table-1 FU mix back as resource
bounds and run MFS in resource mode.  The duality shape: the
resource-constrained schedule honours the bounds and finishes within the
time budget the mix came from (or earlier).
"""

import pytest

from repro.bench.suites import EXAMPLES
from repro.core.mfs import MFSScheduler
from repro.dfg.analysis import TimingModel
from repro.dfg.ops import standard_operation_set


def plain_cases():
    for key in sorted(EXAMPLES):
        spec = EXAMPLES[key]
        for case in spec.table1_cases:
            if case.latency_l or case.pipelined_kinds or case.clock_ns:
                continue
            yield pytest.param(key, case, id=f"{key}-T{case.cs}")


@pytest.mark.parametrize("key,case", list(plain_cases()))
def test_duality_roundtrip(benchmark, key, case):
    spec = EXAMPLES[key]
    dfg = spec.build()
    ops = standard_operation_set(case.mul_latency)
    timing = TimingModel(ops=ops)

    time_constrained = MFSScheduler(
        dfg, timing, cs=case.cs, mode="time"
    ).run()
    bounds = dict(time_constrained.fu_counts)

    result = benchmark(
        lambda: MFSScheduler(
            dfg, timing, mode="resource", resource_bounds=bounds
        ).run()
    )
    result.schedule.validate(resource_bounds=bounds)
    # The §3.1 resource function reuses FUs aggressively, so it may take
    # longer than the time-constrained run — but the bounds themselves
    # must be demonstrably sufficient: a *time-constrained* run under the
    # same hard bounds meets the original budget exactly.
    bounded_time = MFSScheduler(
        dfg, timing, cs=case.cs, mode="time", resource_bounds=bounds
    ).run()
    assert bounded_time.schedule.makespan() <= case.cs


def test_resource_mode_serializes_onto_existing_units():
    """`V = cs·x + y` prefers an existing FU at t+1 over a new FU at t."""
    from repro.bench.suites import hal_diffeq

    timing = TimingModel(ops=standard_operation_set())
    result = MFSScheduler(
        hal_diffeq(),
        timing,
        mode="resource",
        resource_bounds={"mul": 3, "add": 2, "sub": 2, "lt": 1},
    ).run()
    # despite three allowed multipliers, one suffices and is preferred
    assert result.fu_counts["mul"] == 1
