"""The placement grid — the paper's 2-D/3-D design space (§2.3, Fig. 1).

For every FU type (MFS) or ALU kind (MFSA) there is a 2-D table whose
horizontal coordinate ``x`` is the FU-instance index and whose vertical
coordinate ``y`` is the control step.  Scheduling/allocating an operation
means placing it at a position ``(table, x, y)``.

Occupancy rules implemented here:

* a latency-``k`` operation occupies ``(x, y) … (x, y+k-1)`` (§5.3);
* on a *structurally pipelined* table it occupies only ``(x, y)`` — the
  unit accepts a new operation every step (§5.5.1);
* with functional pipelining of latency ``L``, steps congruent modulo ``L``
  share hardware, so occupancy is recorded on folded steps (§5.5.2);
* *mutually exclusive* operations (§5.1) may share a position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ScheduleError
from repro.dfg.graph import DFG


@dataclass(frozen=True, order=True)
class GridPosition:
    """One cell of the design space: ``(table, x, y)``.

    ``table`` names the FU type (MFS) or ALU kind (MFSA); ``x`` is the
    1-based instance index, ``y`` the 1-based control step.
    """

    table: str
    x: int
    y: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.table}[{self.x}]@cs{self.y}"


class PlacementGrid:
    """Mutable occupancy state of the full 3-D design space.

    Parameters
    ----------
    dfg:
        The graph being scheduled (needed for mutual-exclusion queries).
    cs:
        Number of control-step rows in every table.
    columns:
        table name → number of FU-instance columns (``max_j``).
    latency_l:
        Functional-pipelining initiation interval; occupancy folds modulo
        ``L`` when set.
    pipelined_tables:
        Tables backed by structurally pipelined FUs (start-step-only
        occupancy).
    """

    def __init__(
        self,
        dfg: DFG,
        cs: int,
        columns: Dict[str, int],
        latency_l: Optional[int] = None,
        pipelined_tables: Iterable[str] = (),
    ) -> None:
        if cs < 1:
            raise ScheduleError(f"grid needs at least one control step, got {cs}")
        self._dfg = dfg
        self.cs = cs
        self._columns = dict(columns)
        self.latency_l = latency_l
        self._pipelined = set(pipelined_tables)
        # (table, x, folded_y) -> occupant node names
        self._occupants: Dict[Tuple[str, int, int], List[str]] = {}
        # node -> (position, occupied folded steps)
        self._placements: Dict[str, Tuple[GridPosition, Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def columns(self, table: str) -> int:
        """Number of instance columns available in ``table``."""
        return self._columns.get(table, 0)

    def widen(self, table: str, columns: int) -> None:
        """Grow ``table`` to at least ``columns`` columns (bound relaxation)."""
        self._columns[table] = max(self._columns.get(table, 0), columns)

    def tables(self) -> Tuple[str, ...]:
        """All table names."""
        return tuple(self._columns)

    def fold(self, step: int) -> int:
        """Fold a control step for occupancy under functional pipelining."""
        if self.latency_l:
            return ((step - 1) % self.latency_l) + 1
        return step

    def occupied_steps(self, table: str, start: int, latency: int) -> Tuple[int, ...]:
        """Folded steps an operation at ``start`` occupies in ``table``.

        Deduplicated: with functional pipelining a span longer than ``L``
        wraps onto itself, and recording the same folded step twice would
        leave a ghost occupant behind after :meth:`remove` (which removes
        one list entry per step).  Such spans are rejected by
        :meth:`is_free` anyway; dedup keeps occupancy bookkeeping an
        exact inverse of removal regardless.
        """
        span = 1 if table in self._pipelined else latency
        steps: List[int] = []
        seen = set()
        for i in range(span):
            folded = self.fold(start + i)
            if folded not in seen:
                seen.add(folded)
                steps.append(folded)
        return tuple(steps)

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------
    def occupants(self, table: str, x: int, step: int) -> Tuple[str, ...]:
        """Nodes occupying ``(table, x, step)`` (after folding)."""
        return tuple(self._occupants.get((table, x, self.fold(step)), ()))

    def is_free(self, node: str, table: str, x: int, y: int, latency: int) -> bool:
        """Whether ``node`` may be placed at ``(table, x, y)``.

        A cell is available if it is empty or every occupant is mutually
        exclusive with ``node`` (§5.1).
        """
        if not 1 <= x <= self.columns(table):
            return False
        if y < 1 or y + latency - 1 > self.cs:
            return False
        span = 1 if table in self._pipelined else latency
        occupants = self._occupants
        fold = self.latency_l
        if fold and span > fold:
            # The folded span wraps onto itself: the operation would need
            # the unit at one folded step for two different phases — a
            # collision with its own next initiation (§5.5.2).
            return False
        for i in range(span):
            step = ((y + i - 1) % fold) + 1 if fold else y + i
            for other in occupants.get((table, x, step), ()):
                if not self._dfg.mutually_exclusive(node, other):
                    return False
        return True

    def place(self, node: str, position: GridPosition, latency: int) -> None:
        """Record ``node`` at ``position``; raises if the cell is taken."""
        if node in self._placements:
            raise ScheduleError(f"node {node!r} is already placed")
        if not self.is_free(node, position.table, position.x, position.y, latency):
            raise ScheduleError(f"position {position} is not free for {node!r}")
        steps = self.occupied_steps(position.table, position.y, latency)
        for folded in steps:
            self._occupants.setdefault(
                (position.table, position.x, folded), []
            ).append(node)
        self._placements[node] = (position, steps)

    def remove(self, node: str) -> None:
        """Undo the placement of ``node``."""
        position, steps = self._placements.pop(node)
        for folded in steps:
            self._occupants[(position.table, position.x, folded)].remove(node)

    def position_of(self, node: str) -> Optional[GridPosition]:
        """Where ``node`` is placed, or ``None``."""
        entry = self._placements.get(node)
        return entry[0] if entry else None

    def placements(self) -> Dict[str, GridPosition]:
        """All placements: node → position."""
        return {node: entry[0] for node, entry in self._placements.items()}

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def used_columns(self, table: str) -> int:
        """Highest occupied column index of ``table`` (0 when empty)."""
        best = 0
        for (tab, x, _y), occupants in self._occupants.items():
            if tab == table and occupants:
                best = max(best, x)
        return best

    def used_instances(self, table: str) -> Set[int]:
        """Set of occupied column indices of ``table``."""
        return {
            x
            for (tab, x, _y), occupants in self._occupants.items()
            if tab == table and occupants
        }

    def occupancy_cells(self, table: str) -> List[Tuple[int, int]]:
        """Occupied ``(x, folded_y)`` cells of ``table``.

        Sparse companion of :meth:`occupancy_matrix`; the vector kernel
        (:mod:`repro.core.kernel`) seeds its boolean occupancy mirror
        from it.
        """
        return [
            (x, y)
            for (tab, x, y), occupants in self._occupants.items()
            if tab == table and occupants
        ]

    def occupancy_matrix(self, table: str) -> List[List[Tuple[str, ...]]]:
        """Dense ``cs × columns`` matrix of occupant tuples (for rendering)."""
        rows = []
        for y in range(1, self.cs + 1):
            rows.append(
                [
                    self.occupants(table, x, y)
                    for x in range(1, self.columns(table) + 1)
                ]
            )
        return rows
