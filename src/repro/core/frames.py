"""Primary / Redundant / Forbidden / Move frames (§3.2 Step 4, Fig. 2).

For an operation ``O_i`` executable in table ``j``:

* **Primary frame** ``PF`` — the rectangle ``[ASAP_i, ALAP_i] × [1, max_j]``
  (its place in the ASNAP and ALFAP tables);
* **Redundant frame** ``RF`` — columns ``current_j + 1 … max_j``: instances
  that have not been opened yet (``current_j`` starts at ``⌈N_j / cs⌉``);
* **Forbidden frame** ``FF`` — steps that violate data dependences with
  *already placed* operations.  The paper uses predecessors only (safe
  because its priority order is topological); we also honour placed
  successors, a strict generalisation.  With chaining enabled (§5.4) the
  predecessor's finishing step itself is allowed when the accumulated
  combinational delay fits the clock period;
* **Move frame** ``MF = PF − (RF ∪ FF)`` minus occupied cells — the
  positions the operation may move to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.dfg.analysis import TimingModel
from repro.dfg.graph import DFG
from repro.core.grid import GridPosition, PlacementGrid


@dataclass
class FrameSet:
    """The four frames of one operation at one scheduling iteration.

    ``rows`` are control steps, ``cols`` FU-instance indices; all ranges
    are inclusive.  ``mf`` is the explicit list of placeable positions.
    """

    node: str
    table: str
    pf_rows: Tuple[int, int]
    pf_cols: Tuple[int, int]
    rf_cols: Optional[Tuple[int, int]]
    ff_rows_before: int
    ff_rows_after: int
    chain_rows: Tuple[int, ...]
    mf: List[GridPosition] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """Whether the move frame has no placeable position."""
        return not self.mf

    def pf_positions(self) -> List[GridPosition]:
        """All primary-frame positions (used by the Figure-2 renderer)."""
        lo_y, hi_y = self.pf_rows
        lo_x, hi_x = self.pf_cols
        return [
            GridPosition(self.table, x, y)
            for y in range(lo_y, hi_y + 1)
            for x in range(lo_x, hi_x + 1)
        ]

    def in_rf(self, position: GridPosition) -> bool:
        """Whether a position lies in the redundant frame."""
        if self.rf_cols is None:
            return False
        return self.rf_cols[0] <= position.x <= self.rf_cols[1]

    def in_ff(self, position: GridPosition) -> bool:
        """Whether a position lies in the forbidden frame."""
        if position.y <= self.ff_rows_before:
            return position.y not in self.chain_rows
        return position.y >= self.ff_rows_after


def _chain_feasible_rows(
    dfg: DFG,
    timing: TimingModel,
    node: str,
    placed_starts: Mapping[str, int],
    chain_offsets: Mapping[str, float],
) -> Tuple[int, ...]:
    """Predecessor finishing steps the node may still chain into (§5.4)."""
    if not timing.chaining:
        return ()
    kind = dfg.node(node).kind
    if timing.latency(kind) != 1:
        return ()
    period = timing.clock_period_ns
    delay = timing.delay_ns(kind)
    rows: List[int] = []
    pred_ends: Dict[int, float] = {}
    for pred in dfg.predecessors(node):
        if pred not in placed_starts:
            continue
        pred_kind = dfg.node(pred).kind
        if timing.latency(pred_kind) != 1:
            continue
        end = placed_starts[pred]
        offset = chain_offsets.get(pred, timing.delay_ns(pred_kind))
        pred_ends[end] = max(pred_ends.get(end, 0.0), offset)
    latest_pred_end = max(
        (
            placed_starts[p] + timing.latency(dfg.node(p).kind) - 1
            for p in dfg.predecessors(node)
            if p in placed_starts
        ),
        default=0,
    )
    for end, offset in pred_ends.items():
        if end != latest_pred_end:
            # An earlier step would still violate the later predecessor.
            continue
        others_fit = all(
            placed_starts[p] + timing.latency(dfg.node(p).kind) - 1 < end
            or (
                timing.latency(dfg.node(p).kind) == 1
                and placed_starts[p] == end
            )
            for p in dfg.predecessors(node)
            if p in placed_starts
        )
        if others_fit and offset + delay <= period + 1e-9:
            rows.append(end)
    return tuple(rows)


def frame_bounds(
    dfg: DFG,
    timing: TimingModel,
    node: str,
    cs: int,
    placed_starts: Mapping[str, int],
    chain_offsets: Optional[Mapping[str, float]] = None,
) -> Tuple[int, int, int, Tuple[int, ...]]:
    """Table-independent frame bounds of one operation.

    Returns ``(latency, latest_pred_end, ff_rows_after, chain_rows)`` —
    the forbidden-frame geometry every table of the operation shares.
    :func:`compute_frames` intersects these with one table's occupancy;
    the vector kernel (:mod:`repro.core.kernel`) computes them once per
    operation and rebuilds only the per-table mask.
    """
    chain_offsets = chain_offsets or {}
    kind = dfg.node(node).kind
    latency = timing.latency(kind)

    # Forbidden rows below: every step <= the latest placed-predecessor
    # finishing step is forbidden (chaining re-admits specific rows).
    latest_pred_end = 0
    for pred in dfg.predecessors(node):
        if pred in placed_starts:
            pred_latency = timing.latency(dfg.node(pred).kind)
            latest_pred_end = max(
                latest_pred_end, placed_starts[pred] + pred_latency - 1
            )
    # Forbidden rows above: the node must finish before any placed successor
    # starts (the paper's order makes this vacuous; kept for generality).
    earliest_succ_start = cs + 1
    for succ in dfg.successors(node):
        if succ in placed_starts:
            earliest_succ_start = min(earliest_succ_start, placed_starts[succ])
    ff_rows_after = earliest_succ_start - latency + 1

    chain_rows = _chain_feasible_rows(
        dfg, timing, node, placed_starts, chain_offsets
    )
    return latency, latest_pred_end, ff_rows_after, chain_rows


def compute_frames(
    dfg: DFG,
    timing: TimingModel,
    grid: PlacementGrid,
    node: str,
    table: str,
    asap: Mapping[str, int],
    alap: Mapping[str, int],
    current: int,
    placed_starts: Mapping[str, int],
    chain_offsets: Optional[Mapping[str, float]] = None,
    excluded_instances: Tuple[int, ...] = (),
) -> FrameSet:
    """Build PF/RF/FF and the resulting move frame for one operation.

    Parameters
    ----------
    current:
        ``current_j`` — number of opened instances of ``table``; columns
        beyond it form the redundant frame.
    placed_starts:
        Start steps of already placed operations.
    chain_offsets:
        Within-step accumulated combinational delay of placed single-cycle
        operations (chaining only).
    excluded_instances:
        Instance columns the operation may not use (MFSA design style 2:
        no self-loop around an ALU — §4.2).
    """
    latency, latest_pred_end, ff_rows_after, chain_rows = frame_bounds(
        dfg, timing, node, grid.cs, placed_starts, chain_offsets
    )
    max_cols = grid.columns(table)

    pf_rows = (asap[node], alap[node])
    pf_cols = (1, max_cols)
    rf_cols = (current + 1, max_cols) if current < max_cols else None

    frame = FrameSet(
        node=node,
        table=table,
        pf_rows=pf_rows,
        pf_cols=pf_cols,
        rf_cols=rf_cols,
        ff_rows_before=latest_pred_end,
        ff_rows_after=ff_rows_after,
        chain_rows=chain_rows,
    )

    banned = set(excluded_instances)
    is_free = grid.is_free
    mf_append = frame.mf.append
    top_col = min(current, max_cols)
    for y in range(pf_rows[0], pf_rows[1] + 1):
        # Inline FrameSet.in_ff: forbidden below (unless chaining re-admits
        # the row) or at/above the placed-successor bound.
        if (y <= latest_pred_end and y not in chain_rows) or y >= ff_rows_after:
            continue
        for x in range(1, top_col + 1):
            if x in banned:
                continue
            if is_free(node, table, x, y, latency):
                mf_append(GridPosition(table, x, y))
    return frame
