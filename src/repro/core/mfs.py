"""Move Frame Scheduling — MFS (§3).

The algorithm, exactly as the paper lays it out:

1. ASAP and ALAP schedules within the given number of control steps fix
   each operation's time frame;
2. ``max_j`` per FU type comes from the user's resource constraints or,
   failing that, from the ASAP/ALAP concurrency; mobilities determine the
   priority order;
3. the ASNAP/ALFAP tables bound a 2-D frame per operation;
4. each operation, in priority order, is placed at the minimum-Liapunov
   position of its move frame ``MF = PF − (RF ∪ FF)``; if the frame is
   empty the opened-FU count ``current_j`` grows by one and the frames are
   rebuilt ("local rescheduling").

Supported synthesis aspects (§5): mutual exclusion, multi-cycle operations,
chaining, structural pipelining (pipelined FUs) and functional pipelining
(latency-``L`` folding).  Loop folding and the two-instance functional
pipelining procedure are DFG transforms (:mod:`repro.dfg.transforms`,
:mod:`repro.dfg.pipeline`) that feed this scheduler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.trace.recorder import TraceRecorder

from repro.errors import InfeasibleScheduleError, ScheduleError
from repro.dfg.analysis import (
    TimingModel,
    alap_schedule,
    asap_schedule,
    critical_path_length,
    type_concurrency,
)
from repro.dfg.graph import DFG
from repro.schedule.types import Schedule
from repro.core import kernel as _kernel
from repro.core.frames import FrameSet, compute_frames, frame_bounds
from repro.core.grid import GridPosition, PlacementGrid
from repro.core.liapunov import (
    ResourceConstrainedLiapunov,
    StaticLiapunov,
    TimeConstrainedLiapunov,
)
from repro.core.priorities import priority_order
from repro.core.stability import Trajectory
from repro.perf import PerfCounters


@dataclass
class MFSResult:
    """Everything a run produces.

    ``placements`` carries the FU binding implied by the grid (instance
    index ``x``), which downstream allocation reuses; ``fu_counts`` is the
    Table-1 metric (units actually needed per kind).
    """

    schedule: Schedule
    placements: Dict[str, GridPosition]
    trajectory: Trajectory
    grid: PlacementGrid
    fu_counts: Dict[str, int]
    frames_log: Dict[str, FrameSet] = field(default_factory=dict)

    @property
    def starts(self) -> Dict[str, int]:
        """Node → start step (shorthand)."""
        return self.schedule.starts


class MFSScheduler:
    """Configurable MFS runner.

    Parameters
    ----------
    dfg, timing:
        The graph and its latency/delay model.
    cs:
        Time constraint (required in ``"time"`` mode; in ``"resource"``
        mode it is the optional step *upper bound* for the tables).
    mode:
        ``"time"`` (fixed ``cs``, minimise/balance FUs — Liapunov
        ``x + n·y``) or ``"resource"`` (fixed FU bounds — Liapunov
        ``cs·x + y``).
    resource_bounds:
        kind → ``max_j``.  Optional in time mode (ASAP/ALAP concurrency is
        the default upper bound, per the paper); required in resource mode.
    latency_l:
        Functional-pipelining initiation interval (§5.5.2).
    pipelined_kinds:
        Kinds executed on structurally pipelined FUs (§5.5.1).
    relax_bounds:
        In time mode without user bounds, allow the automatic ``max_j`` to
        grow if local rescheduling exhausts it (the paper's "presummed big
        number" fallback).  User-supplied bounds are never relaxed.
    record_frames:
        Keep the last :class:`FrameSet` per node (Figure-2 regeneration).
        Off by default — the log grows with every rescheduling pass and
        only the figure harness reads it.
    record_alternatives:
        Keep the full (position, energy) list of every move frame in the
        trajectory (Figure-1 regeneration and the strongest stability
        check).  On by default; sweeps that only need schedules may turn
        it off to skip the per-move list construction.
    liapunov:
        Optional energy-function override.  The default is the mode's
        paper function (``x + n·y`` / ``cs·x + y``); a supplied instance
        is validated against the §3.1 dominance bounds before any
        placement, so an undersized ``n`` or ``cs`` raises instead of
        silently breaking step ordering.
    kernel:
        Inner-loop implementation: ``"scalar"`` (the reference walk),
        ``"vector"`` (numpy bitmask frames; needs the ``[accel]``
        extra), or ``"auto"`` (vector when numpy is present and the
        DFG is large enough to pay for it).  Both kernels produce
        byte-identical results — see :mod:`repro.core.kernel` for the
        dispatch rules and the features that pin a run to the scalar
        walk (tracing, frame recording, pipelining, custom Liapunov
        subclasses).
    verify:
        Audit the finished run with :mod:`repro.check` (schedule
        legality, grid-occupancy consistency, Liapunov descent) and raise
        :class:`~repro.errors.VerificationError` on any violation.
    perf:
        Optional :class:`~repro.perf.PerfCounters` receiving frame/
        position counters and the ``mfs.run`` timer.
    trace:
        Optional :class:`~repro.trace.recorder.TraceRecorder` receiving
        typed decision events — frame constructions, per-candidate
        Liapunov evaluations, commits, local-rescheduling steps, and the
        run summary (plus the ``perf`` counter snapshot when both are
        given).  ``None`` (the default) records nothing and costs
        nothing.
    """

    def __init__(
        self,
        dfg: DFG,
        timing: TimingModel,
        cs: Optional[int] = None,
        mode: str = "time",
        resource_bounds: Optional[Mapping[str, int]] = None,
        latency_l: Optional[int] = None,
        pipelined_kinds: Iterable[str] = (),
        relax_bounds: bool = True,
        record_frames: bool = False,
        record_alternatives: bool = True,
        liapunov: Optional[StaticLiapunov] = None,
        kernel: str = "auto",
        verify: bool = False,
        perf: Optional[PerfCounters] = None,
        trace: Optional["TraceRecorder"] = None,
    ) -> None:
        if mode not in ("time", "resource"):
            raise ValueError(f"mode must be 'time' or 'resource', got {mode!r}")
        if kernel not in _kernel.KERNELS:
            raise ValueError(
                f"kernel must be one of {_kernel.KERNELS}, got {kernel!r}"
            )
        self.kernel = kernel
        self.dfg = dfg
        self.timing = timing
        self.mode = mode
        self.latency_l = latency_l
        self.pipelined_kinds = frozenset(str(k) for k in pipelined_kinds)
        self.relax_bounds = relax_bounds
        self.record_frames = record_frames
        self.record_alternatives = record_alternatives
        self.user_liapunov = liapunov
        self.verify = verify
        self.perf = perf
        self.trace = trace
        self.user_bounds = dict(resource_bounds) if resource_bounds else None

        dfg.validate(timing.ops)
        self._check_pipelining()

        if mode == "time":
            if cs is None:
                raise ScheduleError("time-constrained MFS needs cs")
            self.cs = cs
        else:
            if not self.user_bounds:
                raise ScheduleError("resource-constrained MFS needs resource_bounds")
            self.cs = cs if cs is not None else self._serial_upper_bound()

    # ------------------------------------------------------------------
    def _check_pipelining(self) -> None:
        if self.latency_l is None:
            return
        if self.latency_l < 1:
            raise ScheduleError(f"latency L must be >= 1, got {self.latency_l}")
        for kind in self.dfg.kinds_used():
            latency = self.timing.latency(kind)
            if latency > self.latency_l and kind not in self.pipelined_kinds:
                raise ScheduleError(
                    f"kind {kind!r} (latency {latency}) cannot run under "
                    f"functional pipelining with L={self.latency_l} on a "
                    f"non-pipelined FU"
                )

    def _serial_upper_bound(self) -> int:
        """A step budget that always suffices: run everything serially."""
        total = sum(
            self.timing.latency(node.kind) for node in self.dfg
        )
        return max(total, critical_path_length(self.dfg, self.timing), 1)

    def _auto_bounds(
        self, asap: Mapping[str, int], alap: Mapping[str, int]
    ) -> Dict[str, int]:
        """§3.2 Step 2: max FU counts seen in the ASAP and ALAP schedules."""
        asap_usage = type_concurrency(
            self.dfg, asap, self.timing, self.latency_l, self.pipelined_kinds
        )
        alap_usage = type_concurrency(
            self.dfg, alap, self.timing, self.latency_l, self.pipelined_kinds
        )
        bounds: Dict[str, int] = {}
        for kind in self.dfg.kinds_used():
            bounds[kind] = max(asap_usage.get(kind, 1), alap_usage.get(kind, 1))
        return bounds

    def _initial_current(self, kind: str, max_j: int) -> int:
        """§3.2 Step 4: ``current_j = ⌈N_j / cs⌉`` (at least 1, at most max)."""
        count = self.dfg.count_by_kind().get(kind, 0)
        return min(max(1, math.ceil(count / self.cs)), max_j)

    # ------------------------------------------------------------------
    def run(self) -> MFSResult:
        """Execute MFS and return the full result."""
        if self.perf is None:
            return self._run()
        with self.perf.timer("mfs.run"):
            return self._run()

    def _run(self) -> MFSResult:
        dfg, timing = self.dfg, self.timing
        trace = self.trace
        if trace is not None:
            trace.run_start("mfs", dfg.name, self.cs, mode=self.mode)
        if len(dfg) == 0:
            if trace is not None:
                trace.run_end(commits=0, fu_counts={})
            empty = Schedule(dfg=dfg, timing=timing, cs=max(self.cs or 1, 1), starts={})
            return MFSResult(
                schedule=empty,
                placements={},
                trajectory=Trajectory(),
                grid=PlacementGrid(dfg, max(self.cs or 1, 1), {}),
                fu_counts={},
            )

        asap = asap_schedule(dfg, timing)
        alap = alap_schedule(dfg, timing, self.cs)  # raises if infeasible

        if self.user_bounds is not None:
            max_j = dict(self.user_bounds)
            for kind in dfg.kinds_used():
                if kind not in max_j:
                    raise ScheduleError(f"no resource bound given for kind {kind!r}")
            bounds_are_auto = False
        else:
            max_j = self._auto_bounds(asap, alap)
            bounds_are_auto = True

        grid = PlacementGrid(
            dfg,
            self.cs,
            columns=dict(max_j),
            latency_l=self.latency_l,
            pipelined_tables=self.pipelined_kinds,
        )
        liapunov = self._make_liapunov(max_j)
        order = priority_order(dfg, timing, asap, alap)

        current: Dict[str, int] = {
            kind: self._initial_current(kind, max_j[kind])
            for kind in dfg.kinds_used()
        }
        placed_starts: Dict[str, int] = {}
        chain_offsets: Dict[str, float] = {}
        trajectory = Trajectory()
        frames_log: Dict[str, FrameSet] = {}

        # Vector kernel: numpy bitmask frames instead of the per-position
        # walk.  Byte-identical to the scalar path (same placements,
        # energies, trajectories, counters); unsupported feature
        # combinations and custom Liapunov subclasses stay on the scalar
        # reference walk.  See repro.core.kernel.
        use_vector = (
            _kernel.resolve_kernel(self.kernel, len(dfg)) == "vector"
            and _kernel.vector_supported(
                trace=trace is not None,
                record_frames=self.record_frames,
                latency_l=self.latency_l,
                pipelined_tables=tuple(self.pipelined_kinds),
            )
            and type(liapunov)
            in (TimeConstrainedLiapunov, ResourceConstrainedLiapunov)
        )
        view = _kernel.VectorGrid(grid) if use_vector else None
        has_exclusions = use_vector and any(node.branch for node in dfg)

        perf = self.perf
        for name in order:
            kind = dfg.node(name).kind
            latency = timing.latency(kind)
            if use_vector:
                _lat, latest_pred_end, ff_rows_after, chain_rows = frame_bounds(
                    dfg, timing, name, grid.cs, placed_starts, chain_offsets
                )
                while True:
                    if perf is not None:
                        perf.incr("mfs.frames_computed")
                    mask, lo_y = _kernel.move_frame_mask(
                        view,
                        grid,
                        name,
                        kind,
                        latency,
                        asap[name],
                        alap[name],
                        min(current[kind], grid.columns(kind)),
                        latest_pred_end,
                        ff_rows_after,
                        chain_rows,
                        has_exclusions=has_exclusions,
                    )
                    if mask is not None and mask.any():
                        break
                    if perf is not None:
                        perf.incr("mfs.local_reschedules")
                    if current[kind] < grid.columns(kind):
                        current[kind] += 1
                        continue
                    if bounds_are_auto and self.relax_bounds:
                        grid.widen(kind, grid.columns(kind) + 1)
                        current[kind] = grid.columns(kind)
                        liapunov = self._make_liapunov(
                            {k: grid.columns(k) for k in grid.tables()}
                        )
                        continue
                    raise InfeasibleScheduleError(
                        f"no position for {name!r} ({kind}) within "
                        f"{grid.columns(kind)} units and {self.cs} steps"
                    )
                if perf is not None:
                    perf.incr("mfs.positions_evaluated", int(mask.sum()))
                chosen, energy, alternatives = _kernel.static_argmin(
                    mask, lo_y, kind, liapunov, self.record_alternatives
                )
            else:
                while True:
                    if perf is not None:
                        perf.incr("mfs.frames_computed")
                    frame = compute_frames(
                        dfg,
                        timing,
                        grid,
                        name,
                        table=kind,
                        asap=asap,
                        alap=alap,
                        current=current[kind],
                        placed_starts=placed_starts,
                        chain_offsets=chain_offsets,
                    )
                    if trace is not None:
                        trace.frame(name, kind, frame, current[kind])
                    if not frame.empty:
                        break
                    # §3.2 Step 4: local rescheduling — open one more FU.
                    if perf is not None:
                        perf.incr("mfs.local_reschedules")
                    if current[kind] < grid.columns(kind):
                        current[kind] += 1
                        if trace is not None:
                            trace.reschedule(name, kind, "open-fu", current[kind])
                        continue
                    if bounds_are_auto and self.relax_bounds:
                        grid.widen(kind, grid.columns(kind) + 1)
                        current[kind] = grid.columns(kind)
                        liapunov = self._make_liapunov(
                            {k: grid.columns(k) for k in grid.tables()}
                        )
                        if trace is not None:
                            trace.reschedule(name, kind, "widen-table", current[kind])
                        continue
                    raise InfeasibleScheduleError(
                        f"no position for {name!r} ({kind}) within "
                        f"{grid.columns(kind)} units and {self.cs} steps"
                    )
                if self.record_frames:
                    frames_log[name] = frame
                # Single-pass Liapunov evaluation: every move-frame position
                # is scored exactly once, feeding both the trajectory record
                # and the argmin (previously ``best`` re-evaluated them all).
                values = {
                    position: liapunov.value(position) for position in frame.mf
                }
                if perf is not None:
                    perf.incr("mfs.positions_evaluated", len(values))
                chosen = liapunov.best(frame.mf, values=values)
                energy = values[chosen]
                alternatives = (
                    tuple(values.items()) if self.record_alternatives else ()
                )
                if trace is not None:
                    trace.candidates(name, kind, values.items())
                    trace.commit(
                        name, kind, kind, chosen.x, chosen.y, energy, latency
                    )
            grid.place(name, chosen, latency)
            if view is not None:
                view.place(chosen, latency)
            placed_starts[name] = chosen.y
            self._update_chain_offset(name, chosen.y, placed_starts, chain_offsets)
            trajectory.record(
                node=name,
                position=chosen,
                energy=energy,
                alternatives=alternatives,
            )

        schedule = Schedule(
            dfg=dfg,
            timing=timing,
            cs=self.cs,
            starts=dict(placed_starts),
            latency_l=self.latency_l,
            pipelined_kinds=self.pipelined_kinds,
        )
        schedule.validate(
            resource_bounds=self.user_bounds if self.mode == "resource" else None
        )
        trajectory.verify()
        fu_counts = schedule.fu_usage()
        if trace is not None:
            if perf is not None:
                trace.counters(dict(perf.counters))
            trace.run_end(commits=len(trajectory), fu_counts=dict(fu_counts))
        result = MFSResult(
            schedule=schedule,
            placements=grid.placements(),
            trajectory=trajectory,
            grid=grid,
            fu_counts=fu_counts,
            frames_log=frames_log,
        )
        if self.verify:
            from repro.check.runner import check_mfs_result

            check_mfs_result(
                result,
                resource_bounds=(
                    self.user_bounds if self.mode == "resource" else None
                ),
            ).raise_if_failed()
        return result

    # ------------------------------------------------------------------
    def _make_liapunov(self, max_j: Mapping[str, int]) -> StaticLiapunov:
        widest = max(max_j.values()) if max_j else 1
        if self.user_liapunov is not None:
            liapunov = self.user_liapunov
        elif self.mode == "time":
            liapunov = TimeConstrainedLiapunov(n=max(widest, 1))
        else:
            liapunov = ResourceConstrainedLiapunov(cs=self.cs)
        # §3.1 dominance: an undersized bound would not crash — it would
        # quietly misorder the argmin — so enforce it here, where the grid
        # geometry the function must dominate is known.
        try:
            if isinstance(liapunov, TimeConstrainedLiapunov):
                liapunov.require_dominance(widest)
            elif isinstance(liapunov, ResourceConstrainedLiapunov):
                liapunov.require_dominance(self.cs)
        except ValueError as error:
            raise ScheduleError(str(error)) from None
        return liapunov

    def _update_chain_offset(
        self,
        name: str,
        start: int,
        placed_starts: Mapping[str, int],
        chain_offsets: Dict[str, float],
    ) -> None:
        if not self.timing.chaining:
            return
        kind = self.dfg.node(name).kind
        if self.timing.latency(kind) != 1:
            return
        incoming = 0.0
        for pred in self.dfg.predecessors(name):
            pred_kind = self.dfg.node(pred).kind
            if self.timing.latency(pred_kind) != 1:
                continue
            if placed_starts.get(pred) == start:
                incoming = max(incoming, chain_offsets.get(pred, 0.0))
        chain_offsets[name] = incoming + self.timing.delay_ns(kind)


def mfs_schedule(
    dfg: DFG,
    timing: TimingModel,
    cs: Optional[int] = None,
    **kwargs,
) -> MFSResult:
    """One-call convenience wrapper around :class:`MFSScheduler`."""
    return MFSScheduler(dfg, timing, cs=cs, **kwargs).run()
