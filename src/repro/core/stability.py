"""Trajectory recording and Liapunov-stability verification.

The paper's guarantee (§2.2) is that every move decreases the Liapunov
function monotonically, so the "system" (the evolving design) converges to
its equilibrium.  The schedulers record every placement decision as a
:class:`TrajectoryEvent`; :meth:`Trajectory.verify` re-checks, after the
fact, that

* every chosen position had the minimum energy within the move frame the
  algorithm saw (the movement mechanism of §2.4), and
* per operation, successive re-placements (local rescheduling) never
  increased the energy — property (2) of the theorem, ``V(X(k+1)) −
  V(X(k)) < 0`` along the trajectory.

The verifier backs both the test suite and the Figure-1 regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import StabilityError
from repro.core.grid import GridPosition


@dataclass(frozen=True)
class TrajectoryEvent:
    """One placement decision.

    ``alternatives`` holds the energies of every move-frame position the
    algorithm evaluated, including the chosen one.
    """

    iteration: int
    node: str
    position: GridPosition
    energy: float
    alternatives: Tuple[Tuple[GridPosition, float], ...] = ()
    note: str = ""


@dataclass
class Trajectory:
    """Ordered record of all placement decisions of one run."""

    events: List[TrajectoryEvent] = field(default_factory=list)

    def record(
        self,
        node: str,
        position: GridPosition,
        energy: float,
        alternatives: Tuple[Tuple[GridPosition, float], ...] = (),
        note: str = "",
    ) -> None:
        """Append one decision."""
        self.events.append(
            TrajectoryEvent(
                iteration=len(self.events),
                node=node,
                position=position,
                energy=energy,
                alternatives=alternatives,
                note=note,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def events_for(self, node: str) -> List[TrajectoryEvent]:
        """All decisions concerning ``node`` (re-placements included)."""
        return [event for event in self.events if event.node == node]

    def final_positions(self) -> Dict[str, GridPosition]:
        """Last recorded position of every node."""
        positions: Dict[str, GridPosition] = {}
        for event in self.events:
            positions[event.node] = event.position
        return positions

    # ------------------------------------------------------------------
    def verify(self, tolerance: float = 1e-9) -> None:
        """Check the Liapunov movement properties; raise on violation."""
        for event in self.events:
            if event.alternatives:
                best = min(energy for _pos, energy in event.alternatives)
                if event.energy > best + tolerance:
                    raise StabilityError(
                        f"iteration {event.iteration}: node {event.node!r} "
                        f"took energy {event.energy}, but {best} was available"
                    )
        per_node: Dict[str, float] = {}
        for event in self.events:
            previous = per_node.get(event.node)
            if previous is not None and event.energy > previous + tolerance:
                raise StabilityError(
                    f"node {event.node!r} moved from energy {previous} to "
                    f"{event.energy}: Liapunov value increased"
                )
            per_node[event.node] = event.energy

    def total_energy(self) -> float:
        """Sum of final per-node energies — the V(X) of the end state."""
        finals: Dict[str, float] = {}
        for event in self.events:
            finals[event.node] = event.energy
        return sum(finals.values())
