"""Scheduling-kernel dispatch: scalar reference vs numpy-vectorised inner loop.

The MFS/MFSA inner loop prices every candidate grid position of every
operation.  The *scalar* kernel — the original implementation in
:mod:`repro.core.mfs` / :mod:`repro.core.mfsa` — walks the move frame one
``GridPosition`` at a time; the *vector* kernel replaces that walk with
numpy bitmask arithmetic over whole frames:

* the placement grid is mirrored into one boolean occupancy matrix per
  table (``[y, x]``, row-major, 1-based like the grid);
* the forbidden/chain row filters and the column filters become boolean
  index vectors;
* a latency-``k`` operation's availability is the sliding ``any`` of the
  occupancy window, an O(k) sequence of vectorised ORs;
* the Liapunov energies of all admissible positions are one broadcasted
  expression, evaluated with exactly the scalar path's operation order so
  the floats — and therefore every tie-break — are bit-identical;
* the argmin is a row-major flat ``argmin``, which reproduces the scalar
  tie order (energy, then step ``y``, then instance ``x``) because the
  matrix is laid out ``[y, x]``.

Both kernels produce **byte-identical results** — schedules, placements,
trajectories, costs; :mod:`repro.check.kernels` and the hypothesis suite
in ``tests/property/test_property_kernel.py`` enforce it.  numpy is an
optional dependency (the ``repro[accel]`` extra): when it is missing the
dispatcher silently selects the scalar kernel, so the library keeps its
stdlib-only floor.

Dispatch policy (:func:`resolve_kernel`):

* ``"scalar"`` — always the reference loop;
* ``"vector"`` — always the numpy loop; raises
  :class:`KernelUnavailableError` without numpy;
* ``"auto"`` (the default) — the vector kernel when numpy is importable
  *and* the workload is big enough to pay for the array overhead
  (``n_ops >= VECTOR_MIN_OPS``); tiny paper examples stay on the scalar
  loop, where per-position python beats per-frame numpy setup.

Independently of the requested kernel, the schedulers fall back to the
scalar loop for the features the vector loop does not model: attached
trace recorders (the per-candidate event stream *is* the scalar walk),
``record_frames`` (the Figure-2 harness wants faithful per-pass
``FrameSet`` logs), functional pipelining / structurally pipelined tables
(folded occupancy), MFSA's ``no_cache`` reference mode, and — for MFS —
user-supplied Liapunov subclasses (only the two paper functions have a
closed form the kernel trusts).  :func:`vector_supported` centralises
that decision so both schedulers and the audits agree on it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ScheduleError
from repro.core.grid import GridPosition, PlacementGrid

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Whether the vector kernel can run in this interpreter.
HAVE_NUMPY = np is not None

#: Recognised kernel names.
KERNELS = ("auto", "scalar", "vector")

#: ``auto`` switches to the vector kernel at this DFG size.  Below it the
#: scalar loop wins: a paper example's move frames hold a handful of
#: positions, and one numpy broadcast costs more than pricing them all in
#: python.  Both kernels are byte-identical, so the threshold is purely a
#: performance knob.
VECTOR_MIN_OPS = 48


class KernelUnavailableError(ScheduleError):
    """The explicitly requested kernel cannot run (numpy missing)."""


def available_kernels() -> Tuple[str, ...]:
    """Concrete kernels this interpreter can run."""
    return ("scalar", "vector") if HAVE_NUMPY else ("scalar",)


def resolve_kernel(name: str = "auto", n_ops: Optional[int] = None) -> str:
    """Resolve a kernel request to ``"scalar"`` or ``"vector"``.

    ``n_ops`` feeds the ``auto`` size heuristic; ``None`` means "assume
    big" (callers that resolve once per sweep rather than per design).
    """
    if name not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {name!r}")
    if name == "scalar":
        return "scalar"
    if name == "vector":
        if not HAVE_NUMPY:
            raise KernelUnavailableError(
                "kernel 'vector' requested but numpy is not installed "
                "(pip install repro[accel]); the scalar kernel is always "
                "available"
            )
        return "vector"
    if not HAVE_NUMPY:
        return "scalar"
    if n_ops is not None and n_ops < VECTOR_MIN_OPS:
        return "scalar"
    return "vector"


def vector_supported(
    *,
    trace: bool = False,
    record_frames: bool = False,
    latency_l: Optional[int] = None,
    pipelined_tables: Sequence[str] = (),
    no_cache: bool = False,
) -> bool:
    """Whether a run's feature set is covered by the vector inner loop.

    Unsupported combinations silently use the scalar reference loop —
    results are identical either way, only the walk differs.
    """
    if not HAVE_NUMPY:
        return False
    if trace or record_frames or no_cache:
        return False
    if latency_l is not None or pipelined_tables:
        return False
    return True


# ----------------------------------------------------------------------
# numpy occupancy mirror
# ----------------------------------------------------------------------
class VectorGrid:
    """Boolean occupancy mirror of a :class:`PlacementGrid`.

    One ``bool[cs + 2, columns + 1]`` matrix per table, indexed ``[y, x]``
    with the grid's 1-based coordinates (row 0 / column 0 stay unused so
    no index arithmetic differs from the scalar path).  The scheduler
    notifies the mirror on every :meth:`place`; tables are (re)built from
    the grid's authoritative occupancy when first touched or after a
    :meth:`PlacementGrid.widen`.

    The mirror records "at least one occupant".  Mutual exclusion (§5.1)
    makes some occupied cells still placeable; when the DFG carries any
    branch information, the mask builders re-check exactly those cells
    through :meth:`PlacementGrid.is_free`, so exclusion semantics stay
    centralised in the grid.
    """

    def __init__(self, grid: PlacementGrid) -> None:
        if np is None:  # pragma: no cover - guarded by dispatch
            raise KernelUnavailableError("VectorGrid needs numpy")
        self._grid = grid
        self._occ: Dict[str, "np.ndarray"] = {}

    def table(self, table: str) -> "np.ndarray":
        """The occupancy matrix of ``table`` (rebuilt after widening)."""
        occ = self._occ.get(table)
        columns = self._grid.columns(table)
        if occ is None or occ.shape[1] < columns + 1:
            occ = np.zeros((self._grid.cs + 2, columns + 1), dtype=bool)
            for x, y in self._grid.occupancy_cells(table):
                occ[y, x] = True
            self._occ[table] = occ
        return occ

    def place(self, position: GridPosition, latency: int) -> None:
        """Mirror one placement (non-folded occupancy only)."""
        occ = self.table(position.table)
        occ[position.y : position.y + latency, position.x] = True


# ----------------------------------------------------------------------
# move-frame masks
# ----------------------------------------------------------------------
def move_frame_mask(
    view: VectorGrid,
    grid: PlacementGrid,
    node: str,
    table: str,
    latency: int,
    lo_y: int,
    hi_y: int,
    top_col: int,
    latest_pred_end: int,
    ff_rows_after: int,
    chain_rows: Tuple[int, ...],
    banned: Tuple[int, ...] = (),
    has_exclusions: bool = False,
) -> Tuple[Optional["np.ndarray"], int]:
    """Admissible-position mask of one (node, table) move frame.

    Returns ``(mask, lo_y)`` where ``mask[i, j]`` covers step
    ``lo_y + i`` and instance column ``j + 1`` — or ``(None, lo_y)``
    when the frame is geometrically empty.  Mirrors, bit for bit, the
    filter chain of :func:`repro.core.frames.compute_frames`: primary
    rows, forbidden rows (chain re-admission included), the column
    budget, style-2 exclusions, and grid occupancy over the full latency
    span.
    """
    cs = grid.cs
    lo_y = max(lo_y, 1)
    hi_y = min(hi_y, cs - latency + 1)
    if hi_y < lo_y or top_col < 1:
        return None, lo_y

    ys = np.arange(lo_y, hi_y + 1)
    row_ok = ys > latest_pred_end
    if chain_rows:
        row_ok |= np.isin(ys, np.array(chain_rows))
    row_ok &= ys < ff_rows_after

    occ = view.table(table)
    window = occ[lo_y : hi_y + latency, 1 : top_col + 1]
    n_rows = len(ys)
    blocked = window[0:n_rows].copy()
    for offset in range(1, latency):
        blocked |= window[offset : offset + n_rows]

    mask = row_ok[:, None] & ~blocked
    banned_cols = [x - 1 for x in banned if 1 <= x <= top_col]
    if banned_cols:
        mask[:, banned_cols] = False

    if has_exclusions:
        # Occupied cells may still admit a mutually exclusive node —
        # re-check exactly those through the grid's full predicate.
        recheck = row_ok[:, None] & blocked
        if banned_cols:
            recheck[:, banned_cols] = False
        for i, j in zip(*np.nonzero(recheck)):
            if grid.is_free(node, table, int(j) + 1, int(ys[i]), latency):
                mask[i, j] = True

    return mask, lo_y


def argmin_position(
    mask: "np.ndarray", energy: "np.ndarray", table: str, lo_y: int
) -> Tuple[GridPosition, float]:
    """Row-major argmin over the masked energy matrix.

    Equivalent to the scalar walk's ``min`` under the key
    ``(energy, y, x)``: ``flat argmin`` returns the first minimal entry
    in ``[y, x]`` order.
    """
    masked = np.where(mask, energy, np.inf)
    flat = int(np.argmin(masked))
    i, j = divmod(flat, mask.shape[1])
    return GridPosition(table, j + 1, lo_y + i), masked[i, j]


def mask_positions(
    mask: "np.ndarray", table: str, lo_y: int
) -> List[GridPosition]:
    """The mask's admissible positions, in the scalar walk's (y, x) order."""
    rows, cols = np.nonzero(mask)
    return [
        GridPosition(table, int(j) + 1, lo_y + int(i))
        for i, j in zip(rows, cols)
    ]


def static_argmin(
    mask: "np.ndarray",
    lo_y: int,
    table: str,
    liapunov,
    want_alternatives: bool,
) -> Tuple[GridPosition, int, Tuple]:
    """MFS placement pick: static Liapunov argmin over one frame mask.

    Evaluates ``liapunov.value_xy`` on the whole frame in one broadcast —
    both paper functions are integer-valued on integer coordinates, so
    the int64 matrix carries the exact scalar energies — and returns
    ``(position, energy, alternatives)`` with the same tie order and, if
    requested, the same (position, energy) candidate sequence the scalar
    walk records.
    """
    ys = np.arange(lo_y, lo_y + mask.shape[0], dtype=np.int64)
    xs = np.arange(1, mask.shape[1] + 1, dtype=np.int64)
    energy = liapunov.value_xy(xs[None, :], ys[:, None])
    masked = np.where(mask, energy, np.iinfo(np.int64).max)
    flat = int(np.argmin(masked))
    i, j = divmod(flat, mask.shape[1])
    chosen = GridPosition(table, j + 1, lo_y + i)
    alternatives: Tuple = ()
    if want_alternatives:
        alternatives = tuple(
            zip(mask_positions(mask, table, lo_y), energy[mask].tolist())
        )
    return chosen, int(masked[i, j]), alternatives


def mux_costs_monotone(costs, up_to: int) -> bool:
    """Certify ``Cost(MUX_{r+1}) >= Cost(MUX_r)`` for ``r < up_to``.

    Grounds the vector kernel's f_MUX pruning bound: with a monotone
    cost table, adding an operand to an instance can never *lower* its
    optimal mux cost (any (r+1)-operand assignment restricts to an
    r-operand one of no larger list sizes), hence ``f_MUX >= 0`` and an
    energy priced with ``f_MUX = 0`` lower-bounds the true energy (IEEE
    addition is monotone).  Custom tables can break monotonicity, so the
    scheduler checks once per run — a failed certificate just disables
    pruning, never correctness.
    """
    previous = costs.cost(1)
    for r in range(2, up_to + 1):
        current = costs.cost(r)
        if current < previous:
            return False
        previous = current
    return True


def batched_reg_costs(
    estimator,
    births: Sequence[int],
    delta: int,
    lo_y: int,
    hi_y: int,
) -> "np.ndarray":
    """f_REG register counts of one operation over a whole step range.

    ``births`` are the operation's input birth steps (unknown signals
    only, in operand order); starting the operation at step ``y`` gives
    every input the death ``y + delta``.  Returns ``counts`` where
    ``counts[i]`` equals ``IncrementalRegisterEstimator.cost_of`` of the
    inputs at step ``lo_y + i`` — the whole range in a few broadcasts
    instead of one greedy first-fit walk per step.

    The scalar estimator's walk has two ingredients, and both vectorise
    exactly over ``y``:

    * a committed track admits an input born at ``b`` iff the input's
      death stays within the track's threshold ``τ(b)``
      (:meth:`IncrementalRegisterEstimator.track_thresholds`) — one
      broadcast comparison per input;
    * two inputs of the same operation die on the same step, hence
      always conflict with each other: the tentative-placement interplay
      degenerates to "inputs claim distinct committed tracks in operand
      order; an unplaced input always opens its own new track".
    """
    n = hi_y - lo_y + 1
    deaths = np.arange(lo_y + delta, hi_y + delta + 1, dtype=np.int64)
    added = np.zeros(n, dtype=np.int64)
    claimed: List["np.ndarray"] = []
    for birth in births:
        needs = deaths > birth
        thresholds = estimator.track_thresholds(birth)
        if thresholds:
            tau = np.array(thresholds, dtype=np.int64)
            avail = tau[:, None] >= deaths[None, :]
            for prior in claimed:
                taken = np.nonzero(prior >= 0)[0]
                avail[prior[taken], taken] = False
            open_ok = avail.any(axis=0)
            first = avail.argmax(axis=0)
        else:
            open_ok = np.zeros(n, dtype=bool)
            first = np.zeros(n, dtype=np.int64)
        placed = needs & open_ok
        claimed.append(np.where(placed, first, -1))
        added += needs & ~open_ok
    return added
