"""Operation priority ordering (§3.2 Step 2, §5.3).

The paper's rule set:

1. operations are visited following the ALAP table "starting from the
   first control step" — primary key: ALAP start step;
2. within a step, lower mobility means higher priority;
3. **multi-cycle inversion** (§5.3): between two multi-cycle operations
   whose mobilities differ by less than their latency, the rule reverses —
   the *more* mobile one goes first (it "has always a better chance to use
   the empty positions");
4. tie-break (§5.3): the operation with earlier placed predecessors (in
   control steps) gets higher priority;
5. remaining ties break deterministically by DFG insertion order (the
   paper breaks them "arbitrarily").
"""

from __future__ import annotations

from functools import cmp_to_key
from typing import List, Mapping

from repro.dfg.analysis import TimingModel
from repro.dfg.graph import DFG


def _latest_predecessor_end(
    dfg: DFG, timing: TimingModel, asap: Mapping[str, int], name: str
) -> int:
    """Earliest possible finishing step of the node's latest predecessor.

    Used for the §5.3 tie-break ("the operation with earlier predecessors
    … will get higher priority"); ASAP times stand in for placements since
    priorities are fixed before placement starts.
    """
    best = 0
    for pred in dfg.predecessors(name):
        latency = timing.latency(dfg.node(pred).kind)
        best = max(best, asap[pred] + latency - 1)
    return best


def priority_order(
    dfg: DFG,
    timing: TimingModel,
    asap: Mapping[str, int],
    alap: Mapping[str, int],
) -> List[str]:
    """Scheduling order of all operations under the paper's priority rules.

    The returned order is topological: ``ALAP[pred] + latency(pred) <=
    ALAP[succ]`` guarantees predecessors appear first, which is why the
    paper's forbidden frame only needs to look at predecessors.
    """
    mobility = {name: alap[name] - asap[name] for name in asap}
    insertion = {name: i for i, name in enumerate(dfg.node_names())}
    pred_end = {
        name: _latest_predecessor_end(dfg, timing, asap, name) for name in asap
    }
    latency = {name: timing.latency(dfg.node(name).kind) for name in asap}

    def compare(p: str, q: str) -> int:
        if alap[p] != alap[q]:
            return -1 if alap[p] < alap[q] else 1
        lat_p, lat_q = latency[p], latency[q]
        mob_p, mob_q = mobility[p], mobility[q]
        if lat_p > 1 and lat_q > 1 and mob_p != mob_q:
            # §5.3 inversion: for close mobilities, the more mobile
            # multi-cycle operation goes first.
            if abs(mob_p - mob_q) < max(lat_p, lat_q):
                return -1 if mob_p > mob_q else 1
        if mob_p != mob_q:
            return -1 if mob_p < mob_q else 1
        if pred_end[p] != pred_end[q]:
            return -1 if pred_end[p] < pred_end[q] else 1
        return -1 if insertion[p] < insertion[q] else 1

    ranked = sorted(dfg.node_names(), key=cmp_to_key(compare))
    rank = {name: i for i, name in enumerate(ranked)}

    # With chaining a dependent pair may share an ALAP step, so the raw
    # priority order is not guaranteed topological.  A Kahn pass that always
    # releases the best-ranked ready node restores the guarantee while
    # deviating from the paper's order only when a dependence forces it.
    in_degree = {name: len(dfg.predecessors(name)) for name in dfg.node_names()}
    ready = sorted(
        (name for name, deg in in_degree.items() if deg == 0),
        key=rank.__getitem__,
    )
    order: List[str] = []
    while ready:
        name = ready.pop(0)
        order.append(name)
        for succ in dfg.successors(name):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                # Insert keeping `ready` sorted by rank (small lists).
                position = 0
                while position < len(ready) and rank[ready[position]] < rank[succ]:
                    position += 1
                ready.insert(position, succ)
    return order
