"""Liapunov (energy) functions guiding MFS and MFSA (§2.4, §3.1, §4.1).

The *static* functions used by MFS assign a fixed value to every grid
position:

* time-constrained:      ``V(x, y) = x + n·y``  with ``n = max_j max_j``
  (so the last FU of step ``t`` is cheaper than the first FU of ``t+1``);
* resource-constrained:  ``V(x, y) = cs·x + y`` (an existing FU at ``t+1``
  beats a new FU at ``t``).

The *dynamic* MFSA function values a candidate position by

    ``f_TIME + f_ALU + f_MUX + f_REG``

where ``f_TIME = C·y`` and ``C`` is derived from the library bounds so that
an earlier control step always wins when one is available (§4.1); the other
terms are incremental hardware costs supplied by the allocation state.  A
weighted variant supports user emphasis (``w_TIME·f_TIME + …``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.grid import GridPosition
from repro.library.cells import CellLibrary


class StaticLiapunov:
    """Base class for the static MFS energy functions.

    Subclasses implement :meth:`value`.  ``tie_key`` produces the full
    comparison key used when several positions share the minimum energy —
    the paper breaks such ties arbitrarily; we break them deterministically
    by (value, step, instance).
    """

    def value(self, position: GridPosition) -> float:
        """Energy of one grid position."""
        raise NotImplementedError

    def tie_key(self, position: GridPosition):
        """Deterministic total order on positions."""
        return (self.value(position), position.y, position.x)

    def best(self, positions, values=None) -> Optional[GridPosition]:
        """Minimum-energy position of an iterable (None when empty).

        ``values`` may carry precomputed energies (a mapping position →
        energy); the caller typically already evaluated every move-frame
        position for the trajectory record, and passing them here avoids
        re-running :meth:`value` once per position inside the argmin
        (``tie_key`` would otherwise recompute each one).
        """
        positions = list(positions)
        if not positions:
            return None
        if values is None:
            return min(positions, key=self.tie_key)
        return min(
            positions, key=lambda p: (values[p], p.y, p.x)
        )


@dataclass
class TimeConstrainedLiapunov(StaticLiapunov):
    """``V = x + n·y`` — never waste a control step (§3.1).

    ``n`` must be at least the widest table (``max_j``) so that position
    ``(max_j, t)`` has lower energy than ``(1, t+1)``.
    """

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")

    def require_dominance(self, max_j: int) -> None:
        """Enforce the §3.1 dominance bound ``n >= max_j``.

        With ``n < max_j`` position ``(max_j, t)`` costs more than
        ``(1, t+1)`` and the argmin silently prefers wasting a control
        step over opening the last FU — the step-ordering guarantee is
        gone.  Call sites must check against the widest table they will
        actually offer positions in.
        """
        if self.n < max_j:
            raise ValueError(
                f"time-constrained Liapunov n={self.n} does not dominate "
                f"{max_j} FU columns (need n >= max_j): step ordering "
                f"would silently break"
            )

    def value(self, position: GridPosition) -> float:
        return position.x + self.n * position.y

    def value_xy(self, x, y):
        """:meth:`value` on raw coordinates; broadcasts over numpy arrays."""
        return x + self.n * y


@dataclass
class ResourceConstrainedLiapunov(StaticLiapunov):
    """``V = cs·x + y`` — reuse an existing FU instead of adding one (§3.1).

    ``cs`` must be an upper bound on the number of control steps so that
    position ``(x, cs)`` still beats ``(x+1, 1)``.
    """

    cs: int

    def __post_init__(self) -> None:
        if self.cs < 1:
            raise ValueError(f"cs must be >= 1, got {self.cs}")

    def require_dominance(self, schedule_steps: int) -> None:
        """Enforce the §3.1 dominance bound ``cs >= schedule length``.

        With ``cs`` smaller than the number of control steps offered,
        ``(x, cs+1)`` costs more than ``(x+1, 1)`` and the argmin opens a
        new FU instead of reusing an existing one in a late step —
        instance ordering silently breaks.
        """
        if self.cs < schedule_steps:
            raise ValueError(
                f"resource-constrained Liapunov cs={self.cs} does not "
                f"dominate a {schedule_steps}-step table (need cs >= "
                f"schedule length): FU-reuse ordering would silently break"
            )

    def value(self, position: GridPosition) -> float:
        return self.cs * position.x + position.y

    def value_xy(self, x, y):
        """:meth:`value` on raw coordinates; broadcasts over numpy arrays."""
        return self.cs * x + y


@dataclass(frozen=True)
class LiapunovWeights:
    """User emphasis weights of the four MFSA cost factors (§4.1).

    All ones gives "an overall optimizer without emphasising any particular
    factor" — the paper's default.
    """

    time: float = 1.0
    alu: float = 1.0
    mux: float = 1.0
    reg: float = 1.0

    def __post_init__(self) -> None:
        for label, weight in (
            ("time", self.time),
            ("alu", self.alu),
            ("mux", self.mux),
            ("reg", self.reg),
        ):
            if weight < 0:
                raise ValueError(f"weight {label} must be >= 0, got {weight}")


class MFSALiapunov:
    """The dynamic MFSA energy function (§4.1).

    The constant ``C`` satisfies the paper's inequality

        ``C > [f_ALU_max + f_MUX_max + f_REG_max] − [f_ALU_min + f_MUX_min
        + f_REG_min]``

    (all minimums are zero), guaranteeing that ``f_TIME = C·y`` dominates:
    control step ``t`` is selected before ``t+1`` whenever hardware allows.
    """

    def __init__(
        self,
        library: CellLibrary,
        weights: LiapunovWeights = LiapunovWeights(),
    ) -> None:
        self.library = library
        self.weights = weights
        spread = library.f_alu_max() + library.f_mux_max() + library.f_reg_max()
        # Scale by the largest hardware weight so weighting cannot break
        # the time-dominance inequality.
        hardware_weight = max(weights.alu, weights.mux, weights.reg, 1e-9)
        self.c_constant = (spread * hardware_weight + 1.0) / max(
            weights.time, 1e-9
        )

    def f_time(self, y: int) -> float:
        """``C · y`` — the step-ordering term."""
        return self.c_constant * y

    def value(self, y: int, f_alu: float, f_mux: float, f_reg: float) -> float:
        """Total (weighted) energy of a candidate placement."""
        w = self.weights
        return (
            w.time * self.f_time(y)
            + w.alu * f_alu
            + w.mux * f_mux
            + w.reg * f_reg
        )

    def value_grid(self, ys, f_alu, f_mux, f_reg):
        """Vectorised :meth:`value` over one frame (numpy arrays).

        ``ys`` indexes rows, ``f_alu``/``f_mux`` columns, ``f_reg`` rows;
        the result is the ``(len(ys), len(f_alu))`` energy matrix.  The
        terms are combined in exactly :meth:`value`'s order —
        ``((time + alu) + mux) + reg`` — so every float is bit-identical
        to the per-position scalar evaluation (argmin ties included).
        """
        w = self.weights
        f_time = w.time * (self.c_constant * ys)
        return (
            (f_time[:, None] + (w.alu * f_alu)[None, :])
            + (w.mux * f_mux)[None, :]
        ) + (w.reg * f_reg)[:, None]

    def hardware_value(self, f_alu: float, f_mux: float, f_reg: float) -> float:
        """The hardware-only part of :meth:`value` (for reporting)."""
        w = self.weights
        return w.alu * f_alu + w.mux * f_mux + w.reg * f_reg
