"""Move Frame Scheduling-Allocation — MFSA (§4).

MFSA keeps MFS's tables, frames and movement mechanism but

* one table exists per *ALU cell* of the user's library (an addition may
  go to ``(+)``, ``(+-)``, ``(+>)``, … — §4.1), and
* the Liapunov function is *dynamic*:

      ``V = Σ (f_TIME + f_ALU + f_MUX + f_REG)``

  where ``f_ALU`` is the cost of opening a new ALU instance (zero when
  reusing one), ``f_MUX`` the incremental multiplexer cost under best
  input-signal sharing (§5.6), and ``f_REG`` the incremental register cost
  from the candidate's input-signal life spans (§5.8).  ``f_TIME = C·y``
  dominates so control steps are never wasted.

Two design styles (§4.2): style 1 is unrestricted; style 2 forbids
self-loops around ALUs (an operation may not share an instance with its
DFG predecessors or successors — the SYNTEST self-testable style).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.trace.recorder import TraceRecorder

from repro.errors import InfeasibleScheduleError, ScheduleError
from repro.dfg.analysis import TimingModel, alap_schedule, asap_schedule
from repro.dfg.graph import DFG
from repro.library.cells import ALUCell, CellLibrary
from repro.schedule.types import Schedule
from repro.allocation.datapath import CostBreakdown, Datapath
from repro.allocation.lifetimes import Lifetime
from repro.allocation.mux import (
    MuxOperand,
    _canonical_form,
    cached_mux_sizes_for_key,
    optimize_mux_inputs,
)
from repro.allocation.registers import IncrementalRegisterEstimator
from repro.core import kernel as _kernel
from repro.core.frames import FrameSet, compute_frames, frame_bounds
from repro.core.grid import GridPosition, PlacementGrid
from repro.core.liapunov import LiapunovWeights, MFSALiapunov
from repro.core.priorities import priority_order
from repro.core.stability import Trajectory
from repro.perf import PerfCounters


@dataclass
class MFSAResult:
    """Schedule + RTL structure + audit trail of one MFSA run."""

    schedule: Schedule
    datapath: Datapath
    placements: Dict[str, GridPosition]
    trajectory: Trajectory
    grid: PlacementGrid
    style: int
    frames_log: Dict[str, List[FrameSet]] = field(default_factory=dict)

    @property
    def cost(self) -> CostBreakdown:
        """Area roll-up (Table-2 ``Cost``)."""
        return self.datapath.cost_breakdown()

    def alu_labels(self) -> List[str]:
        """Paper-style ALU list (Table-2 ``ALU's`` column)."""
        return self.datapath.alu_labels()


class _AllocationState:
    """Mutable hardware picture MFSA's dynamic Liapunov function reads.

    With ``cache=True`` (the default) two exact memo tables remove the
    redundant work of candidate evaluation:

    * ``_operand_cache`` — :class:`MuxOperand` construction per node.  A
      node's operand signals never change during a run, yet the naive path
      rebuilds the operand of every *member* of an instance for every
      candidate position probed against that instance.
    * ``_mux_with_cache`` — mux costs keyed by the instance's committed
      member tuple plus the candidate.  The optimised mux cost is a pure
      function of exactly those operand lists (the mux cost table is
      library-wide), so the key is valid forever: a commit grows the
      member tuple, which simply routes later probes of that instance to
      a new key — no invalidation walk.  Misses fall through to the
      process-wide renaming-canonical optimiser memo in
      :mod:`repro.allocation.mux`, where isomorphic operand lists across
      instances, schedulers and runs share one ``optimize_mux_inputs``
      call.

    Both caches are exact (same inputs → same deterministic optimiser
    call), so cached and uncached runs produce byte-identical schedules —
    the property ``tests/core/test_mfsa_equivalence.py`` locks down.
    """

    def __init__(
        self,
        dfg: DFG,
        timing: TimingModel,
        library: CellLibrary,
        cache: bool = True,
        perf: Optional[PerfCounters] = None,
    ) -> None:
        self.dfg = dfg
        self.timing = timing
        self.library = library
        self.ops_on: Dict[Tuple[str, int], List[str]] = {}
        self.opened_columns: Dict[str, int] = {}
        self._mux_cost: Dict[Tuple[str, int], float] = {}
        self.registers = IncrementalRegisterEstimator()
        self.alu_area_spent = 0.0
        self.cache = cache
        self.perf = perf
        self._operand_cache: Dict[str, MuxOperand] = {}
        self._mux_with_cache: Dict[Tuple[str, int, int, str], float] = {}
        # Canonical form (key, ids, names) of each instance's committed
        # member list, so a candidate probe extends it by one operand in
        # O(1) instead of re-canonicalising the whole list.  Entries are
        # dropped on commit and lazily rebuilt.
        self._canon_prefix: Dict[Tuple[str, int], tuple] = {}

    # -- ALU ------------------------------------------------------------
    def instance_open(self, cell: ALUCell, x: int) -> bool:
        return (cell.name, x) in self.ops_on

    def f_alu(self, cell: ALUCell, x: int) -> float:
        """§4.1: a new ALU costs its area; an existing one is free."""
        return 0.0 if self.instance_open(cell, x) else cell.area

    # -- MUX ------------------------------------------------------------
    def _mux_operand(self, name: str) -> MuxOperand:
        if self.cache:
            cached = self._operand_cache.get(name)
            if cached is not None:
                if self.perf is not None:
                    self.perf.incr("mfsa.operand_cache_hits")
                return cached
        node = self.dfg.node(name)
        spec = self.timing.ops.spec(node.kind)
        signals = node.operand_names()
        operand = MuxOperand(
            op=name,
            left=signals[0],
            right=signals[1] if len(signals) > 1 else None,
            commutative=spec.commutative,
        )
        if self.cache:
            if self.perf is not None:
                self.perf.incr("mfsa.operand_cache_misses")
            self._operand_cache[name] = operand
        return operand

    def mux_cost_before(self, cell: ALUCell, x: int) -> float:
        return self._mux_cost.get((cell.name, x), 0.0)

    def mux_cost_with(self, cell: ALUCell, x: int, name: str) -> float:
        members = self.ops_on.get((cell.name, x), [])
        costs = self.library.mux_costs
        if not self.cache:
            operands = [self._mux_operand(member) for member in members]
            operands.append(self._mux_operand(name))
            assignment = optimize_mux_inputs(operands)
            return costs.cost(len(assignment.l1)) + costs.cost(
                len(assignment.l2)
            )
        # Member lists only ever grow, so (instance, member count,
        # candidate) identifies the operand list — an O(1) key where
        # hashing the member tuple itself would walk the whole list.
        memo_key = (cell.name, x, len(members), name)
        cached = self._mux_with_cache.get(memo_key)
        if cached is not None:
            if self.perf is not None:
                self.perf.incr("mfsa.mux_cache_hits")
            return cached
        if self.perf is not None:
            self.perf.incr("mfsa.mux_cache_misses")
        # Second level: the process-wide renaming-canonical memo in
        # repro.allocation.mux — isomorphic operand lists (across
        # instances, runs and schedulers) share one optimiser call.  The
        # canonical key is built by extending the instance's committed
        # canonical prefix with the candidate operand in O(1), instead of
        # re-canonicalising the whole member list on every probe.
        prefix = self._canon_prefix.get((cell.name, x))
        if prefix is None:
            canon_key, canon_names = _canonical_form(
                [self._mux_operand(member) for member in members]
            )
            canon_ids = {s: i for i, s in enumerate(canon_names)}
            prefix = (canon_key, canon_ids, canon_names)
            self._canon_prefix[(cell.name, x)] = prefix
        canon_key, canon_ids, canon_names = prefix
        operand = self._mux_operand(name)
        base = len(canon_names)
        left = canon_ids.get(operand.left)
        extra_names = []
        if left is None:
            left = base
            extra_names.append(operand.left)
        if operand.right is None:
            right = None
        elif operand.right == operand.left:
            right = left
        else:
            right = canon_ids.get(operand.right)
            if right is None:
                right = base + len(extra_names)
                extra_names.append(operand.right)
        full_key = canon_key + ((left, right, operand.commutative),)
        n1, n2 = cached_mux_sizes_for_key(full_key, perf=self.perf)
        cost = costs.cost(n1) + costs.cost(n2)
        self._mux_with_cache[memo_key] = cost
        return cost

    def f_mux(self, cell: ALUCell, x: int, name: str) -> float:
        """§4.1: multiplexer cost delta under best signal sharing."""
        return self.mux_cost_with(cell, x, name) - self.mux_cost_before(cell, x)

    # -- REG ------------------------------------------------------------
    def input_lifetimes(
        self,
        name: str,
        y: int,
        placed_ends: Mapping[str, int],
        pipelined_kinds: frozenset = frozenset(),
    ) -> List[Lifetime]:
        """Life spans the candidate step ``y`` gives the node's inputs.

        A non-pipelined multi-cycle consumer holds its operands until its
        end step (see :mod:`repro.allocation.lifetimes`).
        """
        node = self.dfg.node(name)
        latency = self.timing.latency(node.kind)
        death = y
        if latency > 1 and node.kind not in pipelined_kinds:
            death = y + latency - 1
        lifetimes: List[Lifetime] = []
        seen = set()
        for port in node.operands:
            if not port.is_node or port.name in seen:
                continue
            seen.add(port.name)
            birth = placed_ends[port.name]
            lifetimes.append(
                Lifetime(value=port.signal_name(), birth=birth, death=death)
            )
        return lifetimes

    def f_reg(self, lifetimes: List[Lifetime]) -> float:
        """§4.1/§5.8: new registers required, via activity selection."""
        return self.registers.cost_of(lifetimes) * self.library.register_area

    # -- commit ----------------------------------------------------------
    def commit(
        self, name: str, cell: ALUCell, x: int, lifetimes: List[Lifetime]
    ) -> None:
        key = (cell.name, x)
        if key not in self.ops_on:
            self.alu_area_spent += cell.area
        self._mux_cost[key] = self.mux_cost_with(cell, x, name)
        # Appending to the member list retires the old memo key of this
        # instance automatically — no explicit invalidation needed.  The
        # canonical prefix is extended in place by the committed operand
        # (first-occurrence indexing, exactly like _canonical_form).
        self.ops_on.setdefault(key, []).append(name)
        entry = self._canon_prefix.get(key)
        if entry is not None:
            canon_key, canon_ids, canon_names = entry
            if canon_key is None:  # pragma: no cover - duplicate op ids
                self._canon_prefix.pop(key, None)
            else:
                operand = self._mux_operand(name)
                left = canon_ids.get(operand.left)
                if left is None:
                    left = len(canon_names)
                    canon_ids[operand.left] = left
                    canon_names.append(operand.left)
                if operand.right is None:
                    right = None
                else:
                    right = canon_ids.get(operand.right)
                    if right is None:
                        right = len(canon_names)
                        canon_ids[operand.right] = right
                        canon_names.append(operand.right)
                self._canon_prefix[key] = (
                    canon_key + ((left, right, operand.commutative),),
                    canon_ids,
                    canon_names,
                )
        self.opened_columns[cell.name] = max(
            self.opened_columns.get(cell.name, 0), x
        )
        self.registers.commit(lifetimes)

    def excluded_instances(self, cell: ALUCell, name: str) -> Tuple[int, ...]:
        """Style-2 exclusions: instances hosting a predecessor/successor."""
        related = set(self.dfg.predecessors(name)) | set(self.dfg.successors(name))
        banned = []
        for (cell_name, x), members in self.ops_on.items():
            if cell_name == cell.name and related & set(members):
                banned.append(x)
        return tuple(banned)


class MFSAScheduler:
    """Configurable MFSA runner (time-constrained, per the paper's Table 2).

    Parameters mirror :class:`~repro.core.mfs.MFSScheduler`; additionally:

    library:
        The :class:`CellLibrary` of available (multifunction) ALUs,
        registers and mux costs.
    style:
        1 = unrestricted RTL, 2 = no self-loop around ALUs (§4.2).
    weights:
        The §4.1 weighted-Liapunov emphasis (default: all ones).
    max_instances_per_cell:
        Column budget per ALU cell table (default: enough for every
        compatible operation — the "presummed big number").
    no_cache:
        Disable the incremental-evaluation layer (operand, mux, f_REG and
        shared-frame caches) and re-derive every Liapunov term from
        scratch for every candidate position — the slow reference path
        the equivalence tests compare against.
    kernel:
        Inner-loop implementation: ``"scalar"`` (the reference walk),
        ``"vector"`` (numpy bitmask frames and one broadcasted §4.1
        energy matrix per cell; needs the ``[accel]`` extra), or
        ``"auto"`` (vector when numpy is present and the DFG is large
        enough to pay for it).  Both kernels are byte-identical —
        :mod:`repro.core.kernel` documents the dispatch rules and the
        features (tracing, ``record_frames``, pipelining, ``no_cache``)
        that pin a run to the scalar walk.
    record_frames:
        Keep every :class:`FrameSet` built per node (Figure-2 harness
        only; grows O(ops × gather passes)).  Off by default.
    record_alternatives:
        Keep the full (position, energy) candidate list per move in the
        trajectory.  On by default (it backs the strongest stability
        check); sweeps may disable it to skip the list construction.
    verify:
        Audit the finished run with :mod:`repro.check` (schedule
        legality, grid-occupancy consistency, Liapunov descent, datapath
        and netlist consistency) and raise
        :class:`~repro.errors.VerificationError` on any violation.
    perf:
        Optional :class:`~repro.perf.PerfCounters` receiving candidate/
        cache counters and the ``mfsa.run`` timer.
    trace:
        Optional :class:`~repro.trace.recorder.TraceRecorder` receiving
        typed decision events — frame constructions, per-candidate
        energies with the §4.1 ``f_TIME``/``f_ALU``/``f_MUX``/``f_REG``
        breakdown, commits (with the chosen ALU cell), fresh-instance
        rescheduling steps, and the run summary including the Table-2
        cost roll-up (plus the ``perf`` counter snapshot when both are
        given).  ``None`` (the default) records nothing and costs
        nothing.
    """

    def __init__(
        self,
        dfg: DFG,
        timing: TimingModel,
        library: CellLibrary,
        cs: int,
        style: int = 1,
        weights: LiapunovWeights = LiapunovWeights(),
        latency_l: Optional[int] = None,
        pipelined_kinds: Iterable[str] = (),
        max_instances_per_cell: Optional[int] = None,
        no_cache: bool = False,
        record_frames: bool = False,
        record_alternatives: bool = True,
        count_input_registers: bool = True,
        open_policy: str = "reuse-first",
        area_budget: Optional[float] = None,
        kernel: str = "auto",
        verify: bool = False,
        perf: Optional[PerfCounters] = None,
        trace: Optional["TraceRecorder"] = None,
    ) -> None:
        if style not in (1, 2):
            raise ValueError(f"style must be 1 or 2, got {style}")
        if kernel not in _kernel.KERNELS:
            raise ValueError(
                f"kernel must be one of {_kernel.KERNELS}, got {kernel!r}"
            )
        self.kernel = kernel
        if open_policy not in ("reuse-first", "eager"):
            raise ValueError(
                f"open_policy must be 'reuse-first' or 'eager', got {open_policy!r}"
            )
        self.dfg = dfg
        self.timing = timing
        self.library = library
        self.cs = cs
        self.style = style
        self.weights = weights
        self.latency_l = latency_l
        self.pipelined_kinds = frozenset(str(k) for k in pipelined_kinds)
        self.max_instances_per_cell = max_instances_per_cell
        self.no_cache = no_cache
        self.record_frames = record_frames
        self.record_alternatives = record_alternatives
        self.verify = verify
        self.perf = perf
        self.trace = trace
        self.count_input_registers = count_input_registers
        # "reuse-first" is the paper's redundant-frame rule (open a new ALU
        # instance only when no opened one can host the operation);
        # "eager" always offers a fresh instance, letting f_TIME dominance
        # buy hardware for earlier steps — kept as an ablation knob.
        self.open_policy = open_policy
        # Optional ALU-area cap (cost-constrained synthesis in the spirit
        # of the paper's ref. [9]): opening an instance that would push
        # the summed ALU area past the budget is forbidden; if no
        # placement remains the run fails rather than overspend.  Note the
        # reuse-first policy already opens the fewest instances the greedy
        # can: the cap certifies a ceiling (and catches regressions), it
        # does not buy area reductions below the policy's natural
        # appetite — a budget under that appetite raises
        # :class:`InfeasibleScheduleError`.
        if area_budget is not None and area_budget <= 0:
            raise ValueError(f"area_budget must be positive, got {area_budget}")
        self.area_budget = area_budget

        dfg.validate(timing.ops)
        library.check_covers(dfg.kinds_used())
        self._check_pipelining()

    def _check_pipelining(self) -> None:
        if self.latency_l is None:
            return
        if self.latency_l < 1:
            raise ScheduleError(f"latency L must be >= 1, got {self.latency_l}")
        for kind in self.dfg.kinds_used():
            latency = self.timing.latency(kind)
            if latency > self.latency_l and kind not in self.pipelined_kinds:
                raise ScheduleError(
                    f"kind {kind!r} (latency {latency}) cannot run under "
                    f"functional pipelining with L={self.latency_l}"
                )

    # ------------------------------------------------------------------
    def run(self) -> MFSAResult:
        """Execute MFSA and return the full result."""
        if self.perf is None:
            return self._run()
        with self.perf.timer("mfsa.run"):
            return self._run()

    def _run(self) -> MFSAResult:
        dfg, timing = self.dfg, self.timing
        trace = self.trace
        if len(dfg) == 0:
            raise ScheduleError("MFSA needs a non-empty DFG")
        if trace is not None:
            trace.run_start("mfsa", dfg.name, self.cs, style=self.style)

        asap = asap_schedule(dfg, timing)
        alap = alap_schedule(dfg, timing, self.cs)
        order = priority_order(dfg, timing, asap, alap)

        candidates_by_kind: Dict[str, Tuple[ALUCell, ...]] = {
            kind: self.library.cells_for(kind) for kind in dfg.kinds_used()
        }
        cell_rank = {cell.name: i for i, cell in enumerate(self.library.cells())}

        counts = dfg.count_by_kind()
        columns: Dict[str, int] = {}
        pipelined_tables = []
        for cell in self.library.cells():
            compatible = sum(
                counts.get(kind, 0) for kind in cell.kinds
            )
            if compatible == 0:
                continue
            budget = (
                self.max_instances_per_cell
                if self.max_instances_per_cell is not None
                else compatible
            )
            columns[cell.name] = max(1, budget)
            if cell.kinds and cell.kinds <= self.pipelined_kinds:
                pipelined_tables.append(cell.name)

        grid = PlacementGrid(
            dfg,
            self.cs,
            columns=columns,
            latency_l=self.latency_l,
            pipelined_tables=pipelined_tables,
        )
        liapunov = MFSALiapunov(self.library, self.weights)
        state = _AllocationState(
            dfg, timing, self.library, cache=not self.no_cache, perf=self.perf
        )

        # Area-budget bookkeeping: cheapest capable cell per kind and how
        # many operations of each kind are still unplaced.  Opening an
        # instance must leave enough headroom to cover every kind that
        # would otherwise end up with no capable instance at all.
        cheapest_cell_area = {
            kind: min(cell.area for cell in candidates_by_kind[kind])
            for kind in candidates_by_kind
        }
        remaining_by_kind = dict(counts)

        def reserve_after(cell: ALUCell, for_kind: str) -> float:
            """Headroom needed for kinds not yet covered by any instance.

            A lower bound: the dearest single uncovered kind's cheapest
            cell (one multifunction cell may cover several kinds at once,
            so summing would over-reserve and reject feasible budgets).
            """
            reserve = 0.0
            for kind, left in remaining_by_kind.items():
                pending = left - (1 if kind == for_kind else 0)
                if pending <= 0:
                    continue
                if cell.can_execute(kind):
                    continue
                if any(
                    self.library.cell(cell_name).can_execute(kind)
                    for (cell_name, _x) in state.ops_on
                ):
                    continue
                reserve = max(reserve, cheapest_cell_area[kind])
            return reserve

        placed_starts: Dict[str, int] = {}
        placed_ends: Dict[str, int] = {}
        chain_offsets: Dict[str, float] = {}
        trajectory = Trajectory()
        frames_log: Dict[str, List[FrameSet]] = {}

        # Vector kernel: one bitmask frame and one broadcasted energy
        # matrix per cell instead of the per-position walk.  Byte-identical
        # to the scalar path (placements, energies, trajectories, perf
        # counters); unsupported feature combinations stay on the scalar
        # reference walk.  See repro.core.kernel.
        use_vector = (
            _kernel.resolve_kernel(self.kernel, len(dfg)) == "vector"
            and _kernel.vector_supported(
                trace=trace is not None,
                record_frames=self.record_frames,
                latency_l=self.latency_l,
                pipelined_tables=tuple(pipelined_tables),
                no_cache=self.no_cache,
            )
        )
        view = _kernel.VectorGrid(grid) if use_vector else None
        has_exclusions = use_vector and any(node.branch for node in dfg)
        np = _kernel.np
        # Lazy f_MUX: with a monotone mux-cost table the zero-mux energy
        # lower-bounds a column, so columns that cannot beat the running
        # best skip the §5.6 optimiser entirely.  The argmin (and hence
        # every result) is unchanged; only the mux/operand cache counters
        # reflect the skipped work, so pruning stays off when the caller
        # wants the full per-candidate record.
        prune_mux = (
            use_vector
            and not self.record_alternatives
            and _kernel.mux_costs_monotone(
                self.library.mux_costs, 2 * len(dfg) + 2
            )
        )

        perf = self.perf
        c_constant = liapunov.c_constant
        for name in order:
            kind = dfg.node(name).kind
            latency = timing.latency(kind)
            reg_cache: Dict[int, Tuple[float, List[Lifetime]]] = {}
            frame_cache: Dict[str, FrameSet] = {}
            mask_cache: Dict[str, Tuple] = {}
            bounds = (
                frame_bounds(
                    dfg, timing, name, grid.cs, placed_starts, chain_offsets
                )
                if use_vector
                else None
            )
            # Batched f_REG (vector path): the node's unknown input signals
            # and the death offset every candidate step implies; the actual
            # per-step counts are computed lazily, once per node, over the
            # whole primary-frame row range (shared by every cell — the row
            # bounds are table-independent).
            reg_seen: set = set()
            reg_batch: List = []
            reg_births: List[int] = []
            reg_delta = 0
            if use_vector:
                if latency > 1 and kind not in self.pipelined_kinds:
                    reg_delta = latency - 1
                seen_ports = set()
                for port in dfg.node(name).operands:
                    if not port.is_node or port.name in seen_ports:
                        continue
                    seen_ports.add(port.name)
                    if not state.registers.is_known(port.signal_name()):
                        reg_births.append(placed_ends[port.name])
            alternatives: List[Tuple[GridPosition, float]] = []
            # Traced candidates accumulate in a plain local list (cheap)
            # and land in the recorder as one batch at commit time.
            traced_cands: Optional[list] = [] if trace is not None else None

            def gather(fresh_instance: bool):
                """Collect candidate placements.

                ``fresh_instance=False`` is the paper's redundant-frame rule:
                only already opened ALU instances are eligible.  When that
                move frame is empty, MFSA "locally reschedules" by letting
                one fresh instance per cell kind join the frame
                (``fresh_instance=True``) and the f_ALU term arbitrates
                which cell to open.
                """
                best_key = None
                best_choice = None
                use_cache = not self.no_cache
                traced_append = (
                    traced_cands.append if traced_cands is not None else None
                )
                # A frame's move positions are per-(x, y) feasibility checks
                # with no cross-position coupling, so the reuse-pass frame
                # equals the fresh-pass frame filtered to x <= opened (the
                # filter the position loop below applies anyway).  On the
                # cached path compute one frame per cell and share it across
                # both gather passes; record_frames keeps the faithful
                # per-pass log for the Figure-2 harness.
                share_frames = use_cache and not self.record_frames
                for cell in candidates_by_kind[kind]:
                    # f_ALU and f_MUX depend on the instance column only,
                    # not the step: hoist them out of the y-loop (cached
                    # fast path; the naive reference re-derives per cell).
                    hw_cache: Dict[int, Tuple[float, float]] = {}
                    opened = state.opened_columns.get(cell.name, 0)
                    if share_frames:
                        if not fresh_instance and opened == 0:
                            continue
                        frame = frame_cache.get(cell.name)
                        if frame is None:
                            if perf is not None:
                                perf.incr("mfsa.frames_computed")
                            current = min(opened + 1, grid.columns(cell.name))
                            frame = compute_frames(
                                dfg,
                                timing,
                                grid,
                                name,
                                table=cell.name,
                                asap=asap,
                                alap=alap,
                                current=current,
                                placed_starts=placed_starts,
                                chain_offsets=chain_offsets,
                                excluded_instances=(
                                    state.excluded_instances(cell, name)
                                    if self.style == 2
                                    else ()
                                ),
                            )
                            frame_cache[cell.name] = frame
                            if trace is not None:
                                trace.frame(name, cell.name, frame, current)
                    else:
                        current = (
                            min(opened + 1, grid.columns(cell.name))
                            if fresh_instance
                            else opened
                        )
                        if current == 0:
                            continue
                        excluded = (
                            state.excluded_instances(cell, name)
                            if self.style == 2
                            else ()
                        )
                        if perf is not None:
                            perf.incr("mfsa.frames_computed")
                        frame = compute_frames(
                            dfg,
                            timing,
                            grid,
                            name,
                            table=cell.name,
                            asap=asap,
                            alap=alap,
                            current=current,
                            placed_starts=placed_starts,
                            chain_offsets=chain_offsets,
                            excluded_instances=excluded,
                        )
                        if trace is not None:
                            trace.frame(name, cell.name, frame, current)
                        if self.record_frames:
                            frames_log.setdefault(name, []).append(frame)
                    for position in frame.mf:
                        if not fresh_instance and position.x > opened:
                            continue
                        if (
                            self.area_budget is not None
                            and not state.instance_open(cell, position.x)
                            and state.alu_area_spent
                            + cell.area
                            + reserve_after(cell, kind)
                            > self.area_budget
                        ):
                            continue
                        if not use_cache or position.y not in reg_cache:
                            if perf is not None:
                                perf.incr("mfsa.reg_cache_misses")
                            lifetimes = state.input_lifetimes(
                                name,
                                position.y,
                                placed_ends,
                                self.pipelined_kinds,
                            )
                            reg_cache[position.y] = (
                                state.f_reg(lifetimes),
                                lifetimes,
                            )
                        elif perf is not None:
                            perf.incr("mfsa.reg_cache_hits")
                        f_reg, lifetimes = reg_cache[position.y]
                        if use_cache:
                            hw = hw_cache.get(position.x)
                            if hw is None:
                                hw = (
                                    state.f_alu(cell, position.x),
                                    state.f_mux(cell, position.x, name),
                                )
                                hw_cache[position.x] = hw
                            f_alu, f_mux = hw
                        else:
                            f_alu = state.f_alu(cell, position.x)
                            f_mux = state.f_mux(cell, position.x, name)
                        energy = liapunov.value(position.y, f_alu, f_mux, f_reg)
                        if perf is not None:
                            perf.incr("mfsa.candidates_evaluated")
                        if traced_append is not None:
                            traced_append((
                                cell.name,
                                position.x,
                                position.y,
                                energy,
                                f_alu,
                                f_mux,
                                f_reg,
                            ))
                        if self.record_alternatives:
                            alternatives.append((position, energy))
                        key = (
                            energy,
                            position.y,
                            cell_rank[cell.name],
                            position.x,
                        )
                        if best_key is None or key < best_key:
                            best_key = key
                            best_choice = (cell, position, energy, lifetimes)
                return best_choice

            def gather_vector(fresh_instance):
                """Vector-kernel :func:`gather`: same passes, masked frames.

                Frames become boolean masks (cached per cell across both
                passes, like the scalar shared frame); the reuse pass is a
                column slice ``x <= opened``; the §4.1 terms are gathered
                once per active row (f_REG) and column (f_ALU, f_MUX) —
                the same calls, in a counter-identical pattern, as the
                scalar caches make — and priced in one broadcast.
                """
                best_key = None
                best_choice = None
                _, latest_pred_end, ff_rows_after, chain_rows = bounds
                for cell in candidates_by_kind[kind]:
                    opened = state.opened_columns.get(cell.name, 0)
                    if not fresh_instance and opened == 0:
                        continue
                    entry = mask_cache.get(cell.name)
                    if entry is None:
                        if perf is not None:
                            perf.incr("mfsa.frames_computed")
                        current = min(opened + 1, grid.columns(cell.name))
                        entry = _kernel.move_frame_mask(
                            view,
                            grid,
                            name,
                            cell.name,
                            latency,
                            asap[name],
                            alap[name],
                            current,
                            latest_pred_end,
                            ff_rows_after,
                            chain_rows,
                            banned=(
                                state.excluded_instances(cell, name)
                                if self.style == 2
                                else ()
                            ),
                            has_exclusions=has_exclusions,
                        )
                        mask_cache[cell.name] = entry
                    mask, lo_y = entry
                    if mask is None:
                        continue
                    limit = (
                        mask.shape[1]
                        if fresh_instance
                        else min(opened, mask.shape[1])
                    )
                    if limit < 1:
                        continue
                    sub = mask[:, :limit]
                    if self.area_budget is not None and (
                        state.alu_area_spent
                        + cell.area
                        + reserve_after(cell, kind)
                        > self.area_budget
                    ):
                        # Opening would overspend: only already-open
                        # columns stay eligible (the scalar per-position
                        # budget filter).
                        col_ok = np.array(
                            [
                                state.instance_open(cell, j + 1)
                                for j in range(limit)
                            ]
                        )
                        sub = sub & col_ok[None, :]
                    if not sub.any():
                        continue
                    n_candidates = int(sub.sum())
                    row_idx = np.nonzero(sub.any(axis=1))[0]
                    col_idx = np.nonzero(sub.any(axis=0))[0]
                    if not reg_batch:
                        counts = _kernel.batched_reg_costs(
                            state.registers,
                            reg_births,
                            reg_delta,
                            lo_y,
                            lo_y + mask.shape[0] - 1,
                        )
                        reg_batch.append(
                            counts * self.library.register_area
                        )
                    f_reg_vec = reg_batch[0]
                    misses = 0
                    for i in row_idx:
                        y = lo_y + int(i)
                        if y not in reg_seen:
                            reg_seen.add(y)
                            misses += 1
                    if perf is not None:
                        perf.incr("mfsa.candidates_evaluated", n_candidates)
                        perf.incr("mfsa.reg_cache_misses", misses)
                        perf.incr("mfsa.reg_cache_hits", n_candidates - misses)
                    f_alu_vec = np.zeros(limit)
                    for j in col_idx:
                        f_alu_vec[j] = state.f_alu(cell, int(j) + 1)
                    ys = np.arange(lo_y, lo_y + sub.shape[0], dtype=np.int64)
                    eval_cols = col_idx
                    if prune_mux and best_key is not None:
                        # Zero-mux energies lower-bound each column; any
                        # column whose bound already exceeds the running
                        # best cannot host the argmin and skips the §5.6
                        # mux optimiser.
                        bound = liapunov.value_grid(
                            ys, f_alu_vec, np.zeros(limit), f_reg_vec
                        )
                        col_lb = np.where(sub, bound, np.inf).min(axis=0)
                        keep = col_lb[col_idx] <= best_key[0]
                        if not keep.any():
                            continue
                        if not keep.all():
                            eval_cols = col_idx[keep]
                            col_ok = np.zeros(limit, dtype=bool)
                            col_ok[eval_cols] = True
                            sub = sub & col_ok[None, :]
                    f_mux_vec = np.zeros(limit)
                    for j in eval_cols:
                        f_mux_vec[j] = state.f_mux(cell, int(j) + 1, name)
                    energy = liapunov.value_grid(
                        ys, f_alu_vec, f_mux_vec, f_reg_vec
                    )
                    if self.record_alternatives:
                        alternatives.extend(
                            zip(
                                _kernel.mask_positions(sub, cell.name, lo_y),
                                energy[sub].tolist(),
                            )
                        )
                    position, best_energy = _kernel.argmin_position(
                        sub, energy, cell.name, lo_y
                    )
                    best_energy = float(best_energy)
                    key = (
                        best_energy,
                        position.y,
                        cell_rank[cell.name],
                        position.x,
                    )
                    if best_key is None or key < best_key:
                        best_key = key
                        best_choice = (
                            cell,
                            position,
                            best_energy,
                            state.input_lifetimes(
                                name,
                                position.y,
                                placed_ends,
                                self.pipelined_kinds,
                            ),
                        )
                return best_choice

            pick = gather_vector if use_vector else gather
            if self.open_policy == "eager":
                best_choice = pick(fresh_instance=True)
            else:
                best_choice = pick(fresh_instance=False)
                if best_choice is None:
                    # §4: no opened instance can host the op — let a fresh
                    # instance per cell join the frame (f_ALU arbitrates).
                    if trace is not None:
                        trace.reschedule(name, kind, "fresh-instance", 0)
                    best_choice = pick(fresh_instance=True)
            if best_choice is None:
                raise InfeasibleScheduleError(
                    f"MFSA found no position for {name!r} ({kind}) in "
                    f"{self.cs} steps (style {self.style})"
                )
            cell, position, energy, lifetimes = best_choice
            if trace is not None:
                trace.candidates_detailed(name, traced_cands, c_constant)
                trace.commit(
                    name,
                    kind,
                    position.table,
                    position.x,
                    position.y,
                    energy,
                    latency,
                    cell=cell,  # label() resolved at materialisation
                )
            remaining_by_kind[kind] -= 1
            grid.place(name, position, latency)
            if view is not None:
                view.place(position, latency)
            placed_starts[name] = position.y
            placed_ends[name] = position.y + latency - 1
            self._update_chain_offset(name, position.y, placed_starts, chain_offsets)
            state.commit(name, cell, position.x, lifetimes)
            trajectory.record(
                node=name,
                position=position,
                energy=energy,
                alternatives=tuple(alternatives),
            )

        schedule = Schedule(
            dfg=dfg,
            timing=timing,
            cs=self.cs,
            starts=dict(placed_starts),
            latency_l=self.latency_l,
            pipelined_kinds=self.pipelined_kinds,
        )
        schedule.validate()
        trajectory.verify()

        binding = {
            name: (pos.table, pos.x) for name, pos in grid.placements().items()
        }
        datapath = Datapath(
            schedule,
            self.library,
            binding,
            count_input_registers=self.count_input_registers,
        )
        if self.style == 2 and datapath.has_self_loop():
            raise ScheduleError(
                "style-2 MFSA produced a self-loop around an ALU (internal error)"
            )
        result = MFSAResult(
            schedule=schedule,
            datapath=datapath,
            placements=grid.placements(),
            trajectory=trajectory,
            grid=grid,
            style=self.style,
            frames_log=frames_log,
        )
        if trace is not None:
            if perf is not None:
                trace.counters(dict(perf.counters))
            cost = result.cost
            trace.run_end(
                commits=len(trajectory),
                cost={
                    "alu": cost.alu,
                    "registers": cost.registers,
                    "mux": cost.mux,
                    "total": cost.total,
                },
                alus=result.alu_labels(),
            )
        if self.verify:
            from repro.check.runner import check_mfsa_result

            check_mfsa_result(result).raise_if_failed()
        return result

    def _update_chain_offset(
        self,
        name: str,
        start: int,
        placed_starts: Mapping[str, int],
        chain_offsets: Dict[str, float],
    ) -> None:
        if not self.timing.chaining:
            return
        kind = self.dfg.node(name).kind
        if self.timing.latency(kind) != 1:
            return
        incoming = 0.0
        for pred in self.dfg.predecessors(name):
            pred_kind = self.dfg.node(pred).kind
            if self.timing.latency(pred_kind) != 1:
                continue
            if placed_starts.get(pred) == start:
                incoming = max(incoming, chain_offsets.get(pred, 0.0))
        chain_offsets[name] = incoming + self.timing.delay_ns(kind)


def mfsa_synthesize(
    dfg: DFG,
    timing: TimingModel,
    library: CellLibrary,
    cs: int,
    **kwargs,
) -> MFSAResult:
    """One-call convenience wrapper around :class:`MFSAScheduler`."""
    return MFSAScheduler(dfg, timing, library, cs, **kwargs).run()
