"""The paper's contribution: Move Frame Scheduling (MFS) and Mixed
Scheduling-Allocation (MFSA).

* :mod:`repro.core.grid` — the 2-D/3-D placement tables (one per FU/ALU
  kind) with occupancy rules for multi-cycle operations, structurally
  pipelined FUs, functional-pipelining folding and mutual exclusion;
* :mod:`repro.core.frames` — the primary/redundant/forbidden/move frames;
* :mod:`repro.core.liapunov` — the static (MFS) and dynamic (MFSA)
  Liapunov functions;
* :mod:`repro.core.priorities` — mobility-based priority ordering with the
  paper's multi-cycle inversion and tie-break rules;
* :mod:`repro.core.stability` — trajectory recording and verification of
  the Liapunov monotone-decrease property;
* :mod:`repro.core.mfs` — the MFS scheduling algorithm;
* :mod:`repro.core.mfsa` — the MFSA mixed scheduling-allocation algorithm.
"""

from repro.core.grid import GridPosition, PlacementGrid
from repro.core.frames import FrameSet, compute_frames
from repro.core.liapunov import (
    MFSALiapunov,
    ResourceConstrainedLiapunov,
    StaticLiapunov,
    TimeConstrainedLiapunov,
    LiapunovWeights,
)
from repro.core.priorities import priority_order
from repro.core.stability import Trajectory, TrajectoryEvent
from repro.core.mfs import MFSResult, MFSScheduler, mfs_schedule
from repro.core.mfsa import MFSAResult, MFSAScheduler, mfsa_synthesize

__all__ = [
    "GridPosition",
    "PlacementGrid",
    "FrameSet",
    "compute_frames",
    "StaticLiapunov",
    "TimeConstrainedLiapunov",
    "ResourceConstrainedLiapunov",
    "MFSALiapunov",
    "LiapunovWeights",
    "priority_order",
    "Trajectory",
    "TrajectoryEvent",
    "MFSScheduler",
    "MFSResult",
    "mfs_schedule",
    "MFSAScheduler",
    "MFSAResult",
    "mfsa_synthesize",
]
