"""Lightweight performance counters and phase timers.

The schedulers are the inner loop of every sweep, table regeneration and
exploration run, so their instrumentation must cost almost nothing when
enabled and exactly nothing when absent.  :class:`PerfCounters` is a thin
wrapper over two dicts — integer event counters and float second
accumulators — threaded through :class:`~repro.core.mfs.MFSScheduler` and
:class:`~repro.core.mfsa.MFSAScheduler` as an optional parameter (``None``
means "don't measure"; hot paths guard with a single ``is not None``).

Canonical counter names (grep targets for the BENCH trajectory harness):

==============================  ==========================================
``mfs.frames_computed``         move-frame rebuilds (incl. rescheduling)
``mfs.positions_evaluated``     Liapunov evaluations over move frames
``mfs.local_reschedules``       §3.2 Step-4 FU openings
``mfsa.frames_computed``        per-cell frame builds inside ``gather``
``mfsa.candidates_evaluated``   (cell, x, y) candidates energy-scored
``mfsa.mux_cache_hits/misses``  memoized vs fresh ``optimize_mux_inputs``
``mfsa.operand_cache_hits/..``  memoized vs fresh ``MuxOperand`` builds
``mfsa.reg_cache_hits/misses``  memoized vs fresh f_REG/lifetime evals
``sweep.tasks``                 items fanned out by a sweep executor
``sweep.pool_failures``         process pools that started (or tried to
                                start) and failed over to serial
``sweep.serial_fallbacks``      every degradation to the serial loop,
                                including payloads that never reached a
                                pool
``sweep.fallback.<reason>``     fallback attribution: one of
                                ``payload-unpicklable``, ``pool-start``,
                                ``worker-crash``, ``result-unpicklable``
==============================  ==========================================

Timers use ``time.perf_counter`` and accumulate, so one counter object can
aggregate a whole sweep (see :meth:`merge`, which parallel backends use to
fold worker-side snapshots back into the caller's object).

When a scheduler is given both a counter object and a
:class:`~repro.trace.recorder.TraceRecorder`, the final counter snapshot
is embedded into the trace as a ``perf.counters`` event, attributing the
cache hits/misses above to that specific run in the exported JSONL (see
``docs/TRACING.md``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional


class PerfCounters:
    """Named integer counters plus named wall-time accumulators."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}

    # -- counters --------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never touched)."""
        return self.counters.get(name, 0)

    # -- timers ----------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the ``with`` body into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timers[name] = (
                self.timers.get(name, 0.0) + time.perf_counter() - start
            )

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate an externally measured duration."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    # -- derived ---------------------------------------------------------
    def hit_rate(self, prefix: str) -> Optional[float]:
        """Hit rate of a ``<prefix>_hits`` / ``<prefix>_misses`` pair.

        ``None`` when the cache was never consulted.
        """
        hits = self.counters.get(f"{prefix}_hits", 0)
        misses = self.counters.get(f"{prefix}_misses", 0)
        total = hits + misses
        return hits / total if total else None

    # -- aggregation -----------------------------------------------------
    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict snapshot (picklable; crosses process boundaries)."""
        return {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
        }

    def merge(self, snapshot: Mapping[str, Mapping[str, float]]) -> None:
        """Fold an :meth:`as_dict` snapshot (e.g. from a worker) into self."""
        for name, value in snapshot.get("counters", {}).items():
            self.incr(name, int(value))
        for name, value in snapshot.get("timers", {}).items():
            self.add_time(name, float(value))

    def merge_counters(self, other: "PerfCounters") -> None:
        """Fold another :class:`PerfCounters` into self."""
        self.merge(other.as_dict())

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        """Human-readable multi-line summary (the CLI ``--perf`` output)."""
        lines = ["perf counters:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<32} {self.counters[name]}")
        for prefix in ("mfsa.mux_cache", "mfsa.operand_cache", "mfsa.reg_cache"):
            rate = self.hit_rate(prefix)
            if rate is not None:
                lines.append(f"  {prefix + '_hit_rate':<32} {rate:.1%}")
        if self.timers:
            lines.append("perf timers:")
            for name in sorted(self.timers):
                lines.append(f"  {name:<32} {self.timers[name] * 1e3:.2f} ms")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfCounters(counters={self.counters}, timers={self.timers})"
