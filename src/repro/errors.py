"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class DFGError(ReproError):
    """A data-flow graph is malformed or an operation on it is invalid."""


class CycleError(DFGError):
    """The data-flow graph contains a dependency cycle."""


class UnknownOperationError(DFGError):
    """An operation kind is not registered in the operation set in use."""


class ParseError(DFGError):
    """The behavioral-language parser rejected its input."""


class ScheduleError(ReproError):
    """A schedule is invalid or could not be constructed."""


class InfeasibleScheduleError(ScheduleError):
    """No schedule exists under the given time/resource constraints."""


class LibraryError(ReproError):
    """A cell library is inconsistent or lacks a required cell."""


class AllocationError(ReproError):
    """Datapath allocation (FU/register/mux binding) failed."""


class StabilityError(ReproError):
    """A Liapunov monotonicity invariant was violated during a run."""


class VerificationError(ReproError):
    """A :mod:`repro.check` audit found invariant violations.

    Carries the offending :class:`repro.check.CheckReport` as
    ``report`` when raised by :meth:`CheckReport.raise_if_failed`.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class TraceError(ReproError):
    """A trace stream is malformed, schema-incompatible or fails replay."""


class SimulationError(ReproError):
    """Cycle-accurate simulation of a datapath failed or diverged."""


class RTLError(ReproError):
    """RTL netlist construction or emission failed."""
