"""Command-line interface.

Invoke as ``python -m repro`` (or the ``repro-hls`` console script):

* ``repro-hls table1`` / ``table2`` — regenerate the paper's tables;
* ``repro-hls figure1`` / ``figure2`` — regenerate the figures;
* ``repro-hls baselines`` — the §6 scheduler-quality comparison;
* ``repro-hls schedule design.beh --cs 6`` — run MFS on a behavioral file;
* ``repro-hls synth design.beh --cs 6 --verilog out.v`` — run MFSA and
  emit the RTL structure;
* ``repro-hls trace design.beh`` — run MFS/MFSA with the
  :mod:`repro.trace` recorder attached, write the JSONL event stream and
  a markdown run report, and exit 1 if the replayed Liapunov descent
  fails the :mod:`repro.check` audit;
* ``repro-hls check`` — audit the paper examples (and optionally random
  DFGs) against the :mod:`repro.check` invariants; exit 1 on violation;
* ``repro-hls serve`` — run the batching, cache-fronted synthesis
  service (:mod:`repro.serve`); SIGTERM drains gracefully;
* ``repro-hls submit design.beh --cs 6`` — submit a job to a running
  service and print the result.

Every subcommand's ``--help`` cites the paper section it reproduces
(``tests/test_cli_help.py`` keeps the citations and wording pinned).

Behavioral files use the :mod:`repro.dfg.parser` language.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional

from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.ops import standard_operation_set
from repro.dfg.parser import parse_behavior
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.library.ncr import datapath_library
from repro.io.text import render_datapath, render_schedule
from repro.perf import PerfCounters


def _load_dfg(path: str):
    with open(path) as handle:
        return parse_behavior(handle.read(), name=path)


def _timing(args) -> TimingModel:
    ops = standard_operation_set(mul_latency=args.mul_latency)
    return TimingModel(ops=ops, clock_period_ns=args.clock_ns)


def _resolve_design(args):
    """The (dfg, timing) a schedule/synth invocation operates on.

    Exactly one of the positional FILE or ``--generate SPEC`` must be
    given.  A generated design takes its timing knobs (multiplier
    latency, chaining clock) from the spec; explicit ``--mul-latency``
    / ``--clock-ns`` flags override them.
    """
    if (args.file is None) == (not args.generate):
        raise SystemExit(
            "pass exactly one of FILE or --generate '<spec>'"
        )
    if not args.generate:
        return _load_dfg(args.file), _timing(args)
    from repro.scenarios.generator import (
        generate_dfg,
        parse_generator_spec,
        with_seeded_name,
    )

    spec = parse_generator_spec(args.generate)
    dfg = generate_dfg(spec, args.seed, name=with_seeded_name(spec, args.seed))
    mul_latency = (
        args.mul_latency if args.mul_latency != 1 else spec.mul_latency
    )
    clock_ns = args.clock_ns if args.clock_ns is not None else spec.clock_ns
    timing = TimingModel(
        ops=standard_operation_set(mul_latency=mul_latency),
        clock_period_ns=clock_ns,
    )
    return dfg, timing


def _make_perf(args) -> Optional[PerfCounters]:
    return PerfCounters() if getattr(args, "perf", False) else None


def _print_perf(perf: Optional[PerfCounters]) -> None:
    """Emit counters to stderr so machine-readable stdout stays clean."""
    if perf is not None:
        print(perf.render(), file=sys.stderr)


def _add_perf_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--perf",
        action="store_true",
        help="print performance counters (candidates evaluated, cache hit "
        "rates, phase timings) to stderr",
    )


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="fan the sweep out over a process pool (serial fallback on "
        "single-core machines)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool worker count (default: CPU count)",
    )


def _backend(args) -> str:
    return "auto" if getattr(args, "parallel", False) else "serial"


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        choices=["auto", "scalar", "vector"],
        default="auto",
        help="inner-loop kernel: 'vector' needs numpy (install the "
        "[accel] extra), 'scalar' is the pure-python reference, 'auto' "
        "picks vector for large designs when numpy is present; results "
        "are byte-identical either way",
    )


def _add_verify_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--verify",
        action="store_true",
        help="audit the result with repro.check before emitting anything "
        "(raises on any invariant violation)",
    )


def _add_generate_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--generate",
        metavar="SPEC",
        default=None,
        help="generate the design from a seeded scenario spec instead of "
        "a file, e.g. 'random:ops=24:mix=mul*3+add:cond=2' (see "
        "docs/SCENARIOS.md); reproduces any scenario DFG standalone",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="generator seed for --generate (default 0)",
    )


def _add_timing_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mul-latency",
        type=int,
        default=1,
        help="multiplier latency in control steps (default 1)",
    )
    parser.add_argument(
        "--clock-ns",
        type=float,
        default=None,
        help="clock period in ns; enables operation chaining",
    )


def _command_table1(args) -> int:
    from repro.bench.table1 import render_table1, table1_rows

    keys = [args.example] if args.example else None
    print(render_table1(table1_rows(keys=keys, checkpoint=args.checkpoint)))
    return 0


def _command_table2(args) -> int:
    from repro.bench.table2 import render_table2, table2_rows

    keys = [args.example] if args.example else None
    print(render_table2(table2_rows(keys=keys, checkpoint=args.checkpoint)))
    return 0


def _command_figure(args, which: int) -> int:
    from repro.bench.figures import figure1, figure2

    renderer = figure1 if which == 1 else figure2
    print(renderer(args.example or "ex3"))
    return 0


def _command_baselines(_args) -> int:
    from repro.bench.baselines import compare_methods, render_baselines

    print(render_baselines(compare_methods()))
    return 0


def _command_schedule(args) -> int:
    dfg, timing = _resolve_design(args)
    cs = args.cs or critical_path_length(dfg, timing)
    perf = _make_perf(args)
    scheduler = MFSScheduler(
        dfg,
        timing,
        cs=cs,
        mode="time",
        latency_l=args.latency_l,
        pipelined_kinds=tuple(args.pipelined.split(",")) if args.pipelined else (),
        verify=args.verify,
        perf=perf,
        kernel=args.kernel,
    )
    result = scheduler.run()
    _print_perf(perf)
    if args.json:
        from repro.io.jsonio import schedule_to_json

        print(schedule_to_json(result.schedule))
    elif args.dot:
        from repro.io.dot import schedule_to_dot

        print(schedule_to_dot(result.schedule))
    else:
        print(render_schedule(result.schedule))
    if args.svg:
        from repro.io.svg import schedule_to_svg

        binding = {
            name: (pos.table, pos.x)
            for name, pos in result.placements.items()
        }
        with open(args.svg, "w") as handle:
            handle.write(schedule_to_svg(result.schedule, binding=binding))
        print(f"wrote {args.svg}", file=sys.stderr)
    return 0


def _command_explore(args) -> int:
    from repro.explore import design_space, knee_point, pareto_front, render_design_space
    from repro.library.ncr import datapath_library

    dfg = _load_dfg(args.file)
    timing = _timing(args)
    budgets = (
        [int(v) for v in args.budgets.split(",")] if args.budgets else None
    )
    perf = _make_perf(args)
    trace = None
    if args.trace:
        from repro.trace import TraceRecorder

        trace = TraceRecorder()
    points = design_space(
        dfg,
        timing,
        datapath_library(),
        budgets=budgets,
        style=args.style,
        backend=_backend(args),
        workers=args.workers,
        perf=perf,
        trace=trace,
        checkpoint=args.checkpoint,
    )
    print(render_design_space(points))
    if trace is not None:
        trace.write_jsonl(args.trace)
        print(f"wrote {args.trace}", file=sys.stderr)
    _print_perf(perf)
    knee = knee_point(pareto_front(points))
    if knee is not None:
        print(f"knee: T={knee.cs}, area {knee.total_area:.0f} um^2")
    return 0


def _command_synth(args) -> int:
    dfg, timing = _resolve_design(args)
    cs = args.cs or critical_path_length(dfg, timing)
    perf = _make_perf(args)
    scheduler = MFSAScheduler(
        dfg,
        timing,
        datapath_library(),
        cs=cs,
        style=args.style,
        verify=args.verify,
        perf=perf,
        kernel=args.kernel,
    )
    result = scheduler.run()
    _print_perf(perf)
    if args.json:
        from repro.io.jsonio import synthesis_to_json

        print(synthesis_to_json(result))
    else:
        print(render_datapath(result.datapath))
    if args.verilog:
        if args.structural:
            from repro.rtl.structural import emit_structural_verilog as emitter
        else:
            from repro.rtl.verilog import emit_verilog as emitter

        with open(args.verilog, "w") as handle:
            handle.write(emitter(result.datapath, module_name=args.module))
        print(f"wrote {args.verilog}", file=sys.stderr)
    if args.testbench:
        from repro.rtl.testbench import emit_testbench

        vectors = [_parse_inputs(args.inputs, dfg.inputs)]
        with open(args.testbench, "w") as handle:
            handle.write(
                emit_testbench(
                    result.datapath, vectors, module_name=args.module
                )
            )
        print(f"wrote {args.testbench}", file=sys.stderr)
    if args.vcd:
        from repro.sim.executor import execute_datapath
        from repro.sim.vcd import write_vcd

        inputs = _parse_inputs(args.inputs, dfg.inputs)
        trace = execute_datapath(result.datapath, inputs)
        write_vcd(args.vcd, result.datapath, trace)
        print(f"wrote {args.vcd}", file=sys.stderr)
    return 0


def _command_check(args) -> int:
    from repro.check import check_all_examples, check_random_dfgs

    differential = not args.no_differential
    reports = check_all_examples(
        keys=[args.example] if args.example else None,
        differential=differential,
    )
    if args.random:
        reports.append(
            check_random_dfgs(
                count=args.random,
                seed=args.seed,
                differential=differential,
            )
        )
    if args.kernels:
        from repro.check import check_kernels_all_examples, check_kernels_random
        from repro.check.kernels import vector_available

        if not vector_available():
            print(
                "warning: numpy not installed, skipping --kernels "
                "cross-validation (pip install repro[accel])",
                file=sys.stderr,
            )
        else:
            reports.append(
                check_kernels_all_examples(
                    keys=[args.example] if args.example else None
                )
            )
            if args.random:
                reports.append(
                    check_kernels_random(count=args.random, seed=args.seed)
                )
    failed = False
    for report in reports:
        print(report.render())
        failed = failed or not report.ok
    return 1 if failed else 0


def _command_trace(args) -> int:
    import os

    from repro.trace import trace_run

    stem = os.path.splitext(os.path.basename(args.file))[0]
    with open(args.file) as handle:
        dfg = parse_behavior(handle.read(), name=stem)
    timing = _timing(args)
    run = trace_run(
        dfg,
        timing,
        scheduler=args.scheduler,
        cs=args.cs,
        style=args.style,
        latency_l=args.latency_l,
        pipelined_kinds=tuple(args.pipelined.split(",")) if args.pipelined else (),
    )
    jsonl_path = args.jsonl or f"{stem}.trace.jsonl"
    report_path = args.report or f"{stem}.report.md"
    with open(jsonl_path, "w") as handle:
        handle.write(run.jsonl)
    with open(report_path, "w") as handle:
        handle.write(run.report)
    print(f"wrote {jsonl_path}", file=sys.stderr)
    print(f"wrote {report_path}", file=sys.stderr)
    events = run.jsonl.count("\n")
    commits = len(run.result.trajectory)
    verdict = "OK" if run.ok else f"{len(run.violations)} violation(s)"
    print(
        f"{args.scheduler} on {dfg.name}: {events} events, "
        f"{commits} commits, replayed descent {verdict}"
    )
    if not run.ok:
        for violation in run.violations:
            print(f"  {violation.code} {violation.subject}: "
                  f"{violation.message}", file=sys.stderr)
        return 1
    return 0


def _command_serve(args) -> int:
    from repro.serve import ServeApp, ServeConfig

    if args.shards is not None:
        return _command_serve_sharded(args)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        max_batch=args.max_batch,
        batch_wait_ms=args.batch_wait_ms,
        adaptive_batching=args.adaptive_batching,
        target_batch_seconds=args.target_batch_seconds,
        workers=args.workers,
        backend="serial" if args.serial else "auto",
        cache_entries=args.cache_entries,
        default_timeout_s=args.timeout,
        state_dir=args.state_dir,
        port_file=args.port_file,
        faults=args.faults,
        fault_seed=args.fault_seed,
    )
    return ServeApp(config).serve_forever()


def _command_serve_sharded(args) -> int:
    from repro.serve import RouterConfig, ShardRouter

    # Tuning knobs are forwarded verbatim to every worker shard; the
    # router itself only needs the fleet-level settings.
    shard_args = [
        "--queue-size", str(args.queue_size),
        "--max-batch", str(args.max_batch),
        "--batch-wait-ms", str(args.batch_wait_ms),
        "--cache-entries", str(args.cache_entries),
        "--timeout", str(args.timeout),
    ]
    if args.adaptive_batching:
        shard_args += [
            "--adaptive-batching",
            "--target-batch-seconds", str(args.target_batch_seconds),
        ]
    if args.workers is not None:
        shard_args += ["--workers", str(args.workers)]
    if args.serial:
        shard_args.append("--serial")
    if args.faults:
        shard_args += ["--faults", args.faults,
                       "--fault-seed", str(args.fault_seed)]
    config = RouterConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        replication=args.replication,
        state_dir=args.state_dir,
        cache_entries=args.cache_entries,
        forward_timeout_s=args.timeout + 60.0,
        shard_args=tuple(shard_args),
        port_file=args.port_file,
        # One --faults spelling arms both tiers: router-side rules
        # (router.forward) fire here, shard-side rules in each shard.
        faults=args.faults,
        fault_seed=args.fault_seed,
    )
    return ShardRouter(config).serve_forever()


def _command_serve_admin(args) -> int:
    import json

    from repro.serve.client import Client, ServiceError

    client = Client(args.url, timeout=args.timeout, retries=0)
    try:
        if args.action == "status":
            payload = client.admin_status()
        elif args.action == "add":
            payload = client.admin_add_shard()
        else:
            if not args.shard:
                print("serve-admin remove requires --shard", file=sys.stderr)
                return 2
            payload = client.admin_remove_shard(args.shard)
    except ServiceError as error:
        print(f"serve-admin {args.action} failed: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"cannot reach {args.url}: {error}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _command_submit(args) -> int:
    import json

    from repro.serve.client import Client, ServiceError

    if (args.file is None) == (args.example is None):
        print(
            "submit: pass exactly one of FILE or --example",
            file=sys.stderr,
        )
        return 2
    params: Dict[str, object] = {
        "mul_latency": args.mul_latency,
        "seed": args.seed,
    }
    if args.example is not None:
        from repro.bench.suites import EXAMPLES
        from repro.io.jsonio import dfg_to_json

        spec = EXAMPLES[args.example]
        design = {"dfg": json.loads(dfg_to_json(spec.build()))}
        params["cs"] = args.cs or spec.mfsa_cs
        if args.mul_latency == 1:
            params["mul_latency"] = spec.mfsa_mul_latency
        params["clock_ns"] = (
            args.clock_ns if args.clock_ns is not None else spec.mfsa_clock_ns
        )
    else:
        with open(args.file) as handle:
            design = {"source": handle.read(), "name": args.file}
        if args.cs:
            params["cs"] = args.cs
        params["clock_ns"] = args.clock_ns
    if args.latency_l:
        params["latency_l"] = args.latency_l
    if args.pipelined:
        params["pipelined"] = args.pipelined.split(",")
    if args.algorithm == "mfsa":
        params["style"] = args.style
    params = {key: value for key, value in params.items() if value is not None}

    client = Client(args.url, timeout=args.timeout + 30.0, retries=args.retries)
    submit = client.schedule if args.algorithm == "mfs" else client.synth
    try:
        out = submit(
            wait=True,
            verify=args.verify,
            trace=args.trace,
            timeout=args.timeout,
            **design,
            **params,
        )
    except ServiceError as error:
        print(f"submit: {error}", file=sys.stderr)
        return 1
    job = out["job"]
    print(
        f"{job['id']}: {job['status']} ({job['cache']}, "
        f"{job.get('total_seconds', 0.0):.3f}s)",
        file=sys.stderr,
    )
    if args.raw:
        print(client.result_text(job["id"]), end="")
    else:
        print(json.dumps(out["result"], sort_keys=True, indent=2))
    return 0 if out["result"].get("ok") else 1


def _command_scenarios_run(args) -> int:
    import os

    from repro.scenarios import (
        failing_results,
        load_config,
        render_grid,
        run_matrix,
        save_reproducer,
        shrink_scenario,
        write_grid,
    )

    config = load_config(args.config)
    perf = _make_perf(args)
    for artifact in (args.grid, args.checkpoint):
        if artifact and os.path.dirname(artifact):
            os.makedirs(os.path.dirname(artifact), exist_ok=True)
    run = run_matrix(
        config,
        backend=_backend(args),
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        perf=perf,
    )
    print(render_grid(run))
    _print_perf(perf)
    if args.grid:
        write_grid(run, args.grid)
        print(f"wrote {args.grid}", file=sys.stderr)

    failures = failing_results(run)
    shrunk_ok = True
    if failures and args.corpus_dir:
        os.makedirs(args.corpus_dir, exist_ok=True)
        for scenario, _result in failures:
            try:
                reduced = shrink_scenario(scenario)
            except Exception as error:
                print(
                    f"shrink failed for {scenario['id']}: {error}",
                    file=sys.stderr,
                )
                shrunk_ok = False
                continue
            path = os.path.join(
                args.corpus_dir, f"reproducer-{scenario['id']}.json"
            )
            save_reproducer(reduced, path)
            print(
                f"shrunk {scenario['id']}: {reduced.original_ops} -> "
                f"{reduced.n_ops} ops, wrote {path}",
                file=sys.stderr,
            )
    if args.expect_fail:
        # CI defect runs: the matrix must fail AND every failure must
        # have shrunk to a corpus reproducer.
        return 0 if failures and shrunk_ok else 1
    return 1 if failures else 0


def _command_scenarios_replay(args) -> int:
    import json as json_module

    from repro.scenarios import parse_arrival_spec, run_replay

    pattern = parse_arrival_spec(args.arrivals)
    report = run_replay(
        pattern,
        seed=args.seed,
        generator=args.generate,
        algorithm=args.algorithm,
        shards=args.shards or 0,
        faults=args.faults,
        fault_seed=args.fault_seed,
        time_scale=args.time_scale,
        open_loop=args.open_loop,
        max_in_flight=args.max_in_flight,
    )
    print(report.render())
    if args.report:
        import os

        if os.path.dirname(args.report):
            os.makedirs(os.path.dirname(args.report), exist_ok=True)
        payload = dict(
            report.deterministic_payload(),
            latency_ms=report.latency_summary_ms(),
            wall_seconds=report.wall_seconds,
        )
        with open(args.report, "w") as handle:
            json_module.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.report}", file=sys.stderr)
    return 1 if report.errors else 0


def _command_scenarios_shrink(args) -> int:
    import json as json_module
    import os

    from repro.scenarios import save_reproducer, shrink_scenario

    with open(args.grid) as handle:
        payload = json_module.load(handle)
    if payload.get("format") != "repro-scenario-grid":
        print(f"{args.grid} is not a scenario grid", file=sys.stderr)
        return 2
    failing = [
        scenario
        for scenario, result in zip(
            payload["scenarios"], payload["results"]
        )
        if not result["ok"] and (not args.id or scenario["id"] == args.id)
    ]
    if not failing:
        print("nothing to shrink: no matching failures", file=sys.stderr)
        return 0
    os.makedirs(args.out_dir, exist_ok=True)
    status = 0
    for scenario in failing:
        try:
            reduced = shrink_scenario(scenario)
        except Exception as error:
            print(
                f"shrink failed for {scenario['id']}: {error}",
                file=sys.stderr,
            )
            status = 1
            continue
        path = os.path.join(
            args.out_dir, f"reproducer-{scenario['id']}.json"
        )
        save_reproducer(reduced, path)
        print(
            f"{scenario['id']}: {reduced.original_ops} -> {reduced.n_ops} "
            f"ops ({reduced.rounds} rounds), wrote {path}"
        )
    return status


def _command_scenarios(args) -> int:
    if args.scenarios_command == "run":
        return _command_scenarios_run(args)
    if args.scenarios_command == "replay":
        return _command_scenarios_replay(args)
    return _command_scenarios_shrink(args)


def _parse_inputs(spec: Optional[str], names) -> Dict[str, int]:
    values = {name: 0 for name in names}
    if spec:
        for pair in spec.split(","):
            name, _eq, value = pair.partition("=")
            values[name.strip()] = int(value)
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hls",
        description="Move Frame Scheduling / MFSA high-level synthesis "
        "(reproduction of Nourani & Papachristou, DAC 1992)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, helptext in (
        ("table1", "regenerate the paper's Table 1 — MFS results (§6)"),
        ("table2", "regenerate the paper's Table 2 — MFSA results (§6)"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--example", choices=[f"ex{i}" for i in range(1, 7)])
        p.add_argument(
            "--checkpoint",
            help="resume file: completed rows are durably recorded and an "
            "interrupted regeneration picks up where it stopped",
        )

    for which, detail in (
        (1, "a move frame and its Liapunov argmin (§2.2)"),
        (2, "the PF/RF/FF frames of one operation (§3.2)"),
    ):
        p = sub.add_parser(
            f"figure{which}",
            help=f"regenerate the paper's Figure {which} — {detail}",
        )
        p.add_argument("--example", choices=[f"ex{i}" for i in range(1, 7)])

    sub.add_parser("baselines", help="scheduler quality comparison (§6)")

    p = sub.add_parser(
        "report",
        help="regenerate every paper artifact into one document (§6)",
    )
    p.add_argument("--out", help="write Markdown here (default: stdout)")
    p.add_argument(
        "--no-runtimes",
        action="store_true",
        help="skip the (slow) runtime measurements",
    )
    _add_sweep_arguments(p)
    _add_perf_argument(p)

    p = sub.add_parser(
        "schedule",
        help="run move frame scheduling (MFS, §3) on a behavioral file "
        "or a generated scenario design",
    )
    p.add_argument("file", nargs="?",
                   help="behavioral design file (or use --generate)")
    _add_generate_arguments(p)
    p.add_argument("--cs", type=int, help="time constraint (default: critical path)")
    p.add_argument("--latency-l", type=int, default=None,
                   help="functional-pipelining initiation interval")
    p.add_argument("--pipelined", default="",
                   help="comma-separated structurally pipelined kinds")
    p.add_argument("--json", action="store_true", help="JSON output")
    p.add_argument("--dot", action="store_true", help="Graphviz output")
    p.add_argument("--svg", help="write a Gantt chart SVG to this path")
    _add_kernel_argument(p)
    _add_verify_argument(p)
    _add_timing_arguments(p)
    _add_perf_argument(p)

    p = sub.add_parser(
        "explore",
        help="latency/area design-space sweep over MFSA runs (§4, §6)",
    )
    p.add_argument("file")
    p.add_argument(
        "--budgets", help="comma-separated time budgets (default: auto ladder)"
    )
    p.add_argument("--style", type=int, choices=[1, 2], default=1)
    p.add_argument(
        "--trace",
        help="write the merged per-budget decision trace (JSONL) here",
    )
    p.add_argument(
        "--checkpoint",
        help="resume file: completed budgets are durably recorded and an "
        "interrupted sweep picks up where it stopped",
    )
    _add_timing_arguments(p)
    _add_sweep_arguments(p)
    _add_perf_argument(p)

    p = sub.add_parser(
        "check",
        help="audit schedule/Liapunov/allocation invariants on the paper "
        "examples (§2.2, §3.2)",
    )
    p.add_argument(
        "--example",
        choices=[f"ex{i}" for i in range(1, 7)],
        help="audit just one example (default: all six)",
    )
    p.add_argument(
        "--random",
        type=int,
        default=0,
        metavar="N",
        help="additionally audit N randomly generated DFGs",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="seed for --random workloads"
    )
    p.add_argument(
        "--kernels",
        action="store_true",
        help="additionally cross-validate the scalar and vector scheduling "
        "kernels byte-for-byte (needs numpy; see repro.core.kernel)",
    )
    p.add_argument(
        "--no-differential",
        action="store_true",
        help="skip the cross-validation against baseline schedulers",
    )

    p = sub.add_parser(
        "synth",
        help="run mixed scheduling-allocation (MFSA, §4) on a behavioral "
        "file or a generated scenario design",
    )
    p.add_argument("file", nargs="?",
                   help="behavioral design file (or use --generate)")
    _add_generate_arguments(p)
    p.add_argument("--cs", type=int)
    p.add_argument("--style", type=int, choices=[1, 2], default=1)
    p.add_argument("--verilog", help="write Verilog to this path")
    p.add_argument(
        "--structural",
        action="store_true",
        help="emit the fully structural design (shared ALUs, real muxes)",
    )
    p.add_argument(
        "--testbench",
        help="write a self-checking testbench (uses --inputs as the vector)",
    )
    p.add_argument("--module", default="datapath", help="Verilog module name")
    p.add_argument("--vcd", help="simulate and write a VCD waveform")
    p.add_argument("--inputs", help="simulation inputs, e.g. a=3,b=5")
    p.add_argument("--json", action="store_true")
    _add_kernel_argument(p)
    _add_verify_argument(p)
    _add_timing_arguments(p)
    _add_perf_argument(p)

    p = sub.add_parser(
        "serve",
        help="run the synthesis service: JSON-over-HTTP MFS (§3) / MFSA "
        "(§4) with a content-addressed result cache, bounded queue "
        "(429 on overload) and micro-batched dispatch; SIGTERM drains",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8421,
                   help="bind port (0 picks an ephemeral port)")
    p.add_argument("--shards", type=int, default=None,
                   help="spawn N worker-shard subprocesses behind a "
                   "consistent-hash router (default: single process)")
    p.add_argument("--replication", type=int, default=2,
                   help="with --shards: cache copies per result (owner + "
                   "ring successors; 1 disables replication; default 2)")
    p.add_argument("--port-file", default=None,
                   help="write the bound port to this file once up "
                   "(how the shard router finds its workers)")
    p.add_argument("--queue-size", type=int, default=64,
                   help="bounded queue capacity before 429s (default 64)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="jobs coalesced per dispatch batch (default 8)")
    p.add_argument("--batch-wait-ms", type=float, default=10.0,
                   help="micro-batch coalescing window (default 10 ms)")
    p.add_argument("--adaptive-batching", action="store_true",
                   help="size batches from the measured per-job cost EWMA "
                        "(small jobs coalesce, big jobs dispatch at once)")
    p.add_argument("--target-batch-seconds", type=float, default=0.25,
                   help="wall-time budget one adaptive batch aims to fill "
                        "(default 0.25 s)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool worker count (default: CPU count)")
    p.add_argument("--serial", action="store_true",
                   help="execute batches in-process (no pool)")
    p.add_argument("--cache-entries", type=int, default=1024,
                   help="result-cache capacity, LRU beyond (default 1024)")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="default per-job timeout in seconds (default 60)")
    p.add_argument("--state-dir", default=None,
                   help="directory for the write-ahead job journal; a "
                   "restarted server replays unfinished jobs from it "
                   "(with --shards, each shard journals under shard-<i>/)")
    p.add_argument("--faults", default=None,
                   help="fault-injection plan, e.g. "
                   "'serve.cache.put:n=2,sweep.submit:p=0.25:times=3' "
                   "(chaos testing)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for probabilistic fault triggers")

    p = sub.add_parser(
        "serve-admin",
        help="administer a running sharded MFS (§3) / MFSA (§4) fleet: "
        "show ring membership, or grow/drain a worker shard online with "
        "a warm cache handoff (zero-downtime reshard)",
    )
    p.add_argument(
        "action",
        choices=["status", "add", "remove"],
        help="status = ring + per-shard state, add = boot one shard and "
        "hand its keys off warm, remove = drain a shard out of the fleet",
    )
    p.add_argument("--url", default="http://127.0.0.1:8421",
                   help="router base URL")
    p.add_argument("--shard", default=None,
                   help="shard name to remove (required for 'remove')")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="admin request timeout in seconds — covers shard "
                   "boot plus the cache handoff (default 120)")

    p = sub.add_parser(
        "submit",
        help="submit one MFS (§3) / MFSA (§4) job to a running service "
        "and print the result",
    )
    p.add_argument("file", nargs="?", help="behavioral design file")
    p.add_argument(
        "--example",
        choices=[f"ex{i}" for i in range(1, 7)],
        help="submit one of the paper's examples instead of a file",
    )
    p.add_argument("--url", default="http://127.0.0.1:8421",
                   help="service base URL")
    p.add_argument(
        "--algorithm",
        choices=["mfs", "mfsa"],
        default="mfsa",
        help="mfs = scheduling only, mfsa = scheduling-allocation "
        "(default mfsa)",
    )
    p.add_argument("--cs", type=int, help="time constraint (default: critical path)")
    p.add_argument("--style", type=int, choices=[1, 2], default=1)
    p.add_argument("--latency-l", type=int, default=None,
                   help="functional-pipelining initiation interval")
    p.add_argument("--pipelined", default="",
                   help="comma-separated structurally pipelined kinds")
    p.add_argument("--seed", type=int, default=0,
                   help="cache-partition seed (results are deterministic)")
    p.add_argument("--verify", action="store_true",
                   help="audit the result with repro.check on the server")
    p.add_argument("--trace", action="store_true",
                   help="attach the repro.trace JSONL artifact to the result")
    p.add_argument("--raw", action="store_true",
                   help="print the raw canonical result bytes")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="per-job timeout in seconds (default 60)")
    p.add_argument("--retries", type=int, default=3,
                   help="transport retries with exponential backoff when "
                   "the service is restarting or sheds load (default 3)")
    _add_timing_arguments(p)

    p = sub.add_parser(
        "scenarios",
        help="seeded scenario engine over the §3/§4 schedulers: expand a "
        "generator × scheduler matrix, replay seeded traffic against a "
        "live service under fault injection, and shrink failures to "
        "minimal DFG reproducers",
    )
    scsub = p.add_subparsers(dest="scenarios_command", required=True)

    sp = scsub.add_parser(
        "run",
        help="expand a matrix config and run every scenario through the "
        "checkpointed sweep, auditing each result",
    )
    sp.add_argument("config",
                    help="matrix config file (.json anywhere, .toml on "
                    "Python 3.11+)")
    sp.add_argument("--grid", help="write the pass/fail grid JSON here")
    sp.add_argument(
        "--checkpoint",
        help="resume file: completed scenarios are durably recorded and "
        "an interrupted matrix picks up where it stopped",
    )
    sp.add_argument(
        "--corpus-dir",
        help="shrink every failing scenario into this directory of "
        "minimal DFG reproducers",
    )
    sp.add_argument(
        "--expect-fail",
        action="store_true",
        help="CI defect mode: exit 0 only if the matrix HAS failures and "
        "all of them shrank to corpus reproducers",
    )
    _add_sweep_arguments(sp)
    _add_perf_argument(sp)

    sp = scsub.add_parser(
        "replay",
        help="drive a live serve instance (optionally sharded) with a "
        "seeded arrival process while a fault plan fires",
    )
    sp.add_argument(
        "--arrivals",
        default="poisson:n=20:rate=100",
        help="arrival pattern: poisson:n=..:rate=.., "
        "burst:n=..:size=..:gap=.., ramp:n=..:rate=..:peak=.. "
        "(default poisson:n=20:rate=100)",
    )
    sp.add_argument("--seed", type=int, default=0,
                    help="seed for arrivals and generated designs")
    sp.add_argument(
        "--generate",
        metavar="SPEC",
        default="random:ops=12",
        help="generator spec for the submitted designs "
        "(default random:ops=12)",
    )
    sp.add_argument(
        "--algorithm",
        choices=["schedule", "synth"],
        default="schedule",
        help="endpoint to drive (default schedule)",
    )
    sp.add_argument("--shards", type=int, default=None,
                    help="boot a sharded fleet with N worker shards "
                    "(default: single in-process service)")
    sp.add_argument("--faults", default=None,
                    help="fault plan armed in the service, e.g. "
                    "'serve.admit:n=3' (router.forward with --shards)")
    sp.add_argument("--fault-seed", type=int, default=0,
                    help="seed for probabilistic fault triggers")
    sp.add_argument("--time-scale", type=float, default=0.0,
                    help="pace submissions by arrival offsets x this "
                    "factor (0 = closed-loop, as fast as possible)")
    sp.add_argument("--open-loop", action="store_true",
                    help="submit at the arrival pace with concurrent "
                    "in-flight jobs instead of one at a time "
                    "(true load testing)")
    sp.add_argument("--max-in-flight", type=int, default=8,
                    help="with --open-loop: concurrent in-flight job "
                    "bound (default 8)")
    sp.add_argument("--report", help="write the replay report JSON here")

    sp = scsub.add_parser(
        "shrink",
        help="delta-debug failing scenarios from a pass/fail grid down "
        "to minimal DFG reproducers",
    )
    sp.add_argument("grid", help="pass/fail grid JSON from 'scenarios run'")
    sp.add_argument("--id", help="shrink only this scenario id")
    sp.add_argument(
        "--out-dir",
        default="scenario-corpus",
        help="directory for reproducer corpus files "
        "(default scenario-corpus)",
    )

    p = sub.add_parser(
        "trace",
        help="run one traced MFS/MFSA pass: record every frame, candidate "
        "energy and commit (§2.2, §3.2, §4.1), write the JSONL event "
        "stream plus a markdown run report, and replay-audit the descent",
    )
    p.add_argument("file")
    p.add_argument(
        "--scheduler",
        choices=["mfsa", "mfs"],
        default="mfsa",
        help="which scheduler to trace (default: mfsa)",
    )
    p.add_argument("--cs", type=int, help="time constraint (default: critical path)")
    p.add_argument("--style", type=int, choices=[1, 2], default=1)
    p.add_argument("--latency-l", type=int, default=None,
                   help="functional-pipelining initiation interval")
    p.add_argument("--pipelined", default="",
                   help="comma-separated structurally pipelined kinds")
    p.add_argument(
        "--jsonl",
        help="event-stream output path (default: <design>.trace.jsonl)",
    )
    p.add_argument(
        "--report",
        help="run-report output path (default: <design>.report.md)",
    )
    _add_timing_arguments(p)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _command_table1(args)
    if args.command == "table2":
        return _command_table2(args)
    if args.command == "figure1":
        return _command_figure(args, 1)
    if args.command == "figure2":
        return _command_figure(args, 2)
    if args.command == "baselines":
        return _command_baselines(args)
    if args.command == "report":
        from repro.bench.report import generate_report, write_report

        perf = _make_perf(args)
        backend = _backend(args)
        kwargs = dict(
            include_runtimes=not args.no_runtimes,
            backend=backend,
            workers=args.workers,
            perf=perf,
        )
        if args.out:
            write_report(args.out, **kwargs)
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print(generate_report(**kwargs))
        _print_perf(perf)
        return 0
    if args.command == "schedule":
        return _command_schedule(args)
    if args.command == "explore":
        return _command_explore(args)
    if args.command == "synth":
        return _command_synth(args)
    if args.command == "check":
        return _command_check(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "serve-admin":
        return _command_serve_admin(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "scenarios":
        return _command_scenarios(args)
    if args.command == "trace":
        return _command_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
