"""Cell-library substrate: ALU / register / multiplexer cost models.

The paper costs RTL structures in µm² against the NCR ASIC data book
(ref. [21]), which is proprietary; :mod:`repro.library.ncr` provides a
synthetic library of the same shape (see DESIGN.md, substitutions).
"""

from repro.library.cells import ALUCell, CellLibrary, MuxCostTable
from repro.library.ncr import ncr_like_library, simple_fu_library

__all__ = [
    "ALUCell",
    "CellLibrary",
    "MuxCostTable",
    "ncr_like_library",
    "simple_fu_library",
]
