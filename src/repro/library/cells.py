"""Cell-library data model.

A :class:`CellLibrary` tells MFSA

* which (possibly multifunction) **ALU cells** exist and what they cost,
* what one **register** costs,
* what an ``r``-input **multiplexer** costs — a *nonlinear* function of
  ``r`` (§4.1: "the cost of a multiplexer with r data inputs … is not a
  linear function of r"),

plus the derived bounds (``f_max`` terms) the paper's ``C`` constant needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import LibraryError
from repro.dfg.ops import OP_SYMBOLS


@dataclass(frozen=True)
class ALUCell:
    """One (multi)functional ALU cell.

    Attributes
    ----------
    name:
        Unique cell name, e.g. ``"alu_add_sub"``.
    kinds:
        Operation kinds the cell can execute.
    area:
        Cell area in µm².
    """

    name: str
    kinds: frozenset
    area: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", frozenset(str(k) for k in self.kinds))
        if self.area <= 0:
            raise LibraryError(f"cell {self.name!r} must have positive area")
        if not self.kinds:
            raise LibraryError(f"cell {self.name!r} implements no operation")

    def can_execute(self, kind: str) -> bool:
        """Whether this cell can perform operations of ``kind``."""
        return str(kind) in self.kinds

    def label(self) -> str:
        """Paper-style label, e.g. ``(+-)`` for an adder/subtractor."""
        symbols = sorted(OP_SYMBOLS.get(k, k) for k in self.kinds)
        return "(" + "".join(symbols) + ")"


class MuxCostTable:
    """Nonlinear multiplexer cost: µm² of an ``r``-input, 1-output mux.

    A 0- or 1-input "mux" is a plain wire and costs nothing.  Costs for
    larger ``r`` come from an explicit table with a fitted extension beyond
    the table (tree-of-2:1-muxes growth: roughly ``(r-1)`` 2:1 stages).
    """

    def __init__(
        self,
        table: Optional[Mapping[int, float]] = None,
        unit_cost: float = 420.0,
    ) -> None:
        self._table: Dict[int, float] = dict(table or {})
        self._unit = unit_cost
        for r, cost in self._table.items():
            if r < 2 or cost <= 0:
                raise LibraryError(f"invalid mux table entry {r}: {cost}")

    def cost(self, inputs: int) -> float:
        """Cost of a mux with ``inputs`` data inputs."""
        if inputs <= 1:
            return 0.0
        if inputs in self._table:
            return self._table[inputs]
        # A tree of (inputs-1) two-to-one muxes.
        return self._unit * (inputs - 1)

    def max_increment(self, up_to: int = 32) -> float:
        """``max_r (Cost(MUX_{r+1}) − Cost(MUX_r))`` — used for f_MUX_max."""
        return max(self.cost(r + 1) - self.cost(r) for r in range(1, up_to))


class CellLibrary:
    """The full cost model MFSA optimises against."""

    def __init__(
        self,
        name: str,
        alus: Iterable[ALUCell],
        register_area: float,
        mux_costs: Optional[MuxCostTable] = None,
    ) -> None:
        self.name = name
        self._alus: Dict[str, ALUCell] = {}
        for cell in alus:
            if cell.name in self._alus:
                raise LibraryError(f"duplicate cell name {cell.name!r}")
            self._alus[cell.name] = cell
        if register_area <= 0:
            raise LibraryError("register area must be positive")
        self.register_area = float(register_area)
        self.mux_costs = mux_costs or MuxCostTable()

    # ------------------------------------------------------------------
    def cells(self) -> Tuple[ALUCell, ...]:
        """All ALU cells, in registration order."""
        return tuple(self._alus.values())

    def cell(self, name: str) -> ALUCell:
        """The cell called ``name``."""
        try:
            return self._alus[name]
        except KeyError:
            raise LibraryError(f"no cell named {name!r}") from None

    def cells_for(self, kind: str) -> Tuple[ALUCell, ...]:
        """Cells able to execute ``kind`` (raises if none)."""
        matches = tuple(c for c in self._alus.values() if c.can_execute(kind))
        if not matches:
            raise LibraryError(
                f"library {self.name!r} has no cell for kind {kind!r}"
            )
        return matches

    def check_covers(self, kinds: Sequence[str]) -> None:
        """Raise unless every kind in ``kinds`` has at least one cell."""
        for kind in kinds:
            self.cells_for(kind)

    def restricted(self, cell_names: Sequence[str]) -> "CellLibrary":
        """Sub-library with only the named cells (the paper's "restricted
        to some specific types" user option)."""
        return CellLibrary(
            name=f"{self.name}[restricted]",
            alus=[self.cell(n) for n in cell_names],
            register_area=self.register_area,
            mux_costs=self.mux_costs,
        )

    # ------------------------------------------------------------------
    # f_max bounds used by the paper's C constant (§4.1)
    # ------------------------------------------------------------------
    def f_alu_max(self) -> float:
        """``max Cost(ALU_j)`` over the library."""
        return max(cell.area for cell in self._alus.values())

    def f_mux_max(self) -> float:
        """``2 · max (Cost(MUX_{r+1}) − Cost(MUX_r))``."""
        return 2.0 * self.mux_costs.max_increment()

    def f_reg_max(self) -> float:
        """``2 · Cost(REG)``."""
        return 2.0 * self.register_area

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellLibrary({self.name!r}, {len(self._alus)} cells)"
