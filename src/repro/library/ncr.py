"""Synthetic stand-in for the NCR ASIC data book (paper ref. [21]).

The paper costs its Table-2 RTL structures in µm² from a 1989 NCR ASIC
library we cannot obtain.  This module builds a library with the same
*shape*: a multiplier costs an order of magnitude more than an adder,
multifunction ALUs cost the dominant function plus a fraction of each
additional one, multiplexer cost grows nonlinearly with input count, and a
register sits between a mux and an adder.  The MFSA trade-offs (merge
operations into one ALU vs pay mux/register overhead) only depend on these
ratios, so Table-2 *shapes* are preserved while absolute µm² differ —
recorded as a substitution in DESIGN.md.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Mapping, Optional, Sequence, Tuple

from repro.dfg.ops import OpKind
from repro.library.cells import ALUCell, CellLibrary, MuxCostTable

#: Base area (µm²) of a single-function unit per operation kind.
BASE_AREAS: Mapping[str, float] = {
    OpKind.ADD: 2800.0,
    OpKind.SUB: 2950.0,
    OpKind.MUL: 16500.0,
    OpKind.DIV: 18500.0,
    OpKind.EQ: 1500.0,
    OpKind.LT: 1800.0,
    OpKind.GT: 1800.0,
    OpKind.AND: 900.0,
    OpKind.OR: 900.0,
    OpKind.XOR: 1100.0,
    OpKind.NOT: 600.0,
    OpKind.SHL: 2100.0,
    OpKind.SHR: 2100.0,
    OpKind.NEG: 1400.0,
    OpKind.MIN: 2600.0,
    OpKind.MAX: 2600.0,
    OpKind.MOVE: 400.0,
}

#: Fraction of a secondary function's base area added when merged into a
#: multifunction ALU (merging shares the datapath core, so it is cheap —
#: this discount is what makes MFSA's ALU merging worthwhile).
MERGE_FRACTION = 0.35

#: Fixed decode/glue overhead per extra merged function.
MERGE_GLUE = 180.0


def alu_area(kinds: Iterable[str]) -> float:
    """Synthetic area of an ALU implementing ``kinds``."""
    areas = sorted((BASE_AREAS[str(k)] for k in kinds), reverse=True)
    if not areas:
        raise ValueError("an ALU must implement at least one kind")
    total = areas[0]
    for secondary in areas[1:]:
        total += MERGE_FRACTION * secondary + MERGE_GLUE
    return round(total, 1)


def make_alu(kinds: Sequence[str], name: Optional[str] = None) -> ALUCell:
    """Build a synthetic ALU cell for an arbitrary kind combination."""
    kind_strs = tuple(str(k) for k in kinds)
    if name is None:
        name = "alu_" + "_".join(sorted(kind_strs))
    return ALUCell(name=name, kinds=frozenset(kind_strs), area=alu_area(kind_strs))


#: Nonlinear mux-cost table (µm²): marginal input cost grows with width,
#: mimicking routing congestion in the data book's mux family.
_MUX_TABLE: Mapping[int, float] = {
    2: 700.0,
    3: 1080.0,
    4: 1480.0,
    5: 1940.0,
    6: 2420.0,
    7: 2960.0,
    8: 3520.0,
    9: 4140.0,
    10: 4780.0,
    11: 5480.0,
    12: 6200.0,
}

#: Register (16-bit, load-enable) area in µm².
REGISTER_AREA = 1550.0

#: Curated multifunction combinations available in the default library —
#: wide enough to cover every combination Table 2 reports.
_DEFAULT_COMBOS: Tuple[Tuple[str, ...], ...] = (
    # arithmetic pairs/triples
    (OpKind.ADD, OpKind.SUB),
    (OpKind.ADD, OpKind.LT),
    (OpKind.ADD, OpKind.GT),
    (OpKind.SUB, OpKind.LT),
    (OpKind.SUB, OpKind.GT),
    (OpKind.ADD, OpKind.SUB, OpKind.LT),
    (OpKind.ADD, OpKind.SUB, OpKind.GT),
    (OpKind.ADD, OpKind.SUB, OpKind.GT, OpKind.NOT),
    (OpKind.ADD, OpKind.SUB, OpKind.LT, OpKind.GT),
    # logic clusters
    (OpKind.AND, OpKind.OR),
    (OpKind.AND, OpKind.EQ),
    (OpKind.OR, OpKind.EQ),
    (OpKind.AND, OpKind.OR, OpKind.EQ),
    (OpKind.AND, OpKind.OR, OpKind.XOR),
    # mixed arithmetic/logic
    (OpKind.ADD, OpKind.EQ),
    (OpKind.ADD, OpKind.AND),
    (OpKind.ADD, OpKind.OR),
    (OpKind.SUB, OpKind.AND),
    (OpKind.AND, OpKind.ADD, OpKind.EQ),
    (OpKind.ADD, OpKind.DIV, OpKind.GT, OpKind.NOT),
    (OpKind.GT, OpKind.LT),
    (OpKind.EQ, OpKind.LT),
    # multiplier clusters (expensive; merging into * is rarely profitable,
    # which the library must be able to express for MFSA to discover it)
    (OpKind.MUL, OpKind.ADD),
    (OpKind.MUL, OpKind.ADD, OpKind.OR),
    (OpKind.MUL, OpKind.SUB),
    (OpKind.MUL, OpKind.ADD, OpKind.SUB),
)


def ncr_like_library(
    extra_combos: Iterable[Sequence[str]] = (),
    name: str = "ncr-like-1989",
) -> CellLibrary:
    """The default synthetic library: all singles + curated combos.

    ``extra_combos`` adds project-specific multifunction cells.
    """
    cells = [make_alu((kind,)) for kind in OpKind]
    seen = {cell.kinds for cell in cells}
    for combo in tuple(_DEFAULT_COMBOS) + tuple(tuple(c) for c in extra_combos):
        cell = make_alu(combo)
        if cell.kinds not in seen:
            seen.add(cell.kinds)
            cells.append(cell)
    return CellLibrary(
        name=name,
        alus=cells,
        register_area=REGISTER_AREA,
        mux_costs=MuxCostTable(_MUX_TABLE),
    )


#: The curated "datapath ALU family" used for Table-2 runs.  Like the NCR
#: data book, it ships multifunction ALUs as the building blocks: there is
#: no standalone subtractor/comparator/logic gate, so MFSA must pick (and
#: may then share) multifunction cells — which is where its ALU-merging
#: pay-off shows.
_DATAPATH_FAMILY: Tuple[Tuple[str, ...], ...] = (
    (OpKind.MUL,),
    (OpKind.MUL, OpKind.ADD),
    (OpKind.MUL, OpKind.ADD, OpKind.OR),
    (OpKind.ADD,),
    (OpKind.ADD, OpKind.SUB),
    (OpKind.ADD, OpKind.SUB, OpKind.LT),
    (OpKind.ADD, OpKind.SUB, OpKind.GT),
    (OpKind.ADD, OpKind.SUB, OpKind.LT, OpKind.GT),
    (OpKind.AND, OpKind.OR),
    (OpKind.AND, OpKind.EQ),
    (OpKind.AND, OpKind.OR, OpKind.EQ),
    (OpKind.EQ, OpKind.LT),
    (OpKind.LT, OpKind.GT),
)


def datapath_library(name: str = "ncr-like-datapath") -> CellLibrary:
    """Restricted multifunction-ALU family for MFSA / Table-2 runs."""
    cells = []
    seen = set()
    for combo in _DATAPATH_FAMILY:
        cell = make_alu(combo)
        if cell.kinds not in seen:
            seen.add(cell.kinds)
            cells.append(cell)
    return CellLibrary(
        name=name,
        alus=cells,
        register_area=REGISTER_AREA,
        mux_costs=MuxCostTable(_MUX_TABLE),
    )


def simple_fu_library(kinds: Iterable[str], name: str = "single-function") -> CellLibrary:
    """Single-function-units-only library (the MFS assumption, §2.3)."""
    cells = [make_alu((str(kind),)) for kind in dict.fromkeys(str(k) for k in kinds)]
    return CellLibrary(
        name=name,
        alus=cells,
        register_area=REGISTER_AREA,
        mux_costs=MuxCostTable(_MUX_TABLE),
    )


def full_pairs_library(
    kinds: Sequence[str], name: str = "all-pairs"
) -> CellLibrary:
    """Library with every single and every pair of ``kinds`` — used by the
    design-space-exploration example and the ablation benchmarks."""
    kind_strs = tuple(dict.fromkeys(str(k) for k in kinds))
    cells = [make_alu((k,)) for k in kind_strs]
    for a, b in combinations(kind_strs, 2):
        cells.append(make_alu((a, b)))
    return CellLibrary(
        name=name,
        alus=cells,
        register_area=REGISTER_AREA,
        mux_costs=MuxCostTable(_MUX_TABLE),
    )
