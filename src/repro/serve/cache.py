"""Content-addressed result cache for the synthesis service.

Maps :func:`repro.serve.jobs.cache_key` digests — canonical DFG
fingerprint + full parameter tuple — to the *exact serialized bytes* of
a completed job's result payload.  Storing text rather than objects is
deliberate: a cache hit replays the stored bytes verbatim, so the cached
path is byte-identical to the cold path by construction (a property the
test suite locks down).

Eviction is LRU over a bounded entry count.  Synthesis results are a few
KiB of JSON (tens of KiB with an embedded trace), so the default bound
of 1024 entries keeps the cache in the tens of MiB worst case.

The *single-flight* half of deduplication — N identical in-flight
submissions sharing one synthesis run — lives in
:class:`~repro.serve.app.ServeApp`'s in-flight job table, not here: the
cache only ever sees completed results.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

from repro.serve.metrics import Metrics


class ResultCache:
    """Bounded LRU mapping cache keys to serialized result payloads."""

    def __init__(
        self,
        max_entries: int = 1024,
        metrics: Optional[Metrics] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.metrics = metrics
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        # Ring-placement tags: cache keys are opaque sha256 digests, so an
        # entry that must survive a ring resize carries the DFG fingerprint
        # it routes by.  Untagged entries simply cannot be handed off.
        self._tags: Dict[str, Optional[str]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[str]:
        """The stored response text, or ``None``; counts hit/miss."""
        text = self._entries.get(key)
        if text is None:
            self.misses += 1
            if self.metrics is not None:
                self.metrics.incr("cache_misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self.metrics is not None:
            self.metrics.incr("cache_hits")
        return text

    def peek(self, key: str) -> Optional[str]:
        """Like :meth:`get` but without touching recency or counters."""
        return self._entries.get(key)

    def put(self, key: str, text: str, tag: Optional[str] = None) -> None:
        """Store a completed result; evicts the least-recently-used entry.

        ``tag`` is the entry's routing fingerprint (the DFG fingerprint
        the hash ring places it by); pass it wherever the entry may need
        to be handed off on a ring resize.
        """
        self._entries[key] = text
        self._entries.move_to_end(key)
        if tag is not None:
            self._tags[key] = tag
        while len(self._entries) > self.max_entries:
            evicted, _text = self._entries.popitem(last=False)
            self._tags.pop(evicted, None)
            self.evictions += 1
            if self.metrics is not None:
                self.metrics.incr("cache_evictions")

    def tag(self, key: str) -> Optional[str]:
        """The routing fingerprint stored with ``key``, if any."""
        return self._tags.get(key)

    def tagged_entries(self) -> Iterator[Tuple[str, str, str]]:
        """``(key, tag, text)`` for every entry with a routing tag.

        LRU order (coldest first); the reshard handoff walks this to
        find entries whose owner changes under a pending ring.
        """
        for key, text in self._entries.items():
            tag = self._tags.get(key)
            if tag is not None:
                yield key, tag, text

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are totals)."""
        self._entries.clear()
        self._tags.clear()

    def hit_rate(self) -> Optional[float]:
        """Lifetime hit rate, ``None`` before the first lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else None
