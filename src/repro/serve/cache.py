"""Content-addressed result cache for the synthesis service.

Maps :func:`repro.serve.jobs.cache_key` digests — canonical DFG
fingerprint + full parameter tuple — to the *exact serialized bytes* of
a completed job's result payload.  Storing text rather than objects is
deliberate: a cache hit replays the stored bytes verbatim, so the cached
path is byte-identical to the cold path by construction (a property the
test suite locks down).

Eviction is LRU over a bounded entry count.  Synthesis results are a few
KiB of JSON (tens of KiB with an embedded trace), so the default bound
of 1024 entries keeps the cache in the tens of MiB worst case.

The *single-flight* half of deduplication — N identical in-flight
submissions sharing one synthesis run — lives in
:class:`~repro.serve.app.ServeApp`'s in-flight job table, not here: the
cache only ever sees completed results.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.serve.metrics import Metrics


class ResultCache:
    """Bounded LRU mapping cache keys to serialized result payloads."""

    def __init__(
        self,
        max_entries: int = 1024,
        metrics: Optional[Metrics] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.metrics = metrics
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[str]:
        """The stored response text, or ``None``; counts hit/miss."""
        text = self._entries.get(key)
        if text is None:
            self.misses += 1
            if self.metrics is not None:
                self.metrics.incr("cache_misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self.metrics is not None:
            self.metrics.incr("cache_hits")
        return text

    def peek(self, key: str) -> Optional[str]:
        """Like :meth:`get` but without touching recency or counters."""
        return self._entries.get(key)

    def put(self, key: str, text: str) -> None:
        """Store a completed result; evicts the least-recently-used entry."""
        self._entries[key] = text
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            if self.metrics is not None:
                self.metrics.incr("cache_evictions")

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are totals)."""
        self._entries.clear()

    def hit_rate(self) -> Optional[float]:
        """Lifetime hit rate, ``None`` before the first lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else None
