"""Shared HTTP/1.1 plumbing for the serve tier (stdlib asyncio streams).

One hand-rolled request/response layer, used by both server roles:

* :class:`~repro.serve.app.ServeApp` — a single worker shard (or the
  whole service when unsharded);
* :class:`~repro.serve.router.ShardRouter` — the consistent-hash front
  end of a sharded fleet, which additionally *originates* requests to
  its shards through :func:`proxy_request`.

The dialect is deliberately minimal — ``Connection: close`` per
request, explicit ``Content-Length``, no chunked encoding — because
every peer (the stdlib client, the router, curl) speaks it and the
serve tier's requests are small JSON bodies.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

#: Reason phrases for every status the serve tier answers with.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Query-flag spellings accepted as true.
TRUE_VALUES = ("1", "on", "true", "yes")


class ProtocolError(Exception):
    """A request the HTTP layer could not parse."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def flag(query: Mapping[str, str], name: str) -> bool:
    """Whether query parameter ``name`` is a truthy flag."""
    return query.get(name, "").lower() in TRUE_VALUES


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request into ``(method, path, query, body)``.

    Returns ``None`` on a bare connection close before the request line;
    raises :class:`ProtocolError` on malformed or oversized input.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise ProtocolError(400, "malformed request line")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > max_body_bytes:
        raise ProtocolError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    query = {
        key: values[-1] for key, values in parse_qs(split.query).items()
    }
    return method.upper(), split.path, query, body


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    headers: Dict[str, str],
    payload: Any,
) -> None:
    """Serialise and send one response; swallows client disconnects.

    ``payload`` is JSON-encoded unless it is a string marked raw
    (``X-Raw-Body`` header, consumed here) or typed ``text/*`` — the
    raw path is what keeps cached result bytes byte-identical on the
    wire.
    """
    headers = dict(headers)
    if isinstance(payload, str) and (
        headers.pop("X-Raw-Body", None)
        or headers.get("Content-Type", "").startswith("text/")
    ):
        body = payload.encode("utf-8")
        content_type = headers.pop("Content-Type", "text/plain; charset=utf-8")
    elif isinstance(payload, bytes):
        body = payload
        content_type = headers.pop("Content-Type", "application/json")
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        content_type = "application/json"
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    try:
        writer.write(head + body)
        await writer.drain()
    except (ConnectionError, BrokenPipeError):  # pragma: no cover
        pass


async def proxy_request(
    host: str,
    port: int,
    method: str,
    target: str,
    body: bytes = b"",
    headers: Optional[Mapping[str, str]] = None,
    timeout_s: float = 120.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """Send one request to a peer and read the full response.

    The router's forwarding path: opens a fresh connection (the serve
    dialect is one request per connection), writes the request verbatim,
    reads status line + headers + ``Content-Length`` body.  Raises
    ``OSError``/``asyncio.TimeoutError`` on transport failure — callers
    translate those into failover or 502/504.
    """

    async def _roundtrip() -> Tuple[int, Dict[str, str], bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            lines = [
                f"{method} {target} HTTP/1.1",
                f"Host: {host}:{port}",
                f"Content-Length: {len(body)}",
                "Connection: close",
            ]
            for name, value in (headers or {}).items():
                lines.append(f"{name}: {value}")
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
            if body:
                writer.write(body)
            await writer.drain()

            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(
                    f"malformed status line from {host}:{port}: {status_line!r}"
                )
            status = int(parts[1])
            response_headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _sep, value = line.decode("latin-1").partition(":")
                response_headers[name.strip().lower()] = value.strip()
            length = response_headers.get("content-length")
            if length is not None:
                payload = await reader.readexactly(int(length))
            else:  # pragma: no cover - peers always send Content-Length
                payload = await reader.read()
            return status, response_headers, payload
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    return await asyncio.wait_for(_roundtrip(), timeout=timeout_s)
