"""Job specifications and the picklable synthesis worker.

A *job spec* is the plain-dict, process-portable description of one
synthesis request: the design (as canonical ``repro-dfg`` JSON) plus the
full parameter tuple (algorithm, time constraint, ALU style, timing
model, pipelining, seed) and the per-job flags (``verify``, ``trace``).
Specs are what crosses the process boundary into
:class:`~repro.sweep.SweepExecutor` workers, what the result cache is
keyed on, and what the HTTP layer parses requests into — one shape for
all three.

Determinism contract: :func:`execute_spec` runs the exact same scheduler
code path as the one-shot CLI (``repro-hls schedule`` / ``synth
--json``), so a served result is byte-identical to the CLI's JSON output
for the same design and parameters.  Traced runs clear the process-wide
mux-optimiser memo first, mirroring :func:`repro.trace.driver.trace_run`,
so the embedded ``perf.counters`` event — and therefore the whole trace
artifact — is reproducible no matter which worker process picks the job
up.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.fingerprint import (
    dfg_fingerprint,
    library_fingerprint,
    params_fingerprint,
    sha256_of,
)
from repro.dfg.graph import DFG
from repro.dfg.ops import standard_operation_set
from repro.dfg.parser import parse_behavior
from repro.io.jsonio import dfg_from_json, dfg_to_json
from repro.perf import PerfCounters
from repro.resilience.faults import fault_point
from repro.sweep import worker_cached

#: Algorithms the service can run.
ALGORITHMS = ("mfs", "mfsa")

#: Spec schema version (part of every cache key).
SPEC_VERSION = 1


class JobSpecError(ValueError):
    """A request that cannot be turned into a valid job spec (HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobSpecError(message)


def parse_design(body: Mapping[str, Any], name: str = "design") -> DFG:
    """Extract the DFG from a request body.

    Accepts either ``{"source": "<behavioral text>"}`` (the
    :mod:`repro.dfg.parser` language) or ``{"dfg": {...}}`` (a parsed
    ``repro-dfg`` JSON object, as produced by
    :func:`repro.io.jsonio.dfg_to_json`).
    """
    source = body.get("source")
    dfg_obj = body.get("dfg")
    _require(
        (source is None) != (dfg_obj is None),
        "request must carry exactly one of 'source' or 'dfg'",
    )
    try:
        if source is not None:
            _require(isinstance(source, str), "'source' must be a string")
            return parse_behavior(source, name=str(body.get("name", name)))
        return dfg_from_json(json.dumps(dfg_obj))
    except JobSpecError:
        raise
    except Exception as error:
        raise JobSpecError(f"malformed design: {error}") from error


def normalize_spec(
    algorithm: str,
    body: Mapping[str, Any],
    verify: bool = False,
    trace: bool = False,
) -> Dict[str, Any]:
    """Validate a request body into a canonical, picklable job spec.

    The canonicalisation matters: two requests describing the same job
    (isomorphic designs, same parameters in any spelling) normalise to
    specs with the same :func:`cache_key`.
    """
    _require(algorithm in ALGORITHMS, f"unknown algorithm {algorithm!r}")
    _require(isinstance(body, Mapping), "request body must be a JSON object")
    dfg = parse_design(body)
    _require(len(dfg) > 0, "design has no operations")

    def _opt_number(key: str, cast, minimum=None):
        value = body.get(key)
        if value is None:
            return None
        try:
            value = cast(value)
        except (TypeError, ValueError):
            raise JobSpecError(f"{key!r} must be a {cast.__name__}") from None
        _require(
            minimum is None or value >= minimum,
            f"{key!r} must be >= {minimum}",
        )
        return value

    style = _opt_number("style", int) or 1
    _require(style in (1, 2), "'style' must be 1 or 2")
    pipelined = body.get("pipelined", [])
    if isinstance(pipelined, str):
        pipelined = [k for k in pipelined.split(",") if k]
    _require(
        isinstance(pipelined, (list, tuple))
        and all(isinstance(k, str) for k in pipelined),
        "'pipelined' must be a list of kind names",
    )
    spec = {
        "version": SPEC_VERSION,
        "algorithm": algorithm,
        "dfg_json": dfg_to_json(dfg, indent=None),
        "cs": _opt_number("cs", int, minimum=1),
        "style": style,
        "mul_latency": _opt_number("mul_latency", int, minimum=1) or 1,
        "clock_ns": _opt_number("clock_ns", float, minimum=0.0),
        "latency_l": _opt_number("latency_l", int, minimum=1),
        "pipelined": sorted(set(pipelined)),
        "seed": _opt_number("seed", int) or 0,
        "verify": bool(verify),
        "trace": bool(trace),
    }
    return spec


def cache_key(spec: Mapping[str, Any]) -> str:
    """Content address of a job spec (the result-cache key)."""
    return key_and_fingerprint(spec)[0]


def spec_fingerprint(spec: Mapping[str, Any]) -> str:
    """The canonical DFG fingerprint of a spec (the ring routing key)."""
    return dfg_fingerprint(dfg_from_json(spec["dfg_json"]))


def key_and_fingerprint(spec: Mapping[str, Any]) -> Tuple[str, str]:
    """``(cache_key, dfg_fingerprint)`` of a job spec in one DFG parse.

    The cache key combines the canonical DFG fingerprint
    (renaming/insertion-order free), the full parameter tuple, and — for
    allocation jobs — the cell library cost model.  The
    ``verify``/``trace`` flags are part of the key because they change
    the response payload (audit fields, the trace artifact), and cached
    responses are returned byte-identical.  The fingerprint is returned
    alongside because it is the *routing* key: the hash ring places jobs
    and cache entries by it, and every cache write tags the entry with
    it so a ring resize can compute the handoff set.
    """
    dfg = dfg_from_json(spec["dfg_json"])
    params = {
        # The design name is erased by the structural fingerprint but
        # embedded in the response bytes, so it must key the cache.
        "design_name": dfg.name,
    }
    params.update(
        (key, spec[key])
        for key in (
            "version",
            "algorithm",
            "cs",
            "style",
            "mul_latency",
            "clock_ns",
            "latency_l",
            "pipelined",
            "seed",
            "verify",
            "trace",
        )
    )
    library_digest = None
    if spec["algorithm"] == "mfsa":
        from repro.library.ncr import datapath_library

        library_digest = library_fingerprint(datapath_library())
    fingerprint = dfg_fingerprint(dfg)
    key = sha256_of(
        [
            "repro-serve-key",
            SPEC_VERSION,
            fingerprint,
            params_fingerprint(params),
            library_digest,
        ]
    )
    return key, fingerprint


def execute_spec(
    spec: Mapping[str, Any],
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run one job spec to completion — the sweep worker function.

    Module-level and pure so :class:`~repro.sweep.SweepExecutor` can ship
    it to pool processes.  Returns ``(payload, perf_snapshot)``: the
    response payload (``payload["ok"]`` discriminates success) and the
    :meth:`~repro.perf.PerfCounters.as_dict` snapshot for the caller to
    merge into the service-wide counters.  Job failures are *returned*,
    never raised, so one bad job cannot poison its batch.
    """
    perf = PerfCounters()
    try:
        fault_point("scheduler.run")
        payload = _execute(spec, perf)
    except Exception as error:
        payload = {
            "ok": False,
            "error": {"type": type(error).__name__, "message": str(error)},
        }
    return payload, perf.as_dict()


def _execute(spec: Mapping[str, Any], perf: PerfCounters) -> Dict[str, Any]:
    from repro.core.mfs import MFSScheduler
    from repro.core.mfsa import MFSAScheduler
    from repro.io.jsonio import schedule_to_json, synthesis_to_json
    from repro.library.ncr import datapath_library

    dfg = dfg_from_json(spec["dfg_json"])
    # Warm-worker caches: the timing model and cell library are pure
    # functions of their fingerprinted parameters, so a long-lived pool
    # worker builds each exactly once and reuses it across every job it
    # serves (see repro.sweep.worker_cached).
    timing = worker_cached(
        ("serve.timing", spec["mul_latency"], spec["clock_ns"]),
        lambda: TimingModel(
            ops=standard_operation_set(mul_latency=spec["mul_latency"]),
            clock_period_ns=spec["clock_ns"],
        ),
    )
    cs = spec["cs"] or critical_path_length(dfg, timing)

    trace = None
    if spec["trace"]:
        from repro.allocation.mux import clear_mux_memo
        from repro.trace import TraceRecorder

        # Mirror repro.trace.driver: a cleared process-wide memo makes
        # the counters embedded in the trace worker-independent.
        clear_mux_memo()
        trace = TraceRecorder()

    if spec["algorithm"] == "mfs":
        result = MFSScheduler(
            dfg,
            timing,
            cs=cs,
            mode="time",
            latency_l=spec["latency_l"],
            pipelined_kinds=tuple(spec["pipelined"]),
            perf=perf,
            trace=trace,
        ).run()
        result_obj = json.loads(schedule_to_json(result.schedule))
    else:
        result = MFSAScheduler(
            dfg,
            timing,
            worker_cached(("serve.library",), datapath_library),
            cs=cs,
            style=spec["style"],
            latency_l=spec["latency_l"],
            pipelined_kinds=tuple(spec["pipelined"]),
            perf=perf,
            trace=trace,
        ).run()
        result_obj = json.loads(synthesis_to_json(result))

    payload: Dict[str, Any] = {
        "ok": True,
        "algorithm": spec["algorithm"],
        "design": dfg.name,
        "cs": cs,
        "result": result_obj,
    }
    if spec["verify"]:
        from repro.check import check_mfs_result, check_mfsa_result

        checker = (
            check_mfs_result if spec["algorithm"] == "mfs" else check_mfsa_result
        )
        report = checker(result)
        payload["verified"] = report.ok
        payload["checks_run"] = list(report.checks_run)
        if not report.ok:
            payload["ok"] = False
            payload["violations"] = [str(v) for v in report.violations]
            payload["error"] = {
                "type": "VerificationError",
                "message": f"{len(report.violations)} invariant violation(s)",
            }
    if trace is not None:
        payload["trace_jsonl"] = trace.to_jsonl()
    return payload


def response_text(payload: Mapping[str, Any]) -> str:
    """Canonical serialisation of a job result payload.

    This exact text is what the cache stores and what
    ``GET /v1/jobs/<id>/result`` returns, so the cold and cached paths
    are byte-identical by construction.
    """
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"
