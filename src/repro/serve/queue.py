"""Jobs and the bounded submission queue (the backpressure layer).

A :class:`Job` is one accepted synthesis request moving through the
service: ``queued → running → done | failed | timeout | cancelled``.
Each job owns an :class:`asyncio.Future` that resolves to the canonical
response text; HTTP waiters, single-flight followers and the CLI client
all await that one future.

:class:`JobQueue` is a deliberately *bounded* FIFO.  When the queue is
full the service refuses new work with HTTP 429 + ``Retry-After`` rather
than buffering unboundedly — under sustained overload an explicit,
early, cheap rejection keeps tail latency of accepted jobs bounded and
lets well-behaved clients back off (the standard load-shedding
argument).  Timed-out or cancelled jobs still physically in the FIFO are
lazily skipped by the consumer, so cancellation is O(1) and never leaves
orphaned work for the batcher.
"""

from __future__ import annotations

import asyncio
import itertools
import time
import uuid
from collections import deque
from typing import Any, Dict, Mapping, Optional

#: Job lifecycle states.
STATUSES = ("queued", "running", "done", "failed", "timeout", "cancelled")

_TERMINAL = ("done", "failed", "timeout", "cancelled")

_job_seq = itertools.count(1)


class QueueFull(Exception):
    """The bounded queue rejected a submission (HTTP 429).

    ``retry_after`` is the server's backoff hint in seconds.
    """

    def __init__(self, depth: int, maxsize: int, retry_after: float) -> None:
        super().__init__(
            f"job queue full ({depth}/{maxsize}); retry in {retry_after:g}s"
        )
        self.depth = depth
        self.maxsize = maxsize
        self.retry_after = retry_after


class JobTimeout(Exception):
    """A job exceeded its per-job timeout (HTTP 504 for waiters)."""


class JobFailed(Exception):
    """A job finished unsuccessfully (HTTP 500 for waiters)."""


class Job:
    """One accepted synthesis request and its resolution future."""

    def __init__(
        self,
        spec: Mapping[str, Any],
        key: str,
        timeout_s: Optional[float] = None,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        job_id: Optional[str] = None,
    ) -> None:
        loop = loop or asyncio.get_running_loop()
        # ``job_id`` pins the identity across process death: journal
        # replay resurrects jobs under their original ids so that
        # ``GET /v1/jobs/<id>`` keeps answering after a restart.
        self.id = job_id or f"j{next(_job_seq):05d}-{uuid.uuid4().hex[:8]}"
        self.spec = dict(spec)
        self.key = key
        #: Canonical DFG fingerprint — the hash-ring routing key.  Set
        #: by the app when it parses the spec; the router reads it from
        #: job payloads to place replica cache writes on the ring.
        self.fingerprint: Optional[str] = None
        self.timeout_s = timeout_s
        self.status = "queued"
        self.cache = "miss"  # "miss" | "hit" | "follower"
        #: Whether this job has an ``admit`` record in the write-ahead
        #: journal (execution leaders under ``--state-dir`` only).
        self.journaled = False
        self.error: Optional[Dict[str, str]] = None
        self.response_text: Optional[str] = None
        self.created_monotonic = time.monotonic()
        self.started_monotonic: Optional[float] = None
        self.finished_monotonic: Optional[float] = None
        self.future: "asyncio.Future[str]" = loop.create_future()
        self._timeout_handle: Optional[asyncio.TimerHandle] = None

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def queue_seconds(self) -> Optional[float]:
        if self.started_monotonic is None:
            return None
        return self.started_monotonic - self.created_monotonic

    def run_seconds(self) -> Optional[float]:
        if self.started_monotonic is None or self.finished_monotonic is None:
            return None
        return self.finished_monotonic - self.started_monotonic

    def total_seconds(self) -> Optional[float]:
        if self.finished_monotonic is None:
            return None
        return self.finished_monotonic - self.created_monotonic

    # ------------------------------------------------------------------
    def mark_running(self) -> None:
        if self.status == "queued":
            self.status = "running"
            self.started_monotonic = time.monotonic()

    def finish(self, ok: bool, text: str, error: Optional[Dict] = None) -> None:
        """Resolve with the canonical response text (success or job error)."""
        if self.terminal or self.future.done():
            return
        self.finished_monotonic = time.monotonic()
        if self.started_monotonic is None:
            self.started_monotonic = self.finished_monotonic
        self._cancel_timer()
        self.response_text = text
        if ok:
            self.status = "done"
            self.future.set_result(text)
        else:
            self.status = "failed"
            self.error = dict(error or {"type": "JobFailed", "message": "job failed"})
            self.future.set_exception(
                JobFailed(self.error.get("message", "job failed"))
            )

    def mark_timeout(self) -> None:
        """Per-job deadline fired; resolve waiters, leave no pending work.

        If the job is still queued it will be skipped by the consumer;
        if it is running, the batch result is discarded on arrival
        (:meth:`finish` is a no-op once terminal).
        """
        if self.terminal or self.future.done():
            return
        self.finished_monotonic = time.monotonic()
        self.status = "timeout"
        self.error = {
            "type": "JobTimeout",
            "message": f"job exceeded its {self.timeout_s:g}s timeout",
        }
        self.future.set_exception(JobTimeout(self.error["message"]))

    def cancel(self) -> None:
        """Client-side cancellation of a queued job."""
        if self.terminal or self.future.done():
            return
        self.finished_monotonic = time.monotonic()
        self.status = "cancelled"
        self.error = {"type": "Cancelled", "message": "job cancelled"}
        self.future.set_exception(asyncio.CancelledError())

    def arm_timeout(self, loop: asyncio.AbstractEventLoop) -> None:
        """Schedule :meth:`mark_timeout` ``timeout_s`` from now."""
        if self.timeout_s is not None:
            self._timeout_handle = loop.call_later(
                self.timeout_s, self.mark_timeout
            )

    def _cancel_timer(self) -> None:
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
            self._timeout_handle = None

    def follow(self, leader: "Job") -> None:
        """Chain this job to an identical in-flight leader (single-flight).

        The follower never enters the queue; it mirrors the leader's
        resolution — including failure and timeout — the moment it lands.
        """
        self.cache = "follower"
        self.status = "running"
        self.started_monotonic = time.monotonic()

        def _mirror(done: "asyncio.Future[str]") -> None:
            if self.terminal or self.future.done():
                return
            if done.cancelled():
                self.cancel()
            elif done.exception() is not None:
                self.finished_monotonic = time.monotonic()
                self.status = leader.status if leader.terminal else "failed"
                self.error = dict(leader.error or {})
                self.response_text = leader.response_text
                self.future.set_exception(done.exception())
            else:
                self.finish(True, done.result())

        leader.future.add_done_callback(_mirror)

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """The JSON shape of this job in API responses."""
        info: Dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "cache": self.cache,
            "algorithm": self.spec.get("algorithm"),
            "key": self.key,
        }
        if self.fingerprint is not None:
            info["fingerprint"] = self.fingerprint
        for label, value in (
            ("queue_seconds", self.queue_seconds()),
            ("run_seconds", self.run_seconds()),
            ("total_seconds", self.total_seconds()),
        ):
            if value is not None:
                info[label] = round(value, 6)
        if self.error is not None:
            info["error"] = self.error
        return info


class JobQueue:
    """Bounded FIFO of queued jobs with a single async consumer."""

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._items: "deque[Job]" = deque()
        self._arrival = asyncio.Event()

    def depth(self) -> int:
        """Live (still-queued) jobs waiting for the batcher."""
        return sum(1 for job in self._items if job.status == "queued")

    def put(self, job: Job, retry_after: float = 1.0) -> None:
        """Enqueue, or raise :class:`QueueFull` when at capacity."""
        depth = self.depth()
        if depth >= self.maxsize:
            raise QueueFull(depth, self.maxsize, retry_after)
        self._items.append(job)
        self._arrival.set()

    def requeue(self, job: Job) -> None:
        """Enqueue bypassing the bound (crash-recovery replay only).

        Journal replay happens before the listener admits new work; the
        recovered jobs were all admitted by a previous incarnation, so
        refusing them now would drop acknowledged work.
        """
        self._items.append(job)
        self._arrival.set()

    def get_nowait(self) -> Optional[Job]:
        """Pop the next live job without waiting (``None`` when empty)."""
        while self._items:
            job = self._items.popleft()
            if job.status == "queued":
                return job
        self._arrival.clear()
        return None

    async def get(self) -> Job:
        """Wait for the next live job (dead jobs are skipped silently)."""
        while True:
            job = self.get_nowait()
            if job is not None:
                return job
            self._arrival.clear()
            await self._arrival.wait()
