"""The shard router: a consistent-hash front end over worker shards.

``repro-hls serve --shards N`` promotes the service from one asyncio
loop to a small fleet: the router spawns N :class:`~repro.serve.app.
ServeApp` worker subprocesses (each with its own event loop, warm
:class:`~repro.sweep.SweepExecutor` pool and — under ``--state-dir`` —
its own write-ahead journal in ``shard-<i>/``) and fronts them behind
the *unchanged* HTTP API, so the client, the CLI and every docs example
work identically against one process or a fleet::

                          ┌────────────────────┐
    client ──▶ router ──▶ │ L2 result cache?   │── hit ──▶ response
               │          └────────────────────┘
               │ miss: HashRing.ordered(dfg_fingerprint)
               ├──▶ shard-0 (ServeApp: L1 cache, pool, journal)
               ├──▶ shard-1
               └──▶ shard-<n>    … first *healthy* shard in ring order

Design choices, and why:

* **Routing key = the canonical DFG fingerprint** (:func:`repro.dfg.
  fingerprint.dfg_fingerprint`), not the full cache key — all parameter
  sweeps over one design land on the same shard, so its warm worker
  caches (timing model, cell library) and L1 result cache do maximal
  work.
* **Two cache tiers.**  Each shard keeps its L1
  :class:`~repro.serve.cache.ResultCache`; the router keeps a shared L2
  keyed by the same content address and populated from shard responses.
  A result computed by one shard is therefore served as a cache hit to
  *any* later client, even when failover routes the request to a
  different shard — and byte-identically, because both tiers store
  :func:`~repro.serve.jobs.response_text` output.
* **Failover is re-routing, not retry logic in clients.**  A health
  loop polls every shard; a dead or unresponsive shard is skipped and
  the request forwarded to the next shard in the key's ring order
  (deterministic fallback).  Crashed shards are respawned on their own
  state dir, so journal replay restores their crash window
  byte-identically (docs/ROBUSTNESS.md).
* **One ``/metrics`` for the fleet.**  The router scrapes each shard
  and re-emits the union with a ``shard="shard-<i>"`` label (its own
  series carry ``shard="router"``).
* **The fleet is elastic.**  ``POST /admin/shards`` (and the
  ``repro-hls serve-admin`` CLI) boots or drains a shard at runtime: the
  router builds the pending ring, pushes every cache entry whose owner
  changes to its new owner (*warm handoff*, so repeat submissions stay
  hits across the resize), and only then flips the live ring; a removed
  shard finishes its in-flight jobs and compacts its journal before the
  process exits.
* **Results are replicated.**  Each fresh result is written to its
  owner *and* the next ``replication - 1`` shards in ring order — as a
  coalesced background flush (one import POST per target per
  ``replica_flush_s`` window), never on the response path; on a
  router-L2 miss the read path probes the replica holders before
  recomputing and read-repairs what it finds, so ``kill -9`` on a shard
  no longer costs the fleet its hottest cache entries.
* **Supervision is crash-loop safe.**  A dead shard respawns after a
  capped exponential backoff with seeded *equal* jitter (monotone
  non-decreasing gaps, :class:`repro.resilience.retry.RetryPolicy`);
  after ``crash_loop_threshold`` rapid deaths the shard is permanently
  demoted — the ring routes around it and the fleet keeps serving.

Graceful drain mirrors the single-process story: SIGTERM stops
admission (503), SIGTERMs every shard (each drains its own queue and
compacts its journal), then the router exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import urlencode

from repro.resilience.faults import (
    FaultPlan,
    InjectedFault,
    active_plan,
    arm,
    fault_point,
)
from repro.resilience.retry import RetryPolicy
from repro.serve.cache import ResultCache
from repro.serve.hashring import HashRing, moved_keys
from repro.serve.httpcore import (
    ProtocolError,
    flag as _query_flag,
    proxy_request,
    read_request,
    write_response,
)
from repro.serve.jobs import (
    JobSpecError,
    key_and_fingerprint,
    normalize_spec,
    response_text,
)
from repro.serve.metrics import Metrics, merge_expositions, relabel_exposition
from repro.serve.queue import Job


@dataclass
class RouterConfig:
    """Tunables of one shard-router instance (see docs/SERVICE.md)."""

    host: str = "127.0.0.1"
    port: int = 8421
    #: Worker shards to spawn.  ``--shards 1`` still runs the router in
    #: front of one shard (useful for like-for-like benchmarking).
    shards: int = 2
    #: Root of the fleet's crash-safe state; each shard journals under
    #: ``<state_dir>/shard-<i>/``.  ``None`` disables durability (the
    #: router still needs scratch space for port files and shard logs,
    #: which it takes from a private temp dir).
    state_dir: Optional[str] = None
    #: Shared L2 result-cache capacity at the router.
    cache_entries: int = 4096
    job_history: int = 2048
    max_body_bytes: int = 8 * 1024 * 1024
    #: Seconds between shard health probes; a shard is unhealthy after
    #: ``health_failures`` consecutive probe failures and is respawned
    #: (same state dir → journal replay) when its process has exited.
    health_interval_s: float = 0.25
    health_timeout_s: float = 2.0
    health_failures: int = 2
    respawn: bool = True
    #: Respawn backoff (equal-jitter exponential): the first rapid-death
    #: respawn waits ~``respawn_base_s``, doubling per consecutive rapid
    #: death up to ``respawn_cap_s``.  A shard that lived longer than
    #: ``crash_loop_window_s`` respawns immediately.
    respawn_base_s: float = 0.25
    respawn_cap_s: float = 10.0
    respawn_seed: int = 0
    #: A death within this many seconds of the spawn counts as "rapid".
    crash_loop_window_s: float = 5.0
    #: Consecutive rapid deaths before a shard is permanently demoted
    #: (the ring routes around it; only an admin remove cleans it up).
    crash_loop_threshold: int = 5
    #: Cache copies per result: the owner plus ``replication - 1`` ring
    #: successors.  ``1`` disables replica writes and read-path probes.
    replication: int = 2
    #: Coalescing window for replica writes: results absorbed within one
    #: window ride a single cache-import POST per target shard, so the
    #: per-result replication cost amortises away under load.
    replica_flush_s: float = 0.02
    #: Budget for one forwarded request (covers ``?wait=1`` synthesis).
    forward_timeout_s: float = 120.0
    #: Budget for every shard to drain after fleet SIGTERM.
    drain_timeout_s: float = 30.0
    #: Extra ``repro-hls serve`` flags forwarded verbatim to every shard
    #: (tuning knobs: ``--serial``, ``--max-batch``, ``--faults``, …).
    shard_args: Tuple[str, ...] = ()
    port_file: Optional[str] = None
    #: Router-level fault plan (``router.forward`` site — chaos only).
    faults: Optional[str] = None
    fault_seed: int = 0


class ShardProcess:
    """One worker-shard subprocess as the router sees it."""

    def __init__(self, name: str, index: int, home: str) -> None:
        self.name = name
        self.index = index
        #: Shard-private directory: port file, log, and (under
        #: ``--state-dir``) the write-ahead journal.
        self.home = home
        self.port_file = os.path.join(home, "port")
        self.log_path = os.path.join(home, "shard.log")
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.healthy = False
        self.failures = 0
        self.restarts = 0
        self.last_health: Optional[Dict[str, Any]] = None
        #: Respawn backoff stream (equal jitter — monotone gaps), seeded
        #: per shard by the router.
        self.backoff: Optional[RetryPolicy] = None
        #: Permanently taken out of service by the crash-loop detector.
        self.demoted = False
        #: Being removed by an admin reshard; supervision leaves it alone.
        self.draining = False
        self.rapid_deaths = 0
        self.spawned_monotonic: Optional[float] = None
        self.death_monotonic: Optional[float] = None
        self.next_respawn_monotonic: Optional[float] = None
        #: Last scheduled respawn delay (the backoff gauge reads this).
        self.respawn_delay_s = 0.0
        #: Every scheduled respawn delay, oldest first (tests assert the
        #: monotone-gap property on this).
        self.respawn_gaps: List[float] = []

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def describe(self) -> Dict[str, Any]:
        if self.demoted:
            status = "demoted"
        elif self.draining:
            status = "draining"
        elif self.healthy:
            status = "ok"
        else:
            status = "starting" if self.alive else "down"
        info: Dict[str, Any] = {
            "status": status,
            "port": self.port,
            "restarts": self.restarts,
        }
        if self.rapid_deaths:
            info["rapid_deaths"] = self.rapid_deaths
        if self.respawn_delay_s:
            info["respawn_backoff_seconds"] = round(self.respawn_delay_s, 6)
        if self.last_health is not None:
            info["health"] = self.last_health
        return info


class ShardRouter:
    """Front end of a sharded fleet: routing, shared cache, supervision."""

    def __init__(self, config: Optional[RouterConfig] = None, **overrides) -> None:
        if config is None:
            config = RouterConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a RouterConfig or keyword overrides")
        if config.shards < 1:
            raise ValueError(f"shards must be >= 1, got {config.shards}")
        self.config = config
        self.metrics = Metrics()
        self.cache = ResultCache(config.cache_entries, metrics=self.metrics)
        self.ring = HashRing(f"shard-{i}" for i in range(config.shards))
        self.shards: Dict[str, ShardProcess] = {}
        #: Router-answered jobs (shared-cache hits), by id.
        self.jobs: "Dict[str, Job]" = {}
        self._job_order: List[str] = []
        #: Which shard answered which job id (forwarded submissions).
        self.job_locations: Dict[str, str] = {}
        self.fault_plan: Optional[FaultPlan] = None
        if config.faults:
            self.fault_plan = FaultPlan.parse(config.faults, seed=config.fault_seed)
        #: Names are never reused: the next admin-added shard gets this.
        self._next_index = config.shards
        #: Serializes admin reshards (a second one answers 409).
        self._reshard_lock = asyncio.Lock()
        #: In-flight background work (replica flushes), kept referenced.
        self._background: set = set()
        #: Replica writes awaiting a flush: target shard → key → entry.
        #: Coalescing per target turns N per-result POSTs into one
        #: import per ``replica_flush_s`` window (re-puts dedupe by key).
        self._replica_buffer: Dict[str, Dict[str, Dict[str, Any]]] = {}
        self._replica_flush_scheduled = False
        self.draining = False
        self.started_monotonic: Optional[float] = None
        self._scratch: Optional[tempfile.TemporaryDirectory] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._health_task: Optional[asyncio.Task] = None
        self._drain_on_stop = True
        self._announce = sys.stderr
        self._describe_metrics()

    def _describe_metrics(self) -> None:
        m = self.metrics
        m.describe("cache_hits", "Shared (L2) result-cache hits at the router.")
        m.describe("cache_misses", "Shared (L2) result-cache misses at the router.")
        m.describe("cache_evictions", "LRU evictions from the shared cache.")
        m.describe("http_requests", "HTTP requests, by method/route/status.")
        m.describe("router_forwards", "Requests forwarded, by target shard.")
        m.describe("router_forward_errors", "Forward attempts that failed, by target shard.")
        m.describe("router_failovers", "Submissions re-routed off their owner shard.")
        m.describe("shard_restarts", "Shard subprocesses respawned, by target shard.")
        m.describe("shard_demoted", "Shards permanently demoted by the crash-loop detector.")
        m.describe("shard_respawn_backoff_seconds", "Current respawn backoff delay, by shard.")
        m.describe("replica_puts", "Replica cache writes, by target shard.")
        m.describe("replica_put_errors", "Replica cache writes that failed, by target shard.")
        m.describe("replica_probe_hits", "Submissions served from a replica shard's cache.")
        m.describe("reshards", "Ring resizes completed, by action.")
        m.describe("handoff_entries", "Cache entries warm-pushed during reshards, by receiver.")
        m.describe("handoff_errors", "Handoff pushes that failed, by receiver.")
        m.describe("handoff_seconds", "Wall time of one reshard warm handoff.")
        m.gauge("shards_total", lambda: len(self.shards))
        m.gauge(
            "healthy_shards",
            lambda: sum(1 for s in self.shards.values() if s.healthy),
        )
        m.gauge("cache_entries", lambda: len(self.cache))
        m.gauge("draining", lambda: 1 if self.draining else 0)

    # ------------------------------------------------------------------
    # shard lifecycle
    # ------------------------------------------------------------------
    def _shard_home(self, name: str) -> str:
        root = self.config.state_dir
        if root is None:
            if self._scratch is None:
                self._scratch = tempfile.TemporaryDirectory(prefix="repro-router-")
            root = self._scratch.name
        home = os.path.join(root, name)
        os.makedirs(home, exist_ok=True)
        return home

    def _new_shard(self, name: str, index: int) -> ShardProcess:
        """Create and register one shard record (not yet spawned)."""
        shard = ShardProcess(name, index, self._shard_home(name))
        shard.backoff = RetryPolicy(
            retries=0,
            base_s=self.config.respawn_base_s,
            cap_s=self.config.respawn_cap_s,
            seed=f"respawn:{self.config.respawn_seed}:{name}",
            jitter="equal",
        )
        self.metrics.gauge(
            "shard_respawn_backoff_seconds",
            lambda s=shard: s.respawn_delay_s,
            target=name,
        )
        self.shards[name] = shard
        return shard

    def _shard_command(self, shard: ShardProcess) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.config.host,
            "--port",
            "0",
            "--port-file",
            shard.port_file,
        ]
        if self.config.state_dir is not None:
            command += ["--state-dir", shard.home]
        command += list(self.config.shard_args)
        return command

    def _spawn(self, shard: ShardProcess) -> None:
        """Start (or restart) one shard subprocess, stderr → its log."""
        for stale in (shard.port_file, f"{shard.port_file}.tmp"):
            try:
                os.unlink(stale)
            except FileNotFoundError:
                pass
        env = dict(os.environ)
        # The shard must import repro from the same tree as the router,
        # regardless of how the router itself was launched.
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        with open(shard.log_path, "ab") as log:
            shard.process = subprocess.Popen(
                self._shard_command(shard),
                stdin=subprocess.DEVNULL,
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )
        shard.port = None
        shard.healthy = False
        shard.failures = 0
        shard.spawned_monotonic = time.monotonic()
        shard.death_monotonic = None
        shard.next_respawn_monotonic = None

    def _read_port(self, shard: ShardProcess) -> Optional[int]:
        try:
            with open(shard.port_file, "r", encoding="utf-8") as handle:
                text = handle.read().strip()
            return int(text) if text else None
        except (FileNotFoundError, ValueError):
            return None

    async def _await_port(self, shard: ShardProcess, timeout_s: float = 60.0) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            port = self._read_port(shard)
            if port is not None:
                shard.port = port
                shard.healthy = True
                return
            if not shard.alive:
                raise RuntimeError(
                    f"{shard.name} exited during startup "
                    f"(rc={shard.process.returncode}); see {shard.log_path}"
                )
            await asyncio.sleep(0.02)
        raise RuntimeError(f"{shard.name} did not announce a port; see {shard.log_path}")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the fleet, wait for every shard, bind the listener."""
        if self.fault_plan is not None:
            arm(self.fault_plan)
        for index in range(self.config.shards):
            shard = self._new_shard(f"shard-{index}", index)
            self._spawn(shard)
        for shard in list(self.shards.values()):
            await self._await_port(shard)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._health_task = asyncio.create_task(self._health_loop())
        self.started_monotonic = time.monotonic()
        if self.config.port_file:
            directory = os.path.dirname(self.config.port_file)
            if directory:
                os.makedirs(directory, exist_ok=True)
            temp_path = f"{self.config.port_file}.tmp"
            with open(temp_path, "w", encoding="utf-8") as handle:
                handle.write(f"{self.port}\n")
            os.replace(temp_path, self.config.port_file)

    @property
    def port(self) -> int:
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the fleet; with ``drain``, let every shard finish first."""
        self.draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._background:
            # Give in-flight replica writes one drain window, then cut.
            pending = list(self._background)
            _done, still_pending = await asyncio.wait(
                pending, timeout=self.config.health_timeout_s
            )
            for task in still_pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            self._background.clear()
        for shard in list(self.shards.values()):
            if shard.alive:
                shard.process.send_signal(
                    signal.SIGTERM if drain else signal.SIGKILL
                )
        deadline = time.monotonic() + self.config.drain_timeout_s
        for shard in list(self.shards.values()):
            if shard.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                await asyncio.to_thread(shard.process.wait, remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - slow drain
                shard.process.kill()
                await asyncio.to_thread(shard.process.wait)
            shard.healthy = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.fault_plan is not None and active_plan() is self.fault_plan:
            arm(None)
        if self._scratch is not None:
            self._scratch.cleanup()
            self._scratch = None
        if self._announce is not None:
            print(
                relabel_exposition(self.metrics.render(), shard="router"),
                file=self._announce,
                end="",
            )
            print("drained and stopped", file=self._announce, flush=True)

    def serve_forever(self, announce=sys.stderr, install_signals: bool = True) -> int:
        """Blocking entry point of ``repro-hls serve --shards N``."""
        self._announce = announce
        return asyncio.run(self._serve_forever(install_signals))

    async def _serve_forever(self, install_signals: bool) -> int:
        await self.start()
        self._stop_event = asyncio.Event()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        if self._announce is not None:
            print(
                f"router: {self.config.shards} shard(s) up",
                file=self._announce,
                flush=True,
            )
            print(f"serving on {self.url}", file=self._announce, flush=True)
        await self._stop_event.wait()
        await self.shutdown(drain=self._drain_on_stop)
        return 0

    def request_stop(self, drain: bool = True) -> None:
        """Ask the router loop to drain the fleet and exit."""
        self.draining = True
        self._drain_on_stop = drain
        if self._stop_event is not None:
            self._stop_event.set()

    # -- threaded harness (tests, docs, benchmarks) --------------------
    def start_in_thread(self) -> "RouterHandle":
        """Run this router on a dedicated event-loop thread."""
        ready = threading.Event()
        failure: Dict[str, BaseException] = {}

        def _runner() -> None:
            try:
                asyncio.run(self._thread_main(ready))
            except BaseException as error:  # pragma: no cover - startup bugs
                failure["error"] = error
                ready.set()

        thread = threading.Thread(target=_runner, name="repro-router", daemon=True)
        thread.start()
        ready.wait(timeout=120)
        if "error" in failure:
            raise RuntimeError("router failed to start") from failure["error"]
        return RouterHandle(self, thread)

    async def _thread_main(self, ready: threading.Event) -> None:
        self._announce = None
        await self.start()
        self._stop_event = asyncio.Event()
        self._thread_loop = asyncio.get_running_loop()
        ready.set()
        await self._stop_event.wait()
        await self.shutdown(drain=self._drain_on_stop)

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while True:
            # Reshards mutate ``self.shards`` between awaits — iterate a
            # snapshot.
            for shard in list(self.shards.values()):
                if self.draining:
                    return
                await self._check(shard)
            await asyncio.sleep(self.config.health_interval_s)

    def _log(self, message: str) -> None:
        if self._announce is not None:
            print(f"router: {message}", file=self._announce, flush=True)

    def _demote(self, shard: ShardProcess) -> None:
        """Crash-loop verdict: take the shard out of service for good."""
        shard.demoted = True
        shard.healthy = False
        if shard.name in self.ring:
            self.ring.remove(shard.name)
        self.metrics.incr("shard_demoted", target=shard.name)
        self._log(
            f"{shard.name} demoted after {shard.rapid_deaths} rapid deaths "
            f"(< {self.config.crash_loop_window_s:g}s each); "
            "ring routes around it"
        )

    async def _check(self, shard: ShardProcess) -> None:
        if shard.demoted or shard.draining:
            return
        if not shard.alive:
            shard.healthy = False
            shard.last_health = None
            if not self.config.respawn or self.draining:
                return
            now = time.monotonic()
            if shard.death_monotonic is None:
                # First probe to notice this death: classify it and
                # *schedule* the respawn — never re-exec instantly, or a
                # poisoned shard becomes a fork bomb.
                shard.death_monotonic = now
                lifetime = (
                    now - shard.spawned_monotonic
                    if shard.spawned_monotonic is not None
                    else None
                )
                rapid = (
                    lifetime is not None
                    and lifetime < self.config.crash_loop_window_s
                )
                shard.rapid_deaths = shard.rapid_deaths + 1 if rapid else 0
                if shard.rapid_deaths >= self.config.crash_loop_threshold:
                    self._demote(shard)
                    return
                delay = 0.0
                if rapid and shard.backoff is not None:
                    delay = shard.backoff.delay(shard.rapid_deaths - 1)
                shard.respawn_delay_s = delay
                shard.respawn_gaps.append(delay)
                shard.next_respawn_monotonic = now + delay
                if rapid:
                    self._log(
                        f"{shard.name} died after {lifetime:.2f}s; respawn "
                        f"in {delay:.2f}s (rapid death {shard.rapid_deaths}"
                        f"/{self.config.crash_loop_threshold})"
                    )
                return
            if (
                shard.next_respawn_monotonic is not None
                and now < shard.next_respawn_monotonic
            ):
                return  # backoff still running
            shard.restarts += 1
            self.metrics.incr("shard_restarts", target=shard.name)
            self._spawn(shard)
            return
        if shard.port is None:
            shard.port = self._read_port(shard)
            if shard.port is None:
                return  # still booting (journal replay runs pre-listener)
        try:
            status, _headers, body = await proxy_request(
                self.config.host,
                shard.port,
                "GET",
                "/healthz",
                timeout_s=self.config.health_timeout_s,
            )
            if status != 200:
                raise ConnectionError(f"healthz answered {status}")
            shard.last_health = json.loads(body.decode("utf-8"))
            shard.healthy = True
            shard.failures = 0
        except (OSError, asyncio.TimeoutError, ValueError):
            shard.failures += 1
            if shard.failures >= self.config.health_failures:
                shard.healthy = False

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _candidates(self, fingerprint: str) -> List[ShardProcess]:
        """Forwarding order for a key: healthy shards first, ring order."""
        if not len(self.ring):
            return []  # every shard demoted/removed
        preference = [
            self.shards[name]
            for name in self.ring.ordered(fingerprint)
            if name in self.shards
        ]
        usable = [s for s in preference if s.port is not None and s.alive]
        healthy = [s for s in usable if s.healthy]
        suspect = [s for s in usable if not s.healthy]
        return healthy + suspect

    async def _forward(
        self,
        shard: ShardProcess,
        method: str,
        target: str,
        body: bytes = b"",
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One forwarding attempt; transport failures demote the shard."""
        try:
            fault_point("router.forward")
            result = await proxy_request(
                self.config.host,
                shard.port,
                method,
                target,
                body=body,
                timeout_s=self.config.forward_timeout_s,
            )
        except (OSError, asyncio.TimeoutError, InjectedFault):
            self.metrics.incr("router_forward_errors", target=shard.name)
            shard.failures += 1
            if not shard.alive or shard.failures >= self.config.health_failures:
                shard.healthy = False
            raise
        self.metrics.incr("router_forwards", target=shard.name)
        return result

    @staticmethod
    def _target(path: str, query: Mapping[str, str]) -> str:
        return f"{path}?{urlencode(dict(query))}" if query else path

    def _remember_job(self, job: Job) -> None:
        self.jobs[job.id] = job
        self._job_order.append(job.id)
        while len(self._job_order) > self.config.job_history:
            self.jobs.pop(self._job_order.pop(0), None)

    def _remember_location(self, payload: Any, shard: ShardProcess) -> None:
        """Pin job ids from a shard response to that shard for ``GET``s."""
        if not isinstance(payload, Mapping):
            return
        info = payload.get("job")
        if isinstance(info, Mapping) and isinstance(info.get("id"), str):
            self.job_locations[info["id"]] = shard.name
            while len(self.job_locations) > self.config.job_history:
                oldest = next(iter(self.job_locations))
                self.job_locations.pop(oldest)

    def _absorb_result(
        self, payload: Any
    ) -> Optional[Tuple[str, Optional[str], str]]:
        """Populate the shared L2 cache from a shard's finished response.

        Returns the absorbed ``(key, fingerprint, text)`` so the caller
        can fan the entry out to its replica holders.
        """
        if not isinstance(payload, Mapping):
            return None
        info = payload.get("job")
        result = payload.get("result")
        if (
            isinstance(info, Mapping)
            and info.get("status") == "done"
            and isinstance(info.get("key"), str)
            and isinstance(result, Mapping)
        ):
            # response_text() of the parsed result reproduces the exact
            # bytes the shard cached — canonical JSON both sides.
            fingerprint = info.get("fingerprint")
            if not isinstance(fingerprint, str):
                fingerprint = None
            text = response_text(result)
            self.cache.put(info["key"], text, tag=fingerprint)
            return info["key"], fingerprint, text
        return None

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------
    def _replica_names(self, fingerprint: str) -> List[str]:
        """The shards holding copies of ``fingerprint``'s results."""
        if self.config.replication < 2 or len(self.ring) < 2:
            return []
        return self.ring.ordered(fingerprint)[: self.config.replication]

    async def _put_replica(
        self, shard: ShardProcess, entries: List[Dict[str, Any]]
    ) -> bool:
        """Best-effort cache write into one shard's L1; never fatal.

        Counters move by ``len(entries)`` — they track replicated
        *results*, not POSTs, so coalescing does not skew them.
        """
        try:
            fault_point("shard.replica.put")
            await self._import_entries(shard, entries)
        except (OSError, asyncio.TimeoutError, InjectedFault):
            self.metrics.incr(
                "replica_put_errors", len(entries), target=shard.name
            )
            return False
        self.metrics.incr("replica_puts", len(entries), target=shard.name)
        return True

    def _spawn_background(self, coro) -> None:
        """Run ``coro`` off the response path; the task set keeps it
        referenced until done (cancelled wholesale at shutdown)."""
        task = asyncio.get_running_loop().create_task(coro)
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    def _queue_replica(
        self,
        key: str,
        fingerprint: Optional[str],
        text: str,
        served_by: str,
    ) -> None:
        """Buffer a fresh result for its other replica holders (RF ≥ 2).

        Synchronous and allocation-only — nothing here touches the
        network, so the response path pays nothing.  The first queued
        entry arms one flush; everything absorbed within the window
        rides the same per-target import POST.
        """
        if fingerprint is None:
            return
        entry = {"key": key, "tag": fingerprint, "text": text}
        queued = False
        for name in self._replica_names(fingerprint):
            if name == served_by:
                continue
            self._replica_buffer.setdefault(name, {})[key] = entry
            queued = True
        if queued and not self._replica_flush_scheduled:
            self._replica_flush_scheduled = True
            self._spawn_background(self._flush_replicas())

    async def _flush_replicas(self) -> None:
        """Drain the replica buffer: one cache-import POST per target."""
        await asyncio.sleep(self.config.replica_flush_s)
        self._replica_flush_scheduled = False
        buffered, self._replica_buffer = self._replica_buffer, {}
        for name, entries in buffered.items():
            shard = self.shards.get(name)
            if shard is None or shard.port is None or not shard.alive:
                continue
            await self._put_replica(shard, list(entries.values()))

    async def _probe_replicas(
        self, key: str, fingerprint: str, skip: str
    ) -> Optional[str]:
        """Read-path fall-through: ask replica holders for a cached result.

        Runs only on a router-L2 miss, before forwarding.  The forward
        target serves its own L1 anyway, so only the *other* replica
        holders are probed — this is what rescues the hottest entries
        when their owner was SIGKILLed and came back cold.
        """
        for name in self._replica_names(fingerprint):
            if name == skip:
                continue
            shard = self.shards.get(name)
            if shard is None or shard.port is None or not shard.alive:
                continue
            try:
                status, _headers, raw = await proxy_request(
                    self.config.host,
                    shard.port,
                    "GET",
                    f"/admin/cache/entry?{urlencode({'key': key})}",
                    timeout_s=self.config.health_timeout_s,
                )
            except (OSError, asyncio.TimeoutError):
                continue
            if status != 200:
                continue
            self.metrics.incr("replica_probe_hits", target=name)
            return raw.decode("utf-8")
        return None

    # ------------------------------------------------------------------
    # online reshard
    # ------------------------------------------------------------------
    async def _import_entries(
        self, shard: ShardProcess, entries: List[Dict[str, Any]]
    ) -> None:
        """POST a batch of cache entries into one shard's L1."""
        status, _headers, _raw = await proxy_request(
            self.config.host,
            shard.port,
            "POST",
            "/admin/cache/import",
            body=json.dumps({"entries": entries}).encode("utf-8"),
            timeout_s=self.config.health_timeout_s,
        )
        if status != 200:
            raise ConnectionError(f"cache import answered {status}")

    async def _fetch_cache_index(
        self, shard: ShardProcess
    ) -> List[Dict[str, str]]:
        """One shard's ``(key, tag)`` cache index; empty on any failure."""
        try:
            status, _headers, raw = await proxy_request(
                self.config.host,
                shard.port,
                "GET",
                "/admin/cache/index",
                timeout_s=self.config.health_timeout_s,
            )
            if status != 200:
                return []
            payload = json.loads(raw.decode("utf-8"))
        except (OSError, asyncio.TimeoutError, ValueError):
            return []
        return [
            item
            for item in payload.get("entries", ())
            if isinstance(item, Mapping)
            and isinstance(item.get("key"), str)
            and isinstance(item.get("tag"), str)
        ]

    async def _export_entries(
        self, shard: ShardProcess, keys: List[str]
    ) -> List[Dict[str, Any]]:
        """Pull full cache entries for ``keys`` from one shard."""
        try:
            status, _headers, raw = await proxy_request(
                self.config.host,
                shard.port,
                "POST",
                "/admin/cache/export",
                body=json.dumps({"keys": keys}).encode("utf-8"),
                timeout_s=self.config.health_timeout_s,
            )
            if status != 200:
                return []
            payload = json.loads(raw.decode("utf-8"))
        except (OSError, asyncio.TimeoutError, ValueError):
            return []
        return [
            item
            for item in payload.get("entries", ())
            if isinstance(item, Mapping)
            and isinstance(item.get("key"), str)
            and isinstance(item.get("text"), str)
            and isinstance(item.get("tag"), str)
        ]

    async def _relocated_entries(
        self, after: HashRing
    ) -> List[Dict[str, Any]]:
        """Every cached entry whose owner changes under the ``after`` ring.

        Sources both tiers: the router's own L2 (text already in hand)
        and each live shard's L1 via its cache-index/export endpoints.
        Deduplicated by cache key — one push per entry no matter how
        many tiers hold it.
        """
        tagged = list(self.cache.tagged_entries())
        tags = {tag for _key, tag, _text in tagged}
        indexes: List[Tuple[ShardProcess, List[Dict[str, str]]]] = []
        for shard in list(self.shards.values()):
            if shard.port is None or not shard.alive or shard.demoted:
                continue
            index = await self._fetch_cache_index(shard)
            indexes.append((shard, index))
            tags.update(item["tag"] for item in index)
        moved = moved_keys(self.ring, after, sorted(tags))
        entries: Dict[str, Dict[str, Any]] = {}
        for key, tag, text in tagged:
            if tag in moved:
                entries[key] = {"key": key, "tag": tag, "text": text}
        for shard, index in indexes:
            wanted = [
                item["key"]
                for item in index
                if item["tag"] in moved and item["key"] not in entries
            ]
            if not wanted:
                continue
            for item in await self._export_entries(shard, wanted):
                entries.setdefault(item["key"], dict(item))
        return list(entries.values())

    async def _handoff(self, after: HashRing, absorb: bool = False) -> int:
        """Warm-push every relocated cache entry to its new owner.

        Runs *before* the live ring flips to ``after``, so the new
        owners are already warm when routing changes.  ``absorb`` also
        copies each relocated entry into the router L2 — insurance when
        the old owner is about to exit.  Push failures are counted, not
        fatal: a lost handoff entry costs a future cache hit, never a
        result.
        """
        started = time.monotonic()
        entries = await self._relocated_entries(after)
        by_owner: Dict[str, List[Dict[str, Any]]] = {}
        for entry in entries:
            if absorb:
                self.cache.put(entry["key"], entry["text"], tag=entry["tag"])
            by_owner.setdefault(after.node_for(entry["tag"]), []).append(entry)
        pushed = 0
        for owner in sorted(by_owner):
            batch = by_owner[owner]
            shard = self.shards.get(owner)
            if shard is None or shard.port is None or not shard.alive:
                self.metrics.incr(
                    "handoff_errors", amount=len(batch), target=owner
                )
                continue
            for start in range(0, len(batch), 64):
                chunk = batch[start:start + 64]
                try:
                    fault_point("router.handoff")
                    await self._import_entries(shard, chunk)
                except (OSError, asyncio.TimeoutError, InjectedFault):
                    self.metrics.incr(
                        "handoff_errors", amount=len(chunk), target=owner
                    )
                    continue
                pushed += len(chunk)
                self.metrics.incr(
                    "handoff_entries", amount=len(chunk), target=owner
                )
        self.metrics.observe("handoff_seconds", time.monotonic() - started)
        return pushed

    async def add_shard(self) -> Dict[str, Any]:
        """Boot a new shard, warm-hand off its keys, then flip the ring."""
        name = f"shard-{self._next_index}"
        index = self._next_index
        self._next_index += 1
        shard = self._new_shard(name, index)
        self._spawn(shard)
        await self._await_port(shard)
        after = self.ring.grown(name)
        moved = await self._handoff(after)
        self.ring = after
        self.metrics.incr("reshards", action="add")
        self._log(
            f"{name} joined the ring ({len(self.ring)} shards); "
            f"{moved} cache entries handed off"
        )
        return {
            "action": "add",
            "shard": name,
            "ring": list(self.ring.nodes),
            "handoff_entries": moved,
        }

    async def remove_shard(self, name: Any) -> Dict[str, Any]:
        """Hand off a shard's keys, drain it, and retire the process."""
        if not isinstance(name, str) or name not in self.shards:
            raise ValueError(f"unknown shard {name!r}")
        shard = self.shards[name]
        moved = 0
        if name in self.ring:
            if len(self.ring) == 1:
                raise ValueError("cannot remove the last shard on the ring")
            after = self.ring.shrunk(name)
            moved = await self._handoff(after, absorb=True)
            self.ring = after
        shard.draining = True
        shard.healthy = False
        await self._drain_shard(shard)
        self.metrics.remove_gauge(
            "shard_respawn_backoff_seconds", target=name
        )
        self.shards.pop(name, None)
        for job_id, location in list(self.job_locations.items()):
            if location == name:
                self.job_locations.pop(job_id, None)
        self.metrics.incr("reshards", action="remove")
        self._log(
            f"{name} drained and left the ring ({len(self.ring)} shards); "
            f"{moved} cache entries handed off"
        )
        return {
            "action": "remove",
            "shard": name,
            "ring": list(self.ring.nodes),
            "handoff_entries": moved,
        }

    async def _fetch_health(
        self, shard: ShardProcess
    ) -> Optional[Dict[str, Any]]:
        if shard.port is None:
            return None
        try:
            status, _headers, raw = await proxy_request(
                self.config.host,
                shard.port,
                "GET",
                "/healthz",
                timeout_s=self.config.health_timeout_s,
            )
            if status != 200:
                return None
            return json.loads(raw.decode("utf-8"))
        except (OSError, asyncio.TimeoutError, ValueError):
            return None

    async def _drain_shard(self, shard: ShardProcess) -> None:
        """Let in-flight work finish, then SIGTERM (drain + compaction).

        The ring has already flipped, so no new work reaches the shard;
        this waits for its queue and in-flight table to empty before the
        graceful shutdown that compacts its journal.
        """
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            if not shard.alive:
                return
            health = await self._fetch_health(shard)
            if (
                health is not None
                and health.get("queue_depth") == 0
                and health.get("inflight") == 0
            ):
                break
            await asyncio.sleep(0.05)
        if shard.alive:
            shard.process.send_signal(signal.SIGTERM)
            remaining = max(0.1, deadline - time.monotonic())
            try:
                await asyncio.to_thread(shard.process.wait, remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - slow drain
                shard.process.kill()
                await asyncio.to_thread(shard.process.wait)

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        method = route = "-"
        status = 500
        try:
            try:
                request = await read_request(reader, self.config.max_body_bytes)
                if request is None:
                    return
                method, path, query, body = request
                route, (status, headers, payload) = await self._route(
                    method, path, query, body
                )
            except ProtocolError as error:
                status, headers, payload = error.status, {}, {"error": str(error)}
            except JobSpecError as error:
                status, headers, payload = 400, {}, {"error": str(error)}
            except Exception as error:  # pragma: no cover - defensive
                status, headers, payload = (
                    500,
                    {},
                    {"error": f"{type(error).__name__}: {error}"},
                )
            await write_response(writer, status, headers, payload)
        finally:
            self.metrics.incr(
                "http_requests", method=method, route=route, status=str(status)
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _route(
        self,
        method: str,
        path: str,
        query: Mapping[str, str],
        body: bytes,
    ) -> Tuple[str, Tuple[int, Dict[str, str], Any]]:
        if path in ("/v1/schedule", "/v1/synth"):
            if method != "POST":
                return path, (405, {}, {"error": "POST required"})
            algorithm = "mfs" if path == "/v1/schedule" else "mfsa"
            return path, await self._handle_submit(algorithm, path, query, body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return "/v1/jobs", (405, {}, {"error": "GET required"})
            return "/v1/jobs", await self._handle_job(path, path[len("/v1/jobs/"):])
        if path == "/healthz":
            return path, (200, {}, self._health())
        if path == "/metrics":
            return path, (
                200,
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                await self._merged_metrics(),
            )
        if path == "/admin/shards":
            if method == "GET":
                return path, (200, {}, self._admin_status())
            if method != "POST":
                return path, (405, {}, {"error": "GET or POST required"})
            return path, await self._handle_admin_shards(body)
        return "-", (404, {}, {"error": f"no route for {method} {path}"})

    def _admin_status(self) -> Dict[str, Any]:
        return {
            "ring": list(self.ring.nodes),
            "replication": self.config.replication,
            "shards": {
                name: shard.describe() for name, shard in self.shards.items()
            },
        }

    async def _handle_admin_shards(
        self, body: bytes
    ) -> Tuple[int, Dict[str, str], Any]:
        if self.draining:
            return 503, {}, {"error": "draining; not accepting admin work"}
        try:
            parsed = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(400, f"request body is not JSON: {error}")
        action = parsed.get("action") if isinstance(parsed, Mapping) else None
        if action not in ("add", "remove"):
            return 400, {}, {"error": "'action' must be 'add' or 'remove'"}
        if self._reshard_lock.locked():
            return 409, {}, {"error": "a reshard is already in progress"}
        async with self._reshard_lock:
            if action == "add":
                return 200, {}, await self.add_shard()
            try:
                result = await self.remove_shard(parsed.get("shard"))
            except ValueError as error:
                return 400, {}, {"error": str(error)}
            return 200, {}, result

    async def _handle_submit(
        self, algorithm: str, path: str, query: Mapping[str, str], body: bytes
    ) -> Tuple[int, Dict[str, str], Any]:
        if self.draining:
            return 503, {}, {"error": "draining; not accepting new work"}
        try:
            parsed = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(400, f"request body is not JSON: {error}")
        # Validate at the edge: a malformed design 400s here without
        # burning a forward, and normalisation gives the routing key.
        spec = normalize_spec(
            algorithm,
            parsed,
            verify=_query_flag(query, "verify"),
            trace=_query_flag(query, "trace"),
        )
        key, fingerprint = key_and_fingerprint(spec)

        cached = self.cache.get(key)
        if cached is None:
            candidates = self._candidates(fingerprint)
            if not candidates:
                return 503, {}, {"error": "no shard available"}
            # L2 missed: before recomputing, ask the *other* replica
            # holders (the forward target answers from its own L1).  A
            # hit is read-repaired into the L2 and the forward target.
            cached = await self._probe_replicas(
                key, fingerprint, skip=candidates[0].name
            )
            if cached is not None:
                self.cache.put(key, cached, tag=fingerprint)
                await self._put_replica(
                    candidates[0],
                    [{"key": key, "tag": fingerprint, "text": cached}],
                )
        if cached is not None:
            job = Job(spec, key, timeout_s=None, loop=asyncio.get_running_loop())
            job.fingerprint = fingerprint
            job.cache = "hit"
            job.mark_running()
            job.finish(True, cached)
            self._remember_job(job)
            info = job.describe()
            info["shard"] = "router"
            if _query_flag(query, "wait"):
                return 200, {}, {"job": info, "result": json.loads(cached)}
            return 202, {}, {"job": info}

        owner = self.ring.node_for(fingerprint)
        target = self._target(path, query)
        last_error: Optional[BaseException] = None
        for shard in candidates:
            try:
                status, headers, raw = await self._forward(
                    shard, "POST", target, body
                )
            except (OSError, asyncio.TimeoutError, InjectedFault) as error:
                last_error = error
                continue
            if shard.name != owner:
                self.metrics.incr("router_failovers")
            return await self._relay(status, headers, raw, shard)
        return 503, {}, {
            "error": f"no healthy shard for this key ({last_error})",
        }

    async def _relay(
        self,
        status: int,
        headers: Mapping[str, str],
        raw: bytes,
        shard: ShardProcess,
    ) -> Tuple[int, Dict[str, str], Any]:
        """Pass a shard's JSON response through, annotated and absorbed."""
        out_headers: Dict[str, str] = {}
        if "retry-after" in headers:
            out_headers["Retry-After"] = headers["retry-after"]
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return status, out_headers, raw
        self._remember_location(payload, shard)
        if status == 200:
            absorbed = self._absorb_result(payload)
            if absorbed is not None:
                # Replica writes never sit on the response path: the
                # result is buffered here (pure dict ops) and flushed
                # in coalesced per-target batches off-path.  Awaiting
                # the POST inline measured >60% throughput cost —
                # benchmarks/bench_reshard.py keeps the budget honest.
                key, fingerprint, text = absorbed
                self._queue_replica(
                    key, fingerprint, text, served_by=shard.name
                )
        if isinstance(payload, Mapping) and isinstance(payload.get("job"), Mapping):
            payload = dict(payload)
            payload["job"] = dict(payload["job"])
            payload["job"]["shard"] = shard.name
        return status, out_headers, payload

    async def _handle_job(
        self, path: str, tail: str
    ) -> Tuple[int, Dict[str, str], Any]:
        job_id, _sep, sub = tail.partition("/")
        job = self.jobs.get(job_id)
        if job is not None:
            text = job.response_text
            if sub == "result":
                if text is None:  # pragma: no cover - router jobs are terminal
                    return 404, {}, {"error": f"job {job_id} has no result yet"}
                return 200, {"X-Raw-Body": "1"}, text
            if sub:
                return 404, {}, {"error": f"unknown job subresource {sub!r}"}
            info = job.describe()
            info["shard"] = "router"
            response: Dict[str, Any] = {"job": info}
            if text is not None:
                response["result"] = json.loads(text)
            return 200, {}, response

        # Try the shard that admitted the id, then every other shard —
        # after a crash the id may only exist in a replayed journal.
        ordered: List[ShardProcess] = []
        located = self.job_locations.get(job_id)
        if located is not None and located in self.shards:
            ordered.append(self.shards[located])
        ordered += [s for s in self.shards.values() if s not in ordered]
        last_status = 404
        for shard in ordered:
            if shard.port is None or not shard.alive:
                continue
            try:
                status, headers, raw = await self._forward(shard, "GET", path)
            except (OSError, asyncio.TimeoutError, InjectedFault):
                continue
            if status == 404:
                last_status = status
                continue
            if sub == "result":
                # Raw bytes straight through: byte-identity is the
                # contract on this endpoint.
                return status, {"X-Raw-Body": "1"}, raw.decode("utf-8")
            self.job_locations[job_id] = shard.name
            return await self._relay(status, headers, raw, shard)
        return last_status, {}, {"error": f"unknown job {job_id!r}"}

    def _health(self) -> Dict[str, Any]:
        uptime = (
            time.monotonic() - self.started_monotonic
            if self.started_monotonic is not None
            else 0.0
        )
        return {
            "status": "draining" if self.draining else "ok",
            "role": "router",
            "ring": list(self.ring.nodes),
            "replication": self.config.replication,
            "shards": {
                name: shard.describe() for name, shard in self.shards.items()
            },
            "healthy_shards": sum(1 for s in self.shards.values() if s.healthy),
            "cache_entries": len(self.cache),
            "uptime_seconds": round(uptime, 3),
        }

    async def _merged_metrics(self) -> str:
        """Fleet exposition: router series + every reachable shard's."""
        parts = [relabel_exposition(self.metrics.render(), shard="router")]

        async def _scrape(shard: ShardProcess) -> Optional[str]:
            if shard.port is None or not shard.alive:
                return None
            try:
                status, _headers, body = await self._forward(
                    shard, "GET", "/metrics"
                )
            except (OSError, asyncio.TimeoutError, InjectedFault):
                return None
            if status != 200:
                return None
            return relabel_exposition(body.decode("utf-8"), shard=shard.name)

        scrapes = await asyncio.gather(
            *(_scrape(shard) for shard in list(self.shards.values()))
        )
        parts += [scrape for scrape in scrapes if scrape]
        return merge_expositions(parts)


class RouterHandle:
    """Control handle for a :meth:`ShardRouter.start_in_thread` instance."""

    def __init__(self, router: ShardRouter, thread: threading.Thread) -> None:
        self.router = router
        self._thread = thread

    @property
    def url(self) -> str:
        return self.router.url

    @property
    def port(self) -> int:
        return self.router.port

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Drain (optionally) the fleet and stop the router thread."""
        loop = getattr(self.router, "_thread_loop", None)
        if loop is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(self.router.request_stop, drain)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "RouterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
