"""The shard router: a consistent-hash front end over worker shards.

``repro-hls serve --shards N`` promotes the service from one asyncio
loop to a small fleet: the router spawns N :class:`~repro.serve.app.
ServeApp` worker subprocesses (each with its own event loop, warm
:class:`~repro.sweep.SweepExecutor` pool and — under ``--state-dir`` —
its own write-ahead journal in ``shard-<i>/``) and fronts them behind
the *unchanged* HTTP API, so the client, the CLI and every docs example
work identically against one process or a fleet::

                          ┌────────────────────┐
    client ──▶ router ──▶ │ L2 result cache?   │── hit ──▶ response
               │          └────────────────────┘
               │ miss: HashRing.ordered(dfg_fingerprint)
               ├──▶ shard-0 (ServeApp: L1 cache, pool, journal)
               ├──▶ shard-1
               └──▶ shard-<n>    … first *healthy* shard in ring order

Design choices, and why:

* **Routing key = the canonical DFG fingerprint** (:func:`repro.dfg.
  fingerprint.dfg_fingerprint`), not the full cache key — all parameter
  sweeps over one design land on the same shard, so its warm worker
  caches (timing model, cell library) and L1 result cache do maximal
  work.
* **Two cache tiers.**  Each shard keeps its L1
  :class:`~repro.serve.cache.ResultCache`; the router keeps a shared L2
  keyed by the same content address and populated from shard responses.
  A result computed by one shard is therefore served as a cache hit to
  *any* later client, even when failover routes the request to a
  different shard — and byte-identically, because both tiers store
  :func:`~repro.serve.jobs.response_text` output.
* **Failover is re-routing, not retry logic in clients.**  A health
  loop polls every shard; a dead or unresponsive shard is skipped and
  the request forwarded to the next shard in the key's ring order
  (deterministic fallback).  Crashed shards are respawned on their own
  state dir, so journal replay restores their crash window
  byte-identically (docs/ROBUSTNESS.md).
* **One ``/metrics`` for the fleet.**  The router scrapes each shard
  and re-emits the union with a ``shard="shard-<i>"`` label (its own
  series carry ``shard="router"``).

Graceful drain mirrors the single-process story: SIGTERM stops
admission (503), SIGTERMs every shard (each drains its own queue and
compacts its journal), then the router exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import urlencode

from repro.dfg.fingerprint import dfg_fingerprint
from repro.io.jsonio import dfg_from_json
from repro.resilience.faults import (
    FaultPlan,
    InjectedFault,
    active_plan,
    arm,
    fault_point,
)
from repro.serve.cache import ResultCache
from repro.serve.hashring import HashRing
from repro.serve.httpcore import (
    ProtocolError,
    flag as _query_flag,
    proxy_request,
    read_request,
    write_response,
)
from repro.serve.jobs import JobSpecError, cache_key, normalize_spec, response_text
from repro.serve.metrics import Metrics, merge_expositions, relabel_exposition
from repro.serve.queue import Job


@dataclass
class RouterConfig:
    """Tunables of one shard-router instance (see docs/SERVICE.md)."""

    host: str = "127.0.0.1"
    port: int = 8421
    #: Worker shards to spawn.  ``--shards 1`` still runs the router in
    #: front of one shard (useful for like-for-like benchmarking).
    shards: int = 2
    #: Root of the fleet's crash-safe state; each shard journals under
    #: ``<state_dir>/shard-<i>/``.  ``None`` disables durability (the
    #: router still needs scratch space for port files and shard logs,
    #: which it takes from a private temp dir).
    state_dir: Optional[str] = None
    #: Shared L2 result-cache capacity at the router.
    cache_entries: int = 4096
    job_history: int = 2048
    max_body_bytes: int = 8 * 1024 * 1024
    #: Seconds between shard health probes; a shard is unhealthy after
    #: ``health_failures`` consecutive probe failures and is respawned
    #: (same state dir → journal replay) when its process has exited.
    health_interval_s: float = 0.25
    health_timeout_s: float = 2.0
    health_failures: int = 2
    respawn: bool = True
    #: Budget for one forwarded request (covers ``?wait=1`` synthesis).
    forward_timeout_s: float = 120.0
    #: Budget for every shard to drain after fleet SIGTERM.
    drain_timeout_s: float = 30.0
    #: Extra ``repro-hls serve`` flags forwarded verbatim to every shard
    #: (tuning knobs: ``--serial``, ``--max-batch``, ``--faults``, …).
    shard_args: Tuple[str, ...] = ()
    port_file: Optional[str] = None
    #: Router-level fault plan (``router.forward`` site — chaos only).
    faults: Optional[str] = None
    fault_seed: int = 0


class ShardProcess:
    """One worker-shard subprocess as the router sees it."""

    def __init__(self, name: str, index: int, home: str) -> None:
        self.name = name
        self.index = index
        #: Shard-private directory: port file, log, and (under
        #: ``--state-dir``) the write-ahead journal.
        self.home = home
        self.port_file = os.path.join(home, "port")
        self.log_path = os.path.join(home, "shard.log")
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.healthy = False
        self.failures = 0
        self.restarts = 0
        self.last_health: Optional[Dict[str, Any]] = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def describe(self) -> Dict[str, Any]:
        info: Dict[str, Any] = {
            "status": "ok" if self.healthy else ("starting" if self.alive else "down"),
            "port": self.port,
            "restarts": self.restarts,
        }
        if self.last_health is not None:
            info["health"] = self.last_health
        return info


class ShardRouter:
    """Front end of a sharded fleet: routing, shared cache, supervision."""

    def __init__(self, config: Optional[RouterConfig] = None, **overrides) -> None:
        if config is None:
            config = RouterConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a RouterConfig or keyword overrides")
        if config.shards < 1:
            raise ValueError(f"shards must be >= 1, got {config.shards}")
        self.config = config
        self.metrics = Metrics()
        self.cache = ResultCache(config.cache_entries, metrics=self.metrics)
        self.ring = HashRing(f"shard-{i}" for i in range(config.shards))
        self.shards: Dict[str, ShardProcess] = {}
        #: Router-answered jobs (shared-cache hits), by id.
        self.jobs: "Dict[str, Job]" = {}
        self._job_order: List[str] = []
        #: Which shard answered which job id (forwarded submissions).
        self.job_locations: Dict[str, str] = {}
        self.fault_plan: Optional[FaultPlan] = None
        if config.faults:
            self.fault_plan = FaultPlan.parse(config.faults, seed=config.fault_seed)
        self.draining = False
        self.started_monotonic: Optional[float] = None
        self._scratch: Optional[tempfile.TemporaryDirectory] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._health_task: Optional[asyncio.Task] = None
        self._drain_on_stop = True
        self._announce = sys.stderr
        self._describe_metrics()

    def _describe_metrics(self) -> None:
        m = self.metrics
        m.describe("cache_hits", "Shared (L2) result-cache hits at the router.")
        m.describe("cache_misses", "Shared (L2) result-cache misses at the router.")
        m.describe("cache_evictions", "LRU evictions from the shared cache.")
        m.describe("http_requests", "HTTP requests, by method/route/status.")
        m.describe("router_forwards", "Requests forwarded, by target shard.")
        m.describe("router_forward_errors", "Forward attempts that failed, by target shard.")
        m.describe("router_failovers", "Submissions re-routed off their owner shard.")
        m.describe("shard_restarts", "Shard subprocesses respawned, by target shard.")
        m.gauge("shards_total", lambda: len(self.shards))
        m.gauge(
            "healthy_shards",
            lambda: sum(1 for s in self.shards.values() if s.healthy),
        )
        m.gauge("cache_entries", lambda: len(self.cache))
        m.gauge("draining", lambda: 1 if self.draining else 0)

    # ------------------------------------------------------------------
    # shard lifecycle
    # ------------------------------------------------------------------
    def _shard_home(self, name: str) -> str:
        root = self.config.state_dir
        if root is None:
            if self._scratch is None:
                self._scratch = tempfile.TemporaryDirectory(prefix="repro-router-")
            root = self._scratch.name
        home = os.path.join(root, name)
        os.makedirs(home, exist_ok=True)
        return home

    def _shard_command(self, shard: ShardProcess) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.config.host,
            "--port",
            "0",
            "--port-file",
            shard.port_file,
        ]
        if self.config.state_dir is not None:
            command += ["--state-dir", shard.home]
        command += list(self.config.shard_args)
        return command

    def _spawn(self, shard: ShardProcess) -> None:
        """Start (or restart) one shard subprocess, stderr → its log."""
        for stale in (shard.port_file, f"{shard.port_file}.tmp"):
            try:
                os.unlink(stale)
            except FileNotFoundError:
                pass
        env = dict(os.environ)
        # The shard must import repro from the same tree as the router,
        # regardless of how the router itself was launched.
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        with open(shard.log_path, "ab") as log:
            shard.process = subprocess.Popen(
                self._shard_command(shard),
                stdin=subprocess.DEVNULL,
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )
        shard.port = None
        shard.healthy = False
        shard.failures = 0

    def _read_port(self, shard: ShardProcess) -> Optional[int]:
        try:
            with open(shard.port_file, "r", encoding="utf-8") as handle:
                text = handle.read().strip()
            return int(text) if text else None
        except (FileNotFoundError, ValueError):
            return None

    async def _await_port(self, shard: ShardProcess, timeout_s: float = 60.0) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            port = self._read_port(shard)
            if port is not None:
                shard.port = port
                shard.healthy = True
                return
            if not shard.alive:
                raise RuntimeError(
                    f"{shard.name} exited during startup "
                    f"(rc={shard.process.returncode}); see {shard.log_path}"
                )
            await asyncio.sleep(0.02)
        raise RuntimeError(f"{shard.name} did not announce a port; see {shard.log_path}")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the fleet, wait for every shard, bind the listener."""
        if self.fault_plan is not None:
            arm(self.fault_plan)
        for index in range(self.config.shards):
            name = f"shard-{index}"
            shard = ShardProcess(name, index, self._shard_home(name))
            self.shards[name] = shard
            self._spawn(shard)
        for shard in self.shards.values():
            await self._await_port(shard)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._health_task = asyncio.create_task(self._health_loop())
        self.started_monotonic = time.monotonic()
        if self.config.port_file:
            directory = os.path.dirname(self.config.port_file)
            if directory:
                os.makedirs(directory, exist_ok=True)
            temp_path = f"{self.config.port_file}.tmp"
            with open(temp_path, "w", encoding="utf-8") as handle:
                handle.write(f"{self.port}\n")
            os.replace(temp_path, self.config.port_file)

    @property
    def port(self) -> int:
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the fleet; with ``drain``, let every shard finish first."""
        self.draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for shard in self.shards.values():
            if shard.alive:
                shard.process.send_signal(
                    signal.SIGTERM if drain else signal.SIGKILL
                )
        deadline = time.monotonic() + self.config.drain_timeout_s
        for shard in self.shards.values():
            if shard.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                await asyncio.to_thread(shard.process.wait, remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - slow drain
                shard.process.kill()
                await asyncio.to_thread(shard.process.wait)
            shard.healthy = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.fault_plan is not None and active_plan() is self.fault_plan:
            arm(None)
        if self._scratch is not None:
            self._scratch.cleanup()
            self._scratch = None
        if self._announce is not None:
            print(
                relabel_exposition(self.metrics.render(), shard="router"),
                file=self._announce,
                end="",
            )
            print("drained and stopped", file=self._announce, flush=True)

    def serve_forever(self, announce=sys.stderr, install_signals: bool = True) -> int:
        """Blocking entry point of ``repro-hls serve --shards N``."""
        self._announce = announce
        return asyncio.run(self._serve_forever(install_signals))

    async def _serve_forever(self, install_signals: bool) -> int:
        await self.start()
        self._stop_event = asyncio.Event()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        if self._announce is not None:
            print(
                f"router: {self.config.shards} shard(s) up",
                file=self._announce,
                flush=True,
            )
            print(f"serving on {self.url}", file=self._announce, flush=True)
        await self._stop_event.wait()
        await self.shutdown(drain=self._drain_on_stop)
        return 0

    def request_stop(self, drain: bool = True) -> None:
        """Ask the router loop to drain the fleet and exit."""
        self.draining = True
        self._drain_on_stop = drain
        if self._stop_event is not None:
            self._stop_event.set()

    # -- threaded harness (tests, docs, benchmarks) --------------------
    def start_in_thread(self) -> "RouterHandle":
        """Run this router on a dedicated event-loop thread."""
        ready = threading.Event()
        failure: Dict[str, BaseException] = {}

        def _runner() -> None:
            try:
                asyncio.run(self._thread_main(ready))
            except BaseException as error:  # pragma: no cover - startup bugs
                failure["error"] = error
                ready.set()

        thread = threading.Thread(target=_runner, name="repro-router", daemon=True)
        thread.start()
        ready.wait(timeout=120)
        if "error" in failure:
            raise RuntimeError("router failed to start") from failure["error"]
        return RouterHandle(self, thread)

    async def _thread_main(self, ready: threading.Event) -> None:
        self._announce = None
        await self.start()
        self._stop_event = asyncio.Event()
        self._thread_loop = asyncio.get_running_loop()
        ready.set()
        await self._stop_event.wait()
        await self.shutdown(drain=self._drain_on_stop)

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while True:
            for shard in self.shards.values():
                if self.draining:
                    return
                await self._check(shard)
            await asyncio.sleep(self.config.health_interval_s)

    async def _check(self, shard: ShardProcess) -> None:
        if not shard.alive:
            shard.healthy = False
            shard.last_health = None
            if self.config.respawn and not self.draining:
                shard.restarts += 1
                self.metrics.incr("shard_restarts", target=shard.name)
                self._spawn(shard)
            return
        if shard.port is None:
            shard.port = self._read_port(shard)
            if shard.port is None:
                return  # still booting (journal replay runs pre-listener)
        try:
            status, _headers, body = await proxy_request(
                self.config.host,
                shard.port,
                "GET",
                "/healthz",
                timeout_s=self.config.health_timeout_s,
            )
            if status != 200:
                raise ConnectionError(f"healthz answered {status}")
            shard.last_health = json.loads(body.decode("utf-8"))
            shard.healthy = True
            shard.failures = 0
        except (OSError, asyncio.TimeoutError, ValueError):
            shard.failures += 1
            if shard.failures >= self.config.health_failures:
                shard.healthy = False

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _candidates(self, fingerprint: str) -> List[ShardProcess]:
        """Forwarding order for a key: healthy shards first, ring order."""
        preference = [self.shards[name] for name in self.ring.ordered(fingerprint)]
        usable = [s for s in preference if s.port is not None and s.alive]
        healthy = [s for s in usable if s.healthy]
        suspect = [s for s in usable if not s.healthy]
        return healthy + suspect

    async def _forward(
        self,
        shard: ShardProcess,
        method: str,
        target: str,
        body: bytes = b"",
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One forwarding attempt; transport failures demote the shard."""
        try:
            fault_point("router.forward")
            result = await proxy_request(
                self.config.host,
                shard.port,
                method,
                target,
                body=body,
                timeout_s=self.config.forward_timeout_s,
            )
        except (OSError, asyncio.TimeoutError, InjectedFault):
            self.metrics.incr("router_forward_errors", target=shard.name)
            shard.failures += 1
            if not shard.alive or shard.failures >= self.config.health_failures:
                shard.healthy = False
            raise
        self.metrics.incr("router_forwards", target=shard.name)
        return result

    @staticmethod
    def _target(path: str, query: Mapping[str, str]) -> str:
        return f"{path}?{urlencode(dict(query))}" if query else path

    def _remember_job(self, job: Job) -> None:
        self.jobs[job.id] = job
        self._job_order.append(job.id)
        while len(self._job_order) > self.config.job_history:
            self.jobs.pop(self._job_order.pop(0), None)

    def _remember_location(self, payload: Any, shard: ShardProcess) -> None:
        """Pin job ids from a shard response to that shard for ``GET``s."""
        if not isinstance(payload, Mapping):
            return
        info = payload.get("job")
        if isinstance(info, Mapping) and isinstance(info.get("id"), str):
            self.job_locations[info["id"]] = shard.name
            while len(self.job_locations) > self.config.job_history:
                oldest = next(iter(self.job_locations))
                self.job_locations.pop(oldest)

    def _absorb_result(self, payload: Any) -> None:
        """Populate the shared L2 cache from a shard's finished response."""
        if not isinstance(payload, Mapping):
            return
        info = payload.get("job")
        result = payload.get("result")
        if (
            isinstance(info, Mapping)
            and info.get("status") == "done"
            and isinstance(info.get("key"), str)
            and isinstance(result, Mapping)
        ):
            # response_text() of the parsed result reproduces the exact
            # bytes the shard cached — canonical JSON both sides.
            self.cache.put(info["key"], response_text(result))

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        method = route = "-"
        status = 500
        try:
            try:
                request = await read_request(reader, self.config.max_body_bytes)
                if request is None:
                    return
                method, path, query, body = request
                route, (status, headers, payload) = await self._route(
                    method, path, query, body
                )
            except ProtocolError as error:
                status, headers, payload = error.status, {}, {"error": str(error)}
            except JobSpecError as error:
                status, headers, payload = 400, {}, {"error": str(error)}
            except Exception as error:  # pragma: no cover - defensive
                status, headers, payload = (
                    500,
                    {},
                    {"error": f"{type(error).__name__}: {error}"},
                )
            await write_response(writer, status, headers, payload)
        finally:
            self.metrics.incr(
                "http_requests", method=method, route=route, status=str(status)
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _route(
        self,
        method: str,
        path: str,
        query: Mapping[str, str],
        body: bytes,
    ) -> Tuple[str, Tuple[int, Dict[str, str], Any]]:
        if path in ("/v1/schedule", "/v1/synth"):
            if method != "POST":
                return path, (405, {}, {"error": "POST required"})
            algorithm = "mfs" if path == "/v1/schedule" else "mfsa"
            return path, await self._handle_submit(algorithm, path, query, body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return "/v1/jobs", (405, {}, {"error": "GET required"})
            return "/v1/jobs", await self._handle_job(path, path[len("/v1/jobs/"):])
        if path == "/healthz":
            return path, (200, {}, self._health())
        if path == "/metrics":
            return path, (
                200,
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                await self._merged_metrics(),
            )
        return "-", (404, {}, {"error": f"no route for {method} {path}"})

    async def _handle_submit(
        self, algorithm: str, path: str, query: Mapping[str, str], body: bytes
    ) -> Tuple[int, Dict[str, str], Any]:
        if self.draining:
            return 503, {}, {"error": "draining; not accepting new work"}
        try:
            parsed = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(400, f"request body is not JSON: {error}")
        # Validate at the edge: a malformed design 400s here without
        # burning a forward, and normalisation gives the routing key.
        spec = normalize_spec(
            algorithm,
            parsed,
            verify=_query_flag(query, "verify"),
            trace=_query_flag(query, "trace"),
        )
        key = cache_key(spec)

        cached = self.cache.get(key)
        if cached is not None:
            job = Job(spec, key, timeout_s=None, loop=asyncio.get_running_loop())
            job.cache = "hit"
            job.mark_running()
            job.finish(True, cached)
            self._remember_job(job)
            info = job.describe()
            info["shard"] = "router"
            if _query_flag(query, "wait"):
                return 200, {}, {"job": info, "result": json.loads(cached)}
            return 202, {}, {"job": info}

        fingerprint = dfg_fingerprint(dfg_from_json(spec["dfg_json"]))
        candidates = self._candidates(fingerprint)
        if not candidates:
            return 503, {}, {"error": "no shard available"}
        owner = self.ring.node_for(fingerprint)
        target = self._target(path, query)
        last_error: Optional[BaseException] = None
        for shard in candidates:
            try:
                status, headers, raw = await self._forward(
                    shard, "POST", target, body
                )
            except (OSError, asyncio.TimeoutError, InjectedFault) as error:
                last_error = error
                continue
            if shard.name != owner:
                self.metrics.incr("router_failovers")
            return self._relay(status, headers, raw, shard)
        return 503, {}, {
            "error": f"no healthy shard for this key ({last_error})",
        }

    def _relay(
        self,
        status: int,
        headers: Mapping[str, str],
        raw: bytes,
        shard: ShardProcess,
    ) -> Tuple[int, Dict[str, str], Any]:
        """Pass a shard's JSON response through, annotated and absorbed."""
        out_headers: Dict[str, str] = {}
        if "retry-after" in headers:
            out_headers["Retry-After"] = headers["retry-after"]
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return status, out_headers, raw
        self._remember_location(payload, shard)
        if status == 200:
            self._absorb_result(payload)
        if isinstance(payload, Mapping) and isinstance(payload.get("job"), Mapping):
            payload = dict(payload)
            payload["job"] = dict(payload["job"])
            payload["job"]["shard"] = shard.name
        return status, out_headers, payload

    async def _handle_job(
        self, path: str, tail: str
    ) -> Tuple[int, Dict[str, str], Any]:
        job_id, _sep, sub = tail.partition("/")
        job = self.jobs.get(job_id)
        if job is not None:
            text = job.response_text
            if sub == "result":
                if text is None:  # pragma: no cover - router jobs are terminal
                    return 404, {}, {"error": f"job {job_id} has no result yet"}
                return 200, {"X-Raw-Body": "1"}, text
            if sub:
                return 404, {}, {"error": f"unknown job subresource {sub!r}"}
            info = job.describe()
            info["shard"] = "router"
            response: Dict[str, Any] = {"job": info}
            if text is not None:
                response["result"] = json.loads(text)
            return 200, {}, response

        # Try the shard that admitted the id, then every other shard —
        # after a crash the id may only exist in a replayed journal.
        ordered: List[ShardProcess] = []
        located = self.job_locations.get(job_id)
        if located is not None and located in self.shards:
            ordered.append(self.shards[located])
        ordered += [s for s in self.shards.values() if s not in ordered]
        last_status = 404
        for shard in ordered:
            if shard.port is None or not shard.alive:
                continue
            try:
                status, headers, raw = await self._forward(shard, "GET", path)
            except (OSError, asyncio.TimeoutError, InjectedFault):
                continue
            if status == 404:
                last_status = status
                continue
            if sub == "result":
                # Raw bytes straight through: byte-identity is the
                # contract on this endpoint.
                return status, {"X-Raw-Body": "1"}, raw.decode("utf-8")
            self.job_locations[job_id] = shard.name
            return self._relay(status, headers, raw, shard)
        return last_status, {}, {"error": f"unknown job {job_id!r}"}

    def _health(self) -> Dict[str, Any]:
        uptime = (
            time.monotonic() - self.started_monotonic
            if self.started_monotonic is not None
            else 0.0
        )
        return {
            "status": "draining" if self.draining else "ok",
            "role": "router",
            "shards": {
                name: shard.describe() for name, shard in self.shards.items()
            },
            "healthy_shards": sum(1 for s in self.shards.values() if s.healthy),
            "cache_entries": len(self.cache),
            "uptime_seconds": round(uptime, 3),
        }

    async def _merged_metrics(self) -> str:
        """Fleet exposition: router series + every reachable shard's."""
        parts = [relabel_exposition(self.metrics.render(), shard="router")]

        async def _scrape(shard: ShardProcess) -> Optional[str]:
            if shard.port is None or not shard.alive:
                return None
            try:
                status, _headers, body = await self._forward(
                    shard, "GET", "/metrics"
                )
            except (OSError, asyncio.TimeoutError, InjectedFault):
                return None
            if status != 200:
                return None
            return relabel_exposition(body.decode("utf-8"), shard=shard.name)

        scrapes = await asyncio.gather(
            *(_scrape(shard) for shard in self.shards.values())
        )
        parts += [scrape for scrape in scrapes if scrape]
        return merge_expositions(parts)


class RouterHandle:
    """Control handle for a :meth:`ShardRouter.start_in_thread` instance."""

    def __init__(self, router: ShardRouter, thread: threading.Thread) -> None:
        self.router = router
        self._thread = thread

    @property
    def url(self) -> str:
        return self.router.url

    @property
    def port(self) -> int:
        return self.router.port

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Drain (optionally) the fleet and stop the router thread."""
        loop = getattr(self.router, "_thread_loop", None)
        if loop is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(self.router.request_stop, drain)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "RouterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
