"""The synthesis service: JSON-over-HTTP on asyncio streams.

Stdlib-only by construction (``asyncio.start_server`` + hand-rolled
HTTP/1.1 request parsing; no third-party framework), because the repo's
dependency surface is the python standard library.  One
:class:`ServeApp` owns the whole pipeline::

    HTTP request ──▶ JobSpec ──▶ cache? ──▶ single-flight? ──▶ JobQueue
                                                       │
    response ◀── Job.future ◀── resolve ◀── MicroBatcher ◀────┘

API surface (see ``docs/SERVICE.md`` for the full reference):

* ``POST /v1/schedule`` / ``POST /v1/synth`` — submit an MFS scheduling
  or MFSA synthesis job; ``?wait=1`` blocks for the result, ``?verify=on``
  audits the run through :mod:`repro.check`, ``?trace=on`` attaches a
  :mod:`repro.trace` JSONL artifact;
* ``GET /v1/jobs/<id>`` — job status (+ result when finished);
* ``GET /v1/jobs/<id>/result`` — the raw canonical result bytes;
* ``GET /healthz`` — liveness/readiness (reports draining);
* ``GET /metrics`` — Prometheus text exposition.

Overload behaviour: a full :class:`~repro.serve.queue.JobQueue` answers
**429 with a ``Retry-After`` hint** instead of queueing unboundedly, and
a draining instance (SIGTERM received) answers **503** while in-flight
work finishes.  Graceful drain = stop admitting, finish every queued and
running batch, flush a final metrics snapshot, close the listener.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.perf import PerfCounters
from repro.resilience.faults import (
    FaultPlan,
    InjectedFault,
    active_plan,
    arm,
    fault_point,
)
from repro.resilience.journal import JobJournal
from repro.serve.httpcore import (
    ProtocolError,
    flag as _query_flag,
    read_request,
    write_response,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    JobSpecError,
    cache_key,
    key_and_fingerprint,
    normalize_spec,
    spec_fingerprint,
)
from repro.serve.metrics import Metrics
from repro.serve.queue import (
    Job,
    JobFailed,
    JobQueue,
    JobTimeout,
    QueueFull,
)

#: Journal file name inside ``--state-dir``.
JOURNAL_FILENAME = "jobs.journal.jsonl"

@dataclass
class ServeConfig:
    """Tunables of one service instance (see docs/SERVICE.md)."""

    host: str = "127.0.0.1"
    port: int = 8421
    queue_size: int = 64
    max_batch: int = 8
    batch_wait_ms: float = 10.0
    #: Cost-aware batching: size batches from the measured per-job cost
    #: EWMA (:class:`~repro.serve.batcher.AdaptiveBatchPolicy`) — small
    #: jobs coalesce, big jobs dispatch immediately.  Live policy state
    #: appears on ``/metrics`` as ``adaptive_batch_limit`` and
    #: ``job_cost_ewma_seconds``.
    adaptive_batching: bool = False
    #: Wall-time budget one adaptive batch aims to fill.
    target_batch_seconds: float = 0.25
    workers: Optional[int] = None
    backend: str = "auto"
    cache_entries: int = 1024
    default_timeout_s: float = 60.0
    retry_after_s: float = 1.0
    job_history: int = 1024
    max_body_bytes: int = 8 * 1024 * 1024
    #: Directory for crash-safe state (the write-ahead job journal).
    #: ``None`` disables durability; see docs/ROBUSTNESS.md.
    state_dir: Optional[str] = None
    #: Write the bound port here once the listener is up (atomic
    #: temp-file + rename).  How the shard router — and anything else
    #: spawning ``serve --port 0`` — learns where a worker landed.
    port_file: Optional[str] = None
    #: Fault-injection plan spec (``FaultPlan.parse`` spelling) armed for
    #: the lifetime of the server — chaos-testing only.
    faults: Optional[str] = None
    fault_seed: int = 0


class ServeApp:
    """One synthesis service instance (cache + queue + batcher + HTTP)."""

    def __init__(self, config: Optional[ServeConfig] = None, **overrides) -> None:
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServeConfig or keyword overrides")
        self.config = config
        self.perf = PerfCounters()
        self.metrics = Metrics()
        self.cache = ResultCache(config.cache_entries, metrics=self.metrics)
        self.queue = JobQueue(config.queue_size)
        self.inflight: Dict[str, Job] = {}
        self.jobs: "OrderedDict[str, Job]" = OrderedDict()
        self.batcher = MicroBatcher(
            self.queue,
            resolve=self._resolve,
            max_batch=config.max_batch,
            max_wait_s=config.batch_wait_ms / 1000.0,
            backend=config.backend,
            workers=config.workers,
            perf=self.perf,
            metrics=self.metrics,
            adaptive=config.adaptive_batching,
            target_batch_seconds=config.target_batch_seconds,
        )
        self.journal: Optional[JobJournal] = None
        if config.state_dir:
            self.journal = JobJournal(
                os.path.join(config.state_dir, JOURNAL_FILENAME)
            )
        self.fault_plan: Optional[FaultPlan] = None
        if config.faults:
            self.fault_plan = FaultPlan.parse(
                config.faults, seed=config.fault_seed
            )
        self.draining = False
        self.started_monotonic: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._drain_on_stop = True
        self._announce = sys.stderr
        self._describe_metrics()

    def _describe_metrics(self) -> None:
        m = self.metrics
        m.describe("jobs", "Jobs finished, by terminal status.")
        m.describe("jobs_executed", "Jobs actually synthesised (cache misses).")
        m.describe("batches", "Micro-batches dispatched to the sweep executor.")
        m.describe("batch_size", "Jobs per dispatched micro-batch.")
        m.describe("stage_seconds", "Per-stage latency (queue/execute/total).")
        m.describe("cache_hits", "Result-cache hits.")
        m.describe("cache_misses", "Result-cache misses.")
        m.describe("cache_evictions", "LRU evictions from the result cache.")
        m.describe("singleflight_followers", "Submissions coalesced onto an identical in-flight job.")
        m.describe("backpressure", "Submissions rejected with 429 (queue full).")
        m.describe("http_requests", "HTTP requests, by method/route/status.")
        m.describe("journal_writes", "Write-ahead journal records fsync'd.")
        m.describe("journal_errors", "Journal writes that failed (job still served).")
        m.describe("recovered_jobs", "Jobs replayed from the journal at startup, by kind.")
        m.describe("dispatch_errors", "Batches failed by a dispatch-loop error.")
        m.describe("cache_put_errors", "Result-cache insertions that failed (result still served).")
        m.gauge("queue_depth", self.queue.depth)
        m.gauge("inflight", lambda: len(self.inflight))
        m.gauge("cache_entries", lambda: len(self.cache))
        m.gauge("draining", lambda: 1 if self.draining else 0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the dispatch loop.

        Journal replay runs first — recovered jobs are queued before the
        batcher starts and before the listener port is announced, so by
        the time a client can reconnect every previously admitted job is
        either served from the journal or back in the pipeline.
        """
        if self.fault_plan is not None:
            arm(self.fault_plan)
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.batcher.start()
        self.started_monotonic = time.monotonic()
        if self.config.port_file:
            self._write_port_file(self.config.port_file)

    def _write_port_file(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        temp_path = f"{path}.tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(f"{self.port}\n")
        os.replace(temp_path, path)

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the service; with ``drain``, finish all accepted work first."""
        self.draining = True
        if drain:
            await self.batcher.drain()
            while self.inflight:
                await asyncio.sleep(0.02)
        await self.batcher.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.journal is not None:
            if drain:
                try:
                    self.journal.compact(keep=self.config.job_history)
                except Exception:
                    self.metrics.incr("journal_errors")
            self.journal.close()
        if self.fault_plan is not None and active_plan() is self.fault_plan:
            arm(None)
        if self._announce is not None:
            # The final snapshot an operator sees after SIGTERM.
            print(self.metrics.render(self.perf), file=self._announce, end="")
            print("drained and stopped", file=self._announce, flush=True)

    def serve_forever(
        self, announce=sys.stderr, install_signals: bool = True
    ) -> int:
        """Blocking entry point of ``repro-hls serve``.

        SIGTERM/SIGINT trigger a graceful drain: stop admitting (503),
        finish in-flight batches, flush metrics, exit 0.
        """
        self._announce = announce
        return asyncio.run(self._serve_forever(install_signals))

    async def _serve_forever(self, install_signals: bool) -> int:
        await self.start()
        self._stop_event = asyncio.Event()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-Unix platform or nested loop
        if self._announce is not None:
            print(f"serving on {self.url}", file=self._announce, flush=True)
        await self._stop_event.wait()
        await self.shutdown(drain=self._drain_on_stop)
        return 0

    def request_stop(self, drain: bool = True) -> None:
        """Ask the serving loop to drain and exit (signal-handler safe)."""
        self.draining = True
        self._drain_on_stop = drain
        if self._stop_event is not None:
            self._stop_event.set()

    # -- threaded harness (tests, docs, benchmarks) --------------------
    def start_in_thread(self) -> "ServeHandle":
        """Run this app on a dedicated event-loop thread; returns a handle.

        The embedded-server harness used by the test suite, the runnable
        documentation examples and the throughput benchmark.
        """
        ready = threading.Event()
        failure: Dict[str, BaseException] = {}

        def _runner() -> None:
            try:
                asyncio.run(self._thread_main(ready))
            except BaseException as error:  # pragma: no cover - startup bugs
                failure["error"] = error
                ready.set()

        thread = threading.Thread(
            target=_runner, name="repro-serve", daemon=True
        )
        thread.start()
        ready.wait(timeout=30)
        if "error" in failure:
            raise RuntimeError("service failed to start") from failure["error"]
        return ServeHandle(self, thread)

    async def _thread_main(self, ready: threading.Event) -> None:
        self._announce = None
        await self.start()
        self._stop_event = asyncio.Event()
        self._thread_loop = asyncio.get_running_loop()
        ready.set()
        await self._stop_event.wait()
        await self.shutdown(drain=self._drain_on_stop)

    # ------------------------------------------------------------------
    # submission pipeline
    # ------------------------------------------------------------------
    def submit(
        self,
        algorithm: str,
        body: Mapping[str, Any],
        verify: bool = False,
        trace: bool = False,
        timeout_s: Optional[float] = None,
    ) -> Job:
        """Admit one request: cache → single-flight → bounded queue.

        Raises :class:`JobSpecError` (400) or :class:`QueueFull` (429).
        Must run on the event-loop thread.
        """
        spec = normalize_spec(algorithm, body, verify=verify, trace=trace)
        fault_point("serve.admit")
        key, fingerprint = key_and_fingerprint(spec)
        loop = asyncio.get_running_loop()
        job = Job(
            spec,
            key,
            timeout_s=timeout_s
            if timeout_s is not None
            else self.config.default_timeout_s,
            loop=loop,
        )
        job.fingerprint = fingerprint
        self._register(job)

        cached = self.cache.get(key)
        if cached is not None:
            job.cache = "hit"
            job.mark_running()
            job.finish(True, cached)
            return job

        leader = self.inflight.get(key)
        if leader is not None and not leader.terminal:
            self.metrics.incr("singleflight_followers")
            job.follow(leader)
            return job

        try:
            self.queue.put(job, retry_after=self.config.retry_after_s)
        except QueueFull:
            self.metrics.incr("backpressure")
            self.jobs.pop(job.id, None)
            raise
        self.inflight[key] = job
        job.arm_timeout(loop)
        self._journal_admit(job)
        return job

    def _journal_admit(self, job: Job) -> None:
        """Write-ahead the admission of an execution leader.

        Cache hits and single-flight followers never reach the journal:
        they hold no work a crash could lose.  A failed journal write is
        counted but does not fail the job — the server prefers availability
        (the job runs, undurably) over refusing work it can still do.
        """
        if self.journal is None:
            return
        job.journaled = True
        try:
            self.journal.record_admit(job.id, job.key, job.spec, job.timeout_s)
            self.metrics.incr("journal_writes")
        except Exception:
            self.metrics.incr("journal_errors")

    def _register(self, job: Job) -> None:
        self.jobs[job.id] = job
        while len(self.jobs) > self.config.job_history:
            self.jobs.popitem(last=False)

        def _on_terminal(_future: asyncio.Future) -> None:
            self.metrics.incr("jobs", status=job.status)
            total = job.total_seconds()
            if total is not None:
                self.metrics.observe("stage_seconds", total, stage="total")
            # A job that died before the batcher saw it (queued timeout,
            # cancel) must release its single-flight slot so identical
            # retries recompute instead of following a corpse.
            if self.inflight.get(job.key) is job and job.status != "done":
                if job.status in ("timeout", "cancelled"):
                    self.inflight.pop(job.key, None)
            if self.journal is not None and job.journaled:
                try:
                    self.journal.record_complete(
                        job.id,
                        job.status,
                        job.status == "done",
                        job.response_text,
                        key=job.key,
                        error=job.error,
                    )
                    self.metrics.incr("journal_writes")
                except Exception:
                    self.metrics.incr("journal_errors")

        job.future.add_done_callback(_on_terminal)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal into the cache, job table and queue.

        Completed jobs are resurrected as terminal :class:`Job` records
        (their ``GET /v1/jobs/<id>`` answers survive the crash) and
        successful results repopulate the cache.  Admitted-but-unfinished
        jobs — the crash window — are re-queued under their original ids;
        synthesis is deterministic, so the replayed results are
        byte-identical to what the dead process would have produced.
        """
        if self.journal is None:
            return
        state = self.journal.replay()
        loop = asyncio.get_running_loop()
        for entry in state.completed:
            if entry.job_id in self.jobs:
                continue
            job = Job(
                entry.spec or {},
                entry.key or "",
                timeout_s=None,
                loop=loop,
                job_id=entry.job_id,
            )
            job.journaled = True
            job.status = entry.status or "failed"
            job.error = dict(entry.error) if entry.error else None
            job.response_text = entry.text
            job.started_monotonic = job.created_monotonic
            job.finished_monotonic = job.created_monotonic
            if entry.status == "done" and entry.text is not None:
                job.future.set_result(entry.text)
                if entry.key:
                    self.cache.put(
                        entry.key,
                        entry.text,
                        tag=self._entry_fingerprint(entry.spec),
                    )
            else:
                # Nothing awaits a resurrected failure; a cancelled
                # future is silent on collection, an exception is not.
                job.future.cancel()
            self.jobs[job.id] = job
            while len(self.jobs) > self.config.job_history:
                self.jobs.popitem(last=False)
            self.metrics.incr("recovered_jobs", kind="completed")
        for entry in state.pending:
            if entry.spec is None or entry.job_id in self.jobs:
                continue
            job = Job(
                entry.spec,
                entry.key or cache_key(entry.spec),
                timeout_s=entry.timeout_s
                if entry.timeout_s is not None
                else self.config.default_timeout_s,
                loop=loop,
                job_id=entry.job_id,
            )
            job.fingerprint = self._entry_fingerprint(entry.spec)
            self._register(job)
            job.journaled = True  # its admit record is already on disk
            self.metrics.incr("recovered_jobs", kind="pending")
            cached = self.cache.get(job.key)
            if cached is not None:
                job.cache = "hit"
                job.mark_running()
                job.finish(True, cached)
                continue
            leader = self.inflight.get(job.key)
            if leader is not None and not leader.terminal:
                job.follow(leader)
                continue
            # Recovered work was admitted by the previous incarnation;
            # it bypasses the admission bound rather than being dropped.
            self.queue.requeue(job)
            self.inflight[job.key] = job
            job.arm_timeout(loop)

    @staticmethod
    def _entry_fingerprint(spec: Optional[Mapping[str, Any]]) -> Optional[str]:
        """Best-effort routing tag for a journal entry's cached result."""
        if not spec or "dfg_json" not in spec:
            return None
        try:
            return spec_fingerprint(spec)
        except Exception:  # pragma: no cover - corrupt journal entry
            return None

    def _resolve(self, job: Job, payload: Mapping[str, Any], text: str) -> None:
        """Batcher callback: publish a computed result (loop thread)."""
        ok = bool(payload.get("ok"))
        if ok:
            # Cache before resolving waiters so anything they trigger
            # next already sees the entry.  A cache that cannot accept
            # the entry costs future hits, never this job's result.
            try:
                fault_point("serve.cache.put")
                self.cache.put(job.key, text, tag=job.fingerprint)
            except InjectedFault:
                self.metrics.incr("cache_put_errors")
        if self.inflight.get(job.key) is job:
            self.inflight.pop(job.key, None)
        job.finish(ok, text, payload.get("error"))

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        method = route = "-"
        status = 500
        try:
            try:
                request = await read_request(
                    reader, self.config.max_body_bytes
                )
                if request is None:
                    return
                method, path, query, body = request
                route, (status, headers, payload) = await self._route(
                    method, path, query, body
                )
            except ProtocolError as error:
                status, headers, payload = (
                    error.status,
                    {},
                    {"error": str(error)},
                )
            except JobSpecError as error:
                status, headers, payload = 400, {}, {"error": str(error)}
            except QueueFull as error:
                status = 429
                headers = {"Retry-After": f"{error.retry_after:g}"}
                payload = {
                    "error": "queue full",
                    "queue_depth": error.depth,
                    "queue_size": error.maxsize,
                    "retry_after": error.retry_after,
                }
            except Exception as error:  # pragma: no cover - defensive
                status, headers, payload = (
                    500,
                    {},
                    {"error": f"{type(error).__name__}: {error}"},
                )
            await write_response(writer, status, headers, payload)
        finally:
            self.metrics.incr(
                "http_requests", method=method, route=route, status=str(status)
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    @staticmethod
    def _flag(query: Mapping[str, str], name: str) -> bool:
        return _query_flag(query, name)

    async def _route(
        self,
        method: str,
        path: str,
        query: Mapping[str, str],
        body: bytes,
    ) -> Tuple[str, Tuple[int, Dict[str, str], Any]]:
        if path in ("/v1/schedule", "/v1/synth"):
            if method != "POST":
                return path, (405, {}, {"error": "POST required"})
            algorithm = "mfs" if path == "/v1/schedule" else "mfsa"
            return path, await self._handle_submit(algorithm, query, body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return "/v1/jobs", (405, {}, {"error": "GET required"})
            return "/v1/jobs", self._handle_job(path[len("/v1/jobs/"):])
        if path == "/healthz":
            return path, (200, {}, self._health())
        if path == "/metrics":
            return path, (
                200,
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                self.metrics.render(self.perf),
            )
        if path.startswith("/admin/cache/"):
            return path, self._handle_admin_cache(method, path, query, body)
        return "-", (404, {}, {"error": f"no route for {method} {path}"})

    def _handle_admin_cache(
        self,
        method: str,
        path: str,
        query: Mapping[str, str],
        body: bytes,
    ) -> Tuple[int, Dict[str, str], Any]:
        """Cache transfer endpoints backing the router's reshard handoff.

        * ``GET  /admin/cache/index``  — every entry's ``(key, tag)``;
        * ``POST /admin/cache/export`` — ``{"keys": [...]}`` → full
          entries for the keys still cached;
        * ``POST /admin/cache/import`` — ``{"entries": [...]}`` → puts,
          returning ``{"imported": n}`` (replica writes land here too);
        * ``GET  /admin/cache/entry?key=`` — one raw stored payload, the
          router's replica read-path probe.
        """
        sub = path[len("/admin/cache/"):]
        if sub == "index":
            if method != "GET":
                return 405, {}, {"error": "GET required"}
            entries = [
                {"key": key, "tag": tag}
                for key, tag, _text in self.cache.tagged_entries()
            ]
            return 200, {}, {"entries": entries, "total": len(self.cache)}
        if sub == "entry":
            if method != "GET":
                return 405, {}, {"error": "GET required"}
            key = query.get("key", "")
            if not key:
                return 400, {}, {"error": "'key' query parameter required"}
            text = self.cache.peek(key)
            if text is None:
                return 404, {}, {"error": "not cached"}
            return 200, {"X-Raw-Body": "1"}, text
        if sub in ("export", "import"):
            if method != "POST":
                return 405, {}, {"error": "POST required"}
            try:
                parsed = json.loads(body.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ProtocolError(400, f"request body is not JSON: {error}")
            if sub == "export":
                keys = parsed.get("keys")
                if not isinstance(keys, list):
                    return 400, {}, {"error": "'keys' must be a list"}
                entries = []
                for key in keys:
                    text = self.cache.peek(key) if isinstance(key, str) else None
                    if text is not None:
                        entries.append(
                            {
                                "key": key,
                                "tag": self.cache.tag(key),
                                "text": text,
                            }
                        )
                return 200, {}, {"entries": entries}
            items = parsed.get("entries")
            if not isinstance(items, list):
                return 400, {}, {"error": "'entries' must be a list"}
            imported = 0
            for item in items:
                if not isinstance(item, Mapping):
                    continue
                key, text = item.get("key"), item.get("text")
                if isinstance(key, str) and isinstance(text, str):
                    tag = item.get("tag")
                    self.cache.put(
                        key, text, tag=tag if isinstance(tag, str) else None
                    )
                    imported += 1
            return 200, {}, {"imported": imported}
        return 404, {}, {"error": f"unknown admin resource {sub!r}"}

    async def _handle_submit(
        self, algorithm: str, query: Mapping[str, str], body: bytes
    ) -> Tuple[int, Dict[str, str], Any]:
        if self.draining:
            return 503, {}, {"error": "draining; not accepting new work"}
        try:
            parsed = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(400, f"request body is not JSON: {error}")
        timeout_s: Optional[float] = None
        if "timeout" in query:
            try:
                timeout_s = float(query["timeout"])
            except ValueError:
                raise ProtocolError(400, "'timeout' must be a number")
        job = self.submit(
            algorithm,
            parsed,
            verify=self._flag(query, "verify"),
            trace=self._flag(query, "trace"),
            timeout_s=timeout_s,
        )
        if not self._flag(query, "wait"):
            return 202, {}, {"job": job.describe()}
        try:
            text = await asyncio.shield(job.future)
        except JobTimeout:
            return 504, {}, {"job": job.describe()}
        except (JobFailed, asyncio.CancelledError):
            response: Dict[str, Any] = {"job": job.describe()}
            stored = getattr(job, "response_text", None)
            if stored is not None:
                response["result"] = json.loads(stored)
            return 500, {}, response
        return 200, {}, {"job": job.describe(), "result": json.loads(text)}

    def _handle_job(self, tail: str) -> Tuple[int, Dict[str, str], Any]:
        job_id, _sep, sub = tail.partition("/")
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {}, {"error": f"unknown job {job_id!r}"}
        text = getattr(job, "response_text", None)
        if sub == "result":
            if text is None:
                return 404, {}, {"error": f"job {job_id} has no result yet"}
            # Raw stored bytes: cold and cached responses are comparable
            # byte for byte on this endpoint.
            return 200, {"X-Raw-Body": "1"}, text
        if sub:
            return 404, {}, {"error": f"unknown job subresource {sub!r}"}
        response: Dict[str, Any] = {"job": job.describe()}
        if text is not None:
            response["result"] = json.loads(text)
        return 200, {}, response

    def _health(self) -> Dict[str, Any]:
        uptime = (
            time.monotonic() - self.started_monotonic
            if self.started_monotonic is not None
            else 0.0
        )
        return {
            "status": "draining" if self.draining else "ok",
            "queue_depth": self.queue.depth(),
            "queue_size": self.config.queue_size,
            "inflight": len(self.inflight),
            "cache_entries": len(self.cache),
            "uptime_seconds": round(uptime, 3),
        }

class ServeHandle:
    """Control handle for a :meth:`ServeApp.start_in_thread` instance."""

    def __init__(self, app: ServeApp, thread: threading.Thread) -> None:
        self.app = app
        self._thread = thread

    @property
    def url(self) -> str:
        return self.app.url

    @property
    def port(self) -> int:
        return self.app.port

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain (optionally) and stop the server thread."""
        loop = getattr(self.app, "_thread_loop", None)
        if loop is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(self.app.request_stop, drain)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
