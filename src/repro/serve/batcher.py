"""Micro-batching dispatcher: queue → :class:`~repro.sweep.SweepExecutor`.

The throughput/latency trade the service makes is classic micro-batching:
the dispatcher takes the first queued job immediately, then holds a short
coalescing window (``max_wait_s``, default 10 ms) collecting up to
``max_batch - 1`` more jobs before fanning the whole batch out through a
*warm* process pool (``SweepExecutor(keep_pool=True)``).  Under light
load a job therefore pays at most one window of extra latency; under
heavy load batches fill instantly and throughput scales with cores.
Single-job batches skip the pool entirely (the executor's ``auto``
backend runs one item in-process), so an idle service answers with
serial-CLI latency.

The batch map runs in a worker thread (``asyncio.to_thread``) so the
event loop keeps serving requests, scrapes and health checks while
synthesis is on the CPU.  Job resolution is delegated to the
``resolve(job, payload, text)`` callback supplied by the app, which owns
cache insertion, single-flight bookkeeping and per-job metrics; the
batcher only tracks batch-shaped metrics (sizes, execute latency) and
merges worker perf snapshots.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional

from repro.perf import PerfCounters
from repro.resilience.faults import fault_point
from repro.serve.jobs import execute_spec, response_text
from repro.serve.metrics import Metrics
from repro.serve.queue import Job, JobQueue
from repro.sweep import SweepExecutor


class MicroBatcher:
    """Coalesces queued jobs into sweep batches and resolves them."""

    def __init__(
        self,
        queue: JobQueue,
        resolve: Callable[[Job, dict, str], None],
        max_batch: int = 8,
        max_wait_s: float = 0.010,
        backend: str = "auto",
        workers: Optional[int] = None,
        perf: Optional[PerfCounters] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.queue = queue
        self.resolve = resolve
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.perf = perf if perf is not None else PerfCounters()
        self.metrics = metrics
        self.executor = SweepExecutor(
            backend=backend, workers=workers, perf=self.perf, keep_pool=True
        )
        self._task: Optional[asyncio.Task] = None
        self._busy = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the dispatch loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Cancel the loop and release the warm pool."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        await asyncio.to_thread(self.executor.close)

    @property
    def busy(self) -> bool:
        """Whether a batch is currently executing."""
        return self._busy

    async def drain(self, poll_s: float = 0.02) -> None:
        """Wait until the queue is empty and no batch is running."""
        while self.queue.depth() > 0 or self._busy:
            await asyncio.sleep(poll_s)

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self.queue.get()]
            if self.max_wait_s > 0:
                deadline = loop.time() + self.max_wait_s
                while len(batch) < self.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self.queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
            else:
                while len(batch) < self.max_batch:
                    job = self.queue.get_nowait()
                    if job is None:
                        break
                    batch.append(job)
            self._busy = True
            try:
                await self._dispatch(batch, loop)
            except asyncio.CancelledError:
                raise
            except Exception as error:
                # The dispatch loop must outlive any single bad batch
                # (an injected fault, a bug in the executor): fail the
                # batch's jobs and keep consuming the queue.
                self._fail_batch(batch, error)
            finally:
                self._busy = False

    def _fail_batch(self, batch: List[Job], error: BaseException) -> None:
        if self.metrics is not None:
            self.metrics.incr("dispatch_errors")
        payload = {
            "ok": False,
            "error": {"type": type(error).__name__, "message": str(error)},
        }
        text = response_text(payload)
        for job in batch:
            if not job.terminal:
                self.resolve(job, payload, text)

    async def _dispatch(
        self, batch: List[Job], loop: asyncio.AbstractEventLoop
    ) -> None:
        fault_point("serve.dispatch")
        # A job can die (timeout, cancel) between enqueue and dispatch;
        # it already resolved its waiters, so just drop it here.
        live = [job for job in batch if not job.terminal]
        if not live:
            return
        for job in live:
            job.mark_running()
            if self.metrics is not None:
                queue_wait = job.queue_seconds()
                if queue_wait is not None:
                    self.metrics.observe(
                        "stage_seconds", queue_wait, stage="queue"
                    )
        specs = [job.spec for job in live]
        started = loop.time()
        pairs = await asyncio.to_thread(
            self.executor.map, execute_spec, specs
        )
        elapsed = loop.time() - started
        if self.metrics is not None:
            self.metrics.incr("batches")
            self.metrics.observe("batch_size", len(live))
            self.metrics.observe("stage_seconds", elapsed, stage="execute")
            self.metrics.incr("jobs_executed", len(live))
        for job, (payload, snapshot) in zip(live, pairs):
            if snapshot:
                self.perf.merge(snapshot)
            self.resolve(job, payload, response_text(payload))
