"""Micro-batching dispatcher: queue → :class:`~repro.sweep.SweepExecutor`.

The throughput/latency trade the service makes is classic micro-batching:
the dispatcher takes the first queued job immediately, then holds a short
coalescing window (``max_wait_s``, default 10 ms) collecting up to
``max_batch - 1`` more jobs before fanning the whole batch out through a
*warm* process pool (``SweepExecutor(keep_pool=True)``).  Under light
load a job therefore pays at most one window of extra latency; under
heavy load batches fill instantly and throughput scales with cores.
Single-job batches skip the pool entirely (the executor's ``auto``
backend runs one item in-process), so an idle service answers with
serial-CLI latency.

With ``adaptive=True`` the batch size is *cost-aware* instead of fixed:
:class:`AdaptiveBatchPolicy` tracks an EWMA of the measured per-job
execute cost and holds the window only as long as batching actually pays
— streams of small jobs coalesce up to ``max_batch``, big jobs dispatch
immediately with no window at all.  The live policy state is surfaced on
``/metrics`` as the ``adaptive_batch_limit`` and
``job_cost_ewma_seconds`` gauges.

The batch map runs in a worker thread (``asyncio.to_thread``) so the
event loop keeps serving requests, scrapes and health checks while
synthesis is on the CPU.  Job resolution is delegated to the
``resolve(job, payload, text)`` callback supplied by the app, which owns
cache insertion, single-flight bookkeeping and per-job metrics; the
batcher only tracks batch-shaped metrics (sizes, execute latency) and
merges worker perf snapshots.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional

from repro.perf import PerfCounters
from repro.resilience.faults import fault_point
from repro.serve.jobs import execute_spec, response_text
from repro.serve.metrics import Metrics
from repro.serve.queue import Job, JobQueue
from repro.sweep import SweepExecutor


class AdaptiveBatchPolicy:
    """Cost-aware batch sizing from a measured per-job cost EWMA.

    Fixed-size batching pays for itself only when jobs are cheap: holding
    the coalescing window open in front of a 2-second synthesis job adds
    latency without improving throughput, while a stream of 5-millisecond
    jobs *needs* batching to amortise dispatch overhead.  The policy
    therefore tracks an exponentially weighted moving average of the
    measured per-job execute cost and sizes the next batch so its
    predicted wall time stays near ``target_batch_seconds``:

    * cheap jobs — ``target / ewma`` jobs per batch, capped at the
      configured maximum;
    * expensive jobs (EWMA at or above the target) — batch limit 1, and
      the dispatcher skips the coalescing window entirely, so a big job
      is on the CPU the moment it is dequeued.

    The first batch (no measurement yet) uses the configured maximum,
    matching the fixed policy until evidence arrives.
    """

    def __init__(
        self,
        max_batch: int,
        target_batch_seconds: float = 0.25,
        alpha: float = 0.3,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if target_batch_seconds <= 0:
            raise ValueError(
                "target_batch_seconds must be > 0, got "
                f"{target_batch_seconds}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.max_batch = max_batch
        self.target_batch_seconds = target_batch_seconds
        self.alpha = alpha
        self.cost_ewma: Optional[float] = None

    def observe(self, per_job_seconds: float) -> None:
        """Fold one batch's measured per-job cost into the EWMA."""
        if per_job_seconds < 0:
            return
        if self.cost_ewma is None:
            self.cost_ewma = per_job_seconds
        else:
            self.cost_ewma = (
                self.alpha * per_job_seconds
                + (1.0 - self.alpha) * self.cost_ewma
            )

    def batch_limit(self) -> int:
        """Jobs the next batch should coalesce (1 = dispatch immediately)."""
        if self.cost_ewma is None:
            return self.max_batch
        if self.cost_ewma <= 0:
            return self.max_batch
        predicted = int(self.target_batch_seconds / self.cost_ewma)
        return max(1, min(self.max_batch, predicted))


class MicroBatcher:
    """Coalesces queued jobs into sweep batches and resolves them."""

    def __init__(
        self,
        queue: JobQueue,
        resolve: Callable[[Job, dict, str], None],
        max_batch: int = 8,
        max_wait_s: float = 0.010,
        backend: str = "auto",
        workers: Optional[int] = None,
        perf: Optional[PerfCounters] = None,
        metrics: Optional[Metrics] = None,
        adaptive: bool = False,
        target_batch_seconds: float = 0.25,
        cost_alpha: float = 0.3,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.queue = queue
        self.resolve = resolve
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.perf = perf if perf is not None else PerfCounters()
        self.metrics = metrics
        self.policy: Optional[AdaptiveBatchPolicy] = None
        if adaptive:
            self.policy = AdaptiveBatchPolicy(
                max_batch,
                target_batch_seconds=target_batch_seconds,
                alpha=cost_alpha,
            )
            if metrics is not None:
                metrics.gauge(
                    "adaptive_batch_limit",
                    lambda: float(self.policy.batch_limit()),
                )
                metrics.gauge(
                    "job_cost_ewma_seconds",
                    lambda: float(self.policy.cost_ewma or 0.0),
                )
        self.executor = SweepExecutor(
            backend=backend, workers=workers, perf=self.perf, keep_pool=True
        )
        self._task: Optional[asyncio.Task] = None
        self._busy = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the dispatch loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Cancel the loop and release the warm pool."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        await asyncio.to_thread(self.executor.close)

    @property
    def busy(self) -> bool:
        """Whether a batch is currently executing."""
        return self._busy

    async def drain(self, poll_s: float = 0.02) -> None:
        """Wait until the queue is empty and no batch is running."""
        while self.queue.depth() > 0 or self._busy:
            await asyncio.sleep(poll_s)

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self.queue.get()]
            # Cost-aware sizing: expensive jobs (limit 1) skip the
            # coalescing window and hit the CPU immediately; cheap jobs
            # coalesce up to the policy's limit.
            limit = (
                self.policy.batch_limit()
                if self.policy is not None
                else self.max_batch
            )
            if self.max_wait_s > 0 and limit > 1:
                deadline = loop.time() + self.max_wait_s
                while len(batch) < limit:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self.queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
            else:
                while len(batch) < limit:
                    job = self.queue.get_nowait()
                    if job is None:
                        break
                    batch.append(job)
            self._busy = True
            try:
                await self._dispatch(batch, loop)
            except asyncio.CancelledError:
                raise
            except Exception as error:
                # The dispatch loop must outlive any single bad batch
                # (an injected fault, a bug in the executor): fail the
                # batch's jobs and keep consuming the queue.
                self._fail_batch(batch, error)
            finally:
                self._busy = False

    def _fail_batch(self, batch: List[Job], error: BaseException) -> None:
        if self.metrics is not None:
            self.metrics.incr("dispatch_errors")
        payload = {
            "ok": False,
            "error": {"type": type(error).__name__, "message": str(error)},
        }
        text = response_text(payload)
        for job in batch:
            if not job.terminal:
                self.resolve(job, payload, text)

    async def _dispatch(
        self, batch: List[Job], loop: asyncio.AbstractEventLoop
    ) -> None:
        fault_point("serve.dispatch")
        # A job can die (timeout, cancel) between enqueue and dispatch;
        # it already resolved its waiters, so just drop it here.
        live = [job for job in batch if not job.terminal]
        if not live:
            return
        for job in live:
            job.mark_running()
            if self.metrics is not None:
                queue_wait = job.queue_seconds()
                if queue_wait is not None:
                    self.metrics.observe(
                        "stage_seconds", queue_wait, stage="queue"
                    )
        specs = [job.spec for job in live]
        started = loop.time()
        pairs = await asyncio.to_thread(
            self.executor.map, execute_spec, specs
        )
        elapsed = loop.time() - started
        if self.policy is not None:
            self.policy.observe(elapsed / len(live))
        if self.metrics is not None:
            self.metrics.incr("batches")
            self.metrics.observe("batch_size", len(live))
            self.metrics.observe("stage_seconds", elapsed, stage="execute")
            self.metrics.incr("jobs_executed", len(live))
        for job, (payload, snapshot) in zip(live, pairs):
            if snapshot:
                self.perf.merge(snapshot)
            self.resolve(job, payload, response_text(payload))
