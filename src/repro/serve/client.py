"""Stdlib HTTP client for the synthesis service.

A thin, dependency-free wrapper over :mod:`http.client` used by the
``repro-hls submit`` CLI, the documentation examples and the service
tests.  It speaks the same JSON API documented in ``docs/SERVICE.md``
and turns the service's error statuses into typed exceptions —
notably :class:`Backpressure` for 429, which carries the server's
``Retry-After`` hint so callers can implement polite backoff.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import urlencode, urlsplit


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload
        if isinstance(payload, Mapping):
            message = payload.get("error", payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class Backpressure(ServiceError):
    """The service shed load (HTTP 429); ``retry_after`` is its hint."""

    def __init__(self, status: int, payload: Any, retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class Client:
    """Synchronous client for one service instance.

    >>> client = Client("http://127.0.0.1:8421")   # doctest: +SKIP
    >>> out = client.schedule(source="x := a + b") # doctest: +SKIP
    >>> out["result"]["length"]                    # doctest: +SKIP
    """

    def __init__(self, url: str, timeout: float = 120.0) -> None:
        split = urlsplit(url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {split.scheme!r}")
        netloc = split.netloc or split.path  # allow "host:port" without scheme
        self.host, _sep, port = netloc.partition(":")
        self.port = int(port) if port else 80
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        query: Optional[Mapping[str, Any]] = None,
        body: Optional[Mapping[str, Any]] = None,
        raw: bool = False,
    ) -> Tuple[int, Dict[str, str], Any]:
        if query:
            path = f"{path}?{urlencode(query)}"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            header_map = {
                name.lower(): value for name, value in response.getheaders()
            }
            if raw:
                decoded: Any = data.decode("utf-8")
            else:
                try:
                    decoded = json.loads(data.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    decoded = data.decode("utf-8", errors="replace")
            return response.status, header_map, decoded
        finally:
            connection.close()

    def _checked(self, *args, **kwargs) -> Any:
        status, headers, decoded = self._request(*args, **kwargs)
        if status == 429:
            try:
                retry_after = float(headers.get("retry-after", "1"))
            except ValueError:
                retry_after = 1.0
            raise Backpressure(status, decoded, retry_after)
        if status >= 400:
            raise ServiceError(status, decoded)
        return decoded

    # ------------------------------------------------------------------
    def _submit(
        self,
        endpoint: str,
        design: Mapping[str, Any],
        wait: bool,
        verify: bool,
        trace: bool,
        timeout: Optional[float],
        params: Mapping[str, Any],
    ) -> Dict[str, Any]:
        body = dict(design)
        body.update(params)
        query: Dict[str, Any] = {}
        if wait:
            query["wait"] = 1
        if verify:
            query["verify"] = "on"
        if trace:
            query["trace"] = "on"
        if timeout is not None:
            query["timeout"] = timeout
        return self._checked("POST", endpoint, query=query, body=body)

    def schedule(
        self,
        source: Optional[str] = None,
        dfg: Optional[Mapping[str, Any]] = None,
        name: Optional[str] = None,
        wait: bool = True,
        verify: bool = False,
        trace: bool = False,
        timeout: Optional[float] = None,
        **params: Any,
    ) -> Dict[str, Any]:
        """Submit an MFS scheduling job (``POST /v1/schedule``).

        Pass the design as ``source`` (behavioral text) or ``dfg``
        (parsed ``repro-dfg`` JSON object); extra keyword arguments
        (``cs``, ``mul_latency``, ``latency_l``, ``pipelined``,
        ``clock_ns``, ``seed``) become spec parameters.
        """
        design = self._design(source, dfg, name)
        return self._submit(
            "/v1/schedule", design, wait, verify, trace, timeout, params
        )

    def synth(
        self,
        source: Optional[str] = None,
        dfg: Optional[Mapping[str, Any]] = None,
        name: Optional[str] = None,
        wait: bool = True,
        verify: bool = False,
        trace: bool = False,
        timeout: Optional[float] = None,
        **params: Any,
    ) -> Dict[str, Any]:
        """Submit an MFSA synthesis job (``POST /v1/synth``)."""
        design = self._design(source, dfg, name)
        return self._submit(
            "/v1/synth", design, wait, verify, trace, timeout, params
        )

    @staticmethod
    def _design(
        source: Optional[str],
        dfg: Optional[Mapping[str, Any]],
        name: Optional[str] = None,
    ) -> Dict[str, Any]:
        if (source is None) == (dfg is None):
            raise ValueError("pass exactly one of 'source' or 'dfg'")
        design: Dict[str, Any] = (
            {"source": source} if source is not None else {"dfg": dict(dfg)}
        )
        if name is not None:
            design["name"] = name
        return design

    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Dict[str, Any]:
        """Job status + result when finished (``GET /v1/jobs/<id>``)."""
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def result_text(self, job_id: str) -> str:
        """The raw canonical result bytes (``GET /v1/jobs/<id>/result``)."""
        return self._checked("GET", f"/v1/jobs/{job_id}/result", raw=True)

    def wait_for(
        self, job_id: str, timeout: float = 60.0, poll_s: float = 0.05
    ) -> Dict[str, Any]:
        """Poll a job submitted with ``wait=False`` until it is terminal."""
        deadline = time.monotonic() + timeout
        while True:
            info = self.job(job_id)
            if info["job"]["status"] not in ("queued", "running"):
                return info
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {info['job']['status']}")
            time.sleep(poll_s)

    def healthz(self) -> Dict[str, Any]:
        """Service health (``GET /healthz``)."""
        return self._checked("GET", "/healthz")

    def metrics_text(self) -> str:
        """Prometheus exposition text (``GET /metrics``)."""
        return self._checked("GET", "/metrics", raw=True)
