"""Stdlib HTTP client for the synthesis service.

A thin, dependency-free wrapper over :mod:`http.client` used by the
``repro-hls submit`` CLI, the documentation examples and the service
tests.  It speaks the same JSON API documented in ``docs/SERVICE.md``
and turns the service's error statuses into typed exceptions —
notably :class:`Backpressure` for 429, which carries the server's
``Retry-After`` hint so callers can implement polite backoff, and
:class:`JobFailedError` when a polled job lands on a non-``done``
terminal status.

Resilience (see ``docs/ROBUSTNESS.md``) is opt-in and off by default:
``Client(url, retries=N)`` retries connection-level failures (the
server restarting under the client) and 429 backpressure through a
:class:`~repro.resilience.retry.RetryPolicy` — capped exponential
backoff with seeded jitter, never sleeping less than the server's
``Retry-After`` hint.  An optional
:class:`~repro.resilience.retry.CircuitBreaker` fails fast once the
service has been unreachable repeatedly.  Retried submissions are safe:
results are content-addressed, so a duplicate POST coalesces onto the
cache or the in-flight single-flight leader instead of recomputing.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import urlencode, urlsplit

from repro.resilience.retry import CircuitBreaker, RetryPolicy


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload
        if isinstance(payload, Mapping):
            message = payload.get("error", payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class Backpressure(ServiceError):
    """The service shed load (HTTP 429); ``retry_after`` is its hint."""

    def __init__(self, status: int, payload: Any, retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class JobFailedError(Exception):
    """A polled job reached a terminal status other than ``done``.

    Raised by :meth:`Client.wait_for`; carries the job description so
    callers can inspect the failure instead of parsing payloads.
    """

    def __init__(self, job_id: str, job: Mapping[str, Any]) -> None:
        error = job.get("error") or {}
        super().__init__(
            f"job {job_id} {job.get('status')}: "
            f"{error.get('message', 'no error detail')}"
        )
        self.job_id = job_id
        self.job = dict(job)
        self.status = job.get("status")


class Client:
    """Synchronous client for one service instance.

    >>> client = Client("http://127.0.0.1:8421")   # doctest: +SKIP
    >>> out = client.schedule(source="x := a + b") # doctest: +SKIP
    >>> out["result"]["length"]                    # doctest: +SKIP

    ``retries`` enables resilience to connection failures and 429
    backpressure (default off: every error surfaces immediately);
    ``backoff`` overrides the default
    :class:`~repro.resilience.retry.RetryPolicy`, ``breaker`` installs a
    :class:`~repro.resilience.retry.CircuitBreaker` shared across calls,
    and ``retry_seed`` makes the jitter stream deterministic for tests.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 120.0,
        retries: int = 0,
        backoff: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        retry_seed: Optional[int] = None,
    ) -> None:
        # urlsplit("localhost:8421") reads "localhost" as the *scheme*
        # and "8421" as the path — normalise scheme-less spellings first.
        if "://" not in url:
            url = f"http://{url}"
        split = urlsplit(url)
        if split.scheme != "http":
            raise ValueError(f"unsupported scheme {split.scheme!r}")
        if not split.hostname:
            raise ValueError(f"no host in service url {url!r}")
        self.host = split.hostname
        self.port = split.port if split.port is not None else 80
        self.timeout = timeout
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = retries
        self.backoff = (
            backoff
            if backoff is not None
            else RetryPolicy(retries=retries, seed=retry_seed)
        )
        self.breaker = breaker
        self._rng = random.Random(retry_seed)
        self._sleep = time.sleep  # injectable for tests

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        query: Optional[Mapping[str, Any]] = None,
        body: Optional[Mapping[str, Any]] = None,
        raw: bool = False,
    ) -> Tuple[int, Dict[str, str], Any]:
        if query:
            path = f"{path}?{urlencode(query)}"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            header_map = {
                name.lower(): value for name, value in response.getheaders()
            }
            if raw:
                decoded: Any = data.decode("utf-8")
            else:
                try:
                    decoded = json.loads(data.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    decoded = data.decode("utf-8", errors="replace")
            return response.status, header_map, decoded
        finally:
            connection.close()

    def _checked(self, *args, **kwargs) -> Any:
        """One API call through the retry budget and circuit breaker.

        Connection-level failures (the server restarting under us) and
        429 backpressure are retried up to ``retries`` times with capped
        exponential backoff; a 429's ``Retry-After`` hint floors the
        delay.  Definite answers — 400s, job failures, 5xx other than
        load shedding — surface immediately: retrying them cannot help.
        """
        attempt = 0
        while True:
            if self.breaker is not None:
                self.breaker.before_call()
            try:
                status, headers, decoded = self._request(*args, **kwargs)
            except (OSError, http.client.HTTPException):
                # Includes ConnectionRefusedError while the server is
                # down between kill and journal-replay restart.
                if self.breaker is not None:
                    self.breaker.record_failure()
                if attempt >= self.retries:
                    raise
                self._sleep(self.backoff.delay(attempt))
                attempt += 1
                continue
            if self.breaker is not None:
                # Any HTTP answer means the dependency is alive.
                self.breaker.record_success()
            if status == 429:
                try:
                    retry_after = float(headers.get("retry-after", "1"))
                except ValueError:
                    retry_after = 1.0
                if attempt < self.retries:
                    self._sleep(self.backoff.delay(attempt, retry_after))
                    attempt += 1
                    continue
                raise Backpressure(status, decoded, retry_after)
            if status >= 400:
                raise ServiceError(status, decoded)
            return decoded

    # ------------------------------------------------------------------
    def _submit(
        self,
        endpoint: str,
        design: Mapping[str, Any],
        wait: bool,
        verify: bool,
        trace: bool,
        timeout: Optional[float],
        params: Mapping[str, Any],
    ) -> Dict[str, Any]:
        body = dict(design)
        body.update(params)
        query: Dict[str, Any] = {}
        if wait:
            query["wait"] = 1
        if verify:
            query["verify"] = "on"
        if trace:
            query["trace"] = "on"
        if timeout is not None:
            query["timeout"] = timeout
        return self._checked("POST", endpoint, query=query, body=body)

    def schedule(
        self,
        source: Optional[str] = None,
        dfg: Optional[Mapping[str, Any]] = None,
        name: Optional[str] = None,
        wait: bool = True,
        verify: bool = False,
        trace: bool = False,
        timeout: Optional[float] = None,
        **params: Any,
    ) -> Dict[str, Any]:
        """Submit an MFS scheduling job (``POST /v1/schedule``).

        Pass the design as ``source`` (behavioral text) or ``dfg``
        (parsed ``repro-dfg`` JSON object); extra keyword arguments
        (``cs``, ``mul_latency``, ``latency_l``, ``pipelined``,
        ``clock_ns``, ``seed``) become spec parameters.
        """
        design = self._design(source, dfg, name)
        return self._submit(
            "/v1/schedule", design, wait, verify, trace, timeout, params
        )

    def synth(
        self,
        source: Optional[str] = None,
        dfg: Optional[Mapping[str, Any]] = None,
        name: Optional[str] = None,
        wait: bool = True,
        verify: bool = False,
        trace: bool = False,
        timeout: Optional[float] = None,
        **params: Any,
    ) -> Dict[str, Any]:
        """Submit an MFSA synthesis job (``POST /v1/synth``)."""
        design = self._design(source, dfg, name)
        return self._submit(
            "/v1/synth", design, wait, verify, trace, timeout, params
        )

    @staticmethod
    def _design(
        source: Optional[str],
        dfg: Optional[Mapping[str, Any]],
        name: Optional[str] = None,
    ) -> Dict[str, Any]:
        if (source is None) == (dfg is None):
            raise ValueError("pass exactly one of 'source' or 'dfg'")
        design: Dict[str, Any] = (
            {"source": source} if source is not None else {"dfg": dict(dfg)}
        )
        if name is not None:
            design["name"] = name
        return design

    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Dict[str, Any]:
        """Job status + result when finished (``GET /v1/jobs/<id>``)."""
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def result_text(self, job_id: str) -> str:
        """The raw canonical result bytes (``GET /v1/jobs/<id>/result``)."""
        return self._checked("GET", f"/v1/jobs/{job_id}/result", raw=True)

    def wait_for(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_s: float = 0.05,
        max_poll_s: float = 1.0,
        raise_on_failure: bool = True,
    ) -> Dict[str, Any]:
        """Poll a job submitted with ``wait=False`` until it is terminal.

        The poll interval starts at ``poll_s`` and doubles (with jitter)
        up to ``max_poll_s``, so a short job is noticed quickly while a
        long one is not hammered at 20 requests a second.  A job that
        ends ``failed``/``timeout``/``cancelled`` raises
        :class:`JobFailedError` (pass ``raise_on_failure=False`` for the
        old return-the-payload behaviour).
        """
        deadline = time.monotonic() + timeout
        delay = poll_s
        while True:
            info = self.job(job_id)
            status = info["job"]["status"]
            if status not in ("queued", "running"):
                if status != "done" and raise_on_failure:
                    raise JobFailedError(job_id, info["job"])
                return info
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(f"job {job_id} still {status}")
            self._sleep(min(delay * self._rng.uniform(0.5, 1.0), deadline - now))
            delay = min(delay * 2.0, max_poll_s)

    def healthz(self) -> Dict[str, Any]:
        """Service health (``GET /healthz``)."""
        return self._checked("GET", "/healthz")

    def metrics_text(self) -> str:
        """Prometheus exposition text (``GET /metrics``)."""
        return self._checked("GET", "/metrics", raw=True)

    # -- fleet administration (shard router only) ----------------------
    def admin_status(self) -> Dict[str, Any]:
        """Ring membership and per-shard state (``GET /admin/shards``)."""
        return self._checked("GET", "/admin/shards")

    def admin_add_shard(self) -> Dict[str, Any]:
        """Grow the fleet by one shard; blocks through the warm handoff.

        Admin reshards are not retried: a timeout could otherwise boot
        two shards.  409 means another reshard is already running.
        """
        return self._request_once("POST", "/admin/shards", {"action": "add"})

    def admin_remove_shard(self, shard: str) -> Dict[str, Any]:
        """Drain ``shard`` out of the fleet (handoff → drain → exit)."""
        return self._request_once(
            "POST", "/admin/shards", {"action": "remove", "shard": shard}
        )

    def _request_once(
        self, method: str, path: str, body: Dict[str, Any]
    ) -> Dict[str, Any]:
        """One non-retried call; non-2xx answers raise ServiceError."""
        status, _headers, decoded = self._request(method, path, body=body)
        if status >= 300:
            raise ServiceError(status, decoded)
        return decoded
